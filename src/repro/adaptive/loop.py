"""Adaptive (single-run replication) ensemble growth.

The paper's related work (Section II-A) contrasts one-shot ensemble
design with *single-run replication*: allocate simulations
incrementally, using what the model has learned so far to decide what
to run next.  This module implements that loop on top of
partition-stitch sampling:

1. seed each sub-ensemble with a random fraction of its free
   configurations (full pivot fibers each);
2. each round, *probe* a few unselected candidate configurations at a
   single pivot index (one cell each — an honest budget charge), and
   compare the probe against the current M2TD model's prediction;
3. promote the candidates with the largest model mismatch to full
   fibers — the places where the model is most wrong are where new
   simulations teach it the most;
4. repeat until the cell budget is exhausted, then fit the final
   model.

The comparison target is non-adaptive random selection of the same
number of cells (the experiment/benches pit the two against each
other on ground truth the loop itself never peeks at).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.m2td import M2TDResult, m2td_decompose
from ..core.pipeline import EnsembleStudy
from ..exceptions import BudgetError, SamplingError
from ..sampling.partition import PFPartition
from ..tensor.random import SeedLike, make_rng
from ..tensor.sparse import SparseTensor


# ----------------------------------------------------------------------
# sub-ensemble geometry + per-cell model error, shared with
# repro.campaigns (the campaign allocator scores candidate cells with
# exactly the builder's mismatch oracle).
# ----------------------------------------------------------------------
def free_modes(partition: PFPartition, which: int) -> Tuple[int, ...]:
    """Original-tensor modes forming sub-system ``which``'s free space."""
    return partition.s1_free if which == 1 else partition.s2_free


def fixing_flat(partition: PFPartition, which: int) -> int:
    """Flat free-space index of sub-system ``which``'s fixing
    constants (where the *other* system's cells live in join space)."""
    modes = free_modes(partition, which)
    indices = tuple(partition.fixed_indices[m] for m in modes)
    shape = tuple(partition.shape[m] for m in modes)
    return int(np.ravel_multi_index(indices, shape))


def free_coords(
    partition: PFPartition, which: int, flat: np.ndarray
) -> np.ndarray:
    """Free-space coordinates for flat free-config indices."""
    shape = tuple(partition.shape[m] for m in free_modes(partition, which))
    return np.stack(np.unravel_index(flat, shape), axis=1)


def predict_cells(
    model: M2TDResult,
    partition: PFPartition,
    which: int,
    free_flat: np.ndarray,
    pivot_flat: int,
) -> np.ndarray:
    """Stitched-model predictions for sub-system cells at one pivot
    configuration — the per-cell reconstruction oracle.  Comparing
    these against freshly simulated values gives the model-mismatch
    signal that drives both the adaptive builder's promotions and the
    campaign orchestrator's budget allocation."""
    reconstruction = model.tucker.reconstruct()
    pivot_index = np.unravel_index(pivot_flat, partition.pivot_shape)
    n_free1 = int(np.prod(partition.free_shape(1)))
    n_free2 = int(np.prod(partition.free_shape(2)))
    block = reconstruction[pivot_index].reshape(n_free1, n_free2)
    free_flat = np.asarray(free_flat)
    if which == 1:
        return block[free_flat, fixing_flat(partition, 2)]
    return block[fixing_flat(partition, 1), free_flat]


def cell_errors(
    model: M2TDResult,
    partition: PFPartition,
    which: int,
    free_flat: np.ndarray,
    observed: np.ndarray,
    pivot_flat: int,
) -> np.ndarray:
    """Absolute model mismatch per probed cell."""
    predicted = predict_cells(model, partition, which, free_flat, pivot_flat)
    return np.abs(np.asarray(observed) - predicted)


@dataclass
class AdaptiveRound:
    """Diagnostics of one adaptive round."""

    round_index: int
    probes: int
    promoted: Tuple[int, int]
    cells_used: int
    model_mismatch: float


@dataclass
class AdaptiveResult:
    """Outcome of the adaptive loop."""

    result: M2TDResult
    cells_used: int
    rounds: List[AdaptiveRound] = field(default_factory=list)
    selected: Dict[int, np.ndarray] = field(default_factory=dict)


class AdaptiveEnsembleBuilder:
    """Model-guided incremental construction of the two sub-ensembles.

    Parameters
    ----------
    study:
        The ensemble study (its ground truth plays the role of the
        simulator: reading a cell *charges* the budget).
    partition:
        PF-partition of the study's space.
    ranks:
        Target rank per original mode.
    variant:
        M2TD variant used for the intermediate and final fits.
    initial_fraction:
        Fraction of each free space selected up-front, at random.
    batch_size:
        Configurations promoted to full fibers per sub-system per
        round.
    probe_factor:
        Candidates probed per promotion slot.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        study: EnsembleStudy,
        partition: PFPartition,
        ranks,
        variant: str = "select",
        initial_fraction: float = 0.2,
        batch_size: int = 2,
        probe_factor: int = 3,
        seed: SeedLike = None,
    ):
        if not 0.0 < initial_fraction < 1.0:
            raise SamplingError(
                f"initial_fraction must be in (0, 1), got {initial_fraction}"
            )
        if batch_size < 1 or probe_factor < 1:
            raise SamplingError("batch_size and probe_factor must be >= 1")
        self.study = study
        self.partition = partition
        self.ranks = list(ranks)
        self.variant = variant
        self.initial_fraction = float(initial_fraction)
        self.batch_size = int(batch_size)
        self.probe_factor = int(probe_factor)
        self._rng = make_rng(seed)
        self._pivot_size = partition.pivot_space_size
        self._free_sizes = {
            1: partition.free_space_size(1),
            2: partition.free_space_size(2),
        }
        # The frozen-side free index each sub-ensemble cell maps to in
        # join space (the other system's fixing constants).
        self._fixed_free_flat = {
            1: fixing_flat(partition, 2),
            2: fixing_flat(partition, 1),
        }

    # ------------------------------------------------------------------
    def _free_coords(self, which: int, flat: np.ndarray) -> np.ndarray:
        return free_coords(self.partition, which, flat)

    def _fiber_sub_coords(self, which: int, flat: np.ndarray) -> np.ndarray:
        """Sub-space coordinates of the full pivot fibers of the given
        free configs."""
        pivot_shape = self.partition.pivot_shape
        pivots = np.stack(
            np.unravel_index(np.arange(self._pivot_size), pivot_shape),
            axis=1,
        )
        free = self._free_coords(which, flat)
        n_pivot = pivots.shape[0]
        n_free = free.shape[0]
        return np.hstack(
            [
                np.tile(pivots, (n_free, 1)),
                np.repeat(free, n_pivot, axis=0),
            ]
        )

    def _read_cells(self, which: int, sub_coords: np.ndarray) -> np.ndarray:
        """'Run' the simulations for these sub-space cells."""
        full = self.partition.embed_coords(which, sub_coords)
        return self.study.truth[tuple(full.T)]

    def _sub_tensor(self, which: int, selected_flat: np.ndarray) -> SparseTensor:
        coords = self._fiber_sub_coords(which, selected_flat)
        values = self._read_cells(which, coords)
        return SparseTensor(self.partition.sub_shape(which), coords, values)

    def _fit(self, selected: Dict[int, np.ndarray]) -> M2TDResult:
        x1 = self._sub_tensor(1, selected[1])
        x2 = self._sub_tensor(2, selected[2])
        return m2td_decompose(
            x1, x2, self.partition, self.ranks, variant=self.variant
        )

    def _predict(self, model: M2TDResult, which: int, free_flat: np.ndarray,
                 pivot_flat: int) -> np.ndarray:
        """Model predictions for sub-system cells at one pivot config."""
        return predict_cells(
            model, self.partition, which, free_flat, pivot_flat
        )

    # ------------------------------------------------------------------
    def run(self, total_cells: int, max_rounds: int = 50) -> AdaptiveResult:
        """Grow the ensembles until ``total_cells`` is exhausted."""
        total_cells = int(total_cells)
        fiber_cost = self._pivot_size
        minimum = 2 * max(
            1, int(round(self.initial_fraction * min(self._free_sizes.values())))
        ) * fiber_cost
        if total_cells < minimum:
            raise BudgetError(
                f"total_cells {total_cells} below the initial selection "
                f"cost {minimum}"
            )
        selected: Dict[int, np.ndarray] = {}
        cells = 0
        for which in (1, 2):
            count = max(
                1,
                int(round(self.initial_fraction * self._free_sizes[which])),
            )
            selected[which] = np.sort(
                self._rng.choice(
                    self._free_sizes[which], size=count, replace=False
                )
            )
            cells += count * fiber_cost
        rounds: List[AdaptiveRound] = []
        model = self._fit(selected)
        probe_pivot = self._pivot_size // 2
        for round_index in range(max_rounds):
            # Cost of one full round: probes + promoted fibers.
            n_probe = {
                which: min(
                    self.probe_factor * self.batch_size,
                    self._free_sizes[which] - selected[which].shape[0],
                )
                for which in (1, 2)
            }
            if all(n == 0 for n in n_probe.values()):
                break
            round_cost = sum(n_probe.values())
            promote_counts = {
                which: min(self.batch_size, n_probe[which])
                for which in (1, 2)
            }
            round_cost += sum(
                promote_counts[w] * (fiber_cost - 1) for w in (1, 2)
            )
            if cells + round_cost > total_cells:
                break
            mismatch_total = 0.0
            probes_total = 0
            for which in (1, 2):
                if n_probe[which] == 0:
                    continue
                candidates = np.setdiff1d(
                    np.arange(self._free_sizes[which]), selected[which]
                )
                probe_flat = self._rng.choice(
                    candidates, size=n_probe[which], replace=False
                )
                pivot_coords = np.stack(
                    np.unravel_index(
                        np.full(probe_flat.shape[0], probe_pivot),
                        self.partition.pivot_shape,
                    ),
                    axis=1,
                )
                probe_coords = np.hstack(
                    [pivot_coords, self._free_coords(which, probe_flat)]
                )
                observed = self._read_cells(which, probe_coords)
                predicted = self._predict(
                    model, which, probe_flat, probe_pivot
                )
                residual = np.abs(observed - predicted)
                order = np.argsort(-residual)[: promote_counts[which]]
                promoted = probe_flat[order]
                selected[which] = np.sort(
                    np.concatenate([selected[which], promoted])
                )
                mismatch_total += float(residual.sum())
                probes_total += int(probe_flat.shape[0])
            cells += round_cost
            model = self._fit(selected)
            rounds.append(
                AdaptiveRound(
                    round_index=round_index,
                    probes=probes_total,
                    promoted=(
                        promote_counts[1],
                        promote_counts[2],
                    ),
                    cells_used=cells,
                    model_mismatch=mismatch_total,
                )
            )
        return AdaptiveResult(
            result=model, cells_used=cells, rounds=rounds, selected=selected
        )


def random_reference(
    study: EnsembleStudy,
    partition: PFPartition,
    ranks,
    total_cells: int,
    variant: str = "select",
    seed: SeedLike = None,
) -> Tuple[M2TDResult, int]:
    """Non-adaptive counterpart: random full fibers at the same budget."""
    rng = make_rng(seed)
    fiber_cost = partition.pivot_space_size
    per_side = max(1, int(total_cells // (2 * fiber_cost)))
    builder = AdaptiveEnsembleBuilder(
        study, partition, ranks, variant=variant, seed=rng
    )
    selected = {}
    cells = 0
    for which in (1, 2):
        size = partition.free_space_size(which)
        count = min(per_side, size)
        selected[which] = np.sort(
            rng.choice(size, size=count, replace=False)
        )
        cells += count * fiber_cost
    return builder._fit(selected), cells
