"""Adaptive (single-run replication) ensemble growth on top of
partition-stitch sampling."""

from .loop import (
    AdaptiveEnsembleBuilder,
    AdaptiveResult,
    AdaptiveRound,
    cell_errors,
    fixing_flat,
    free_coords,
    free_modes,
    predict_cells,
    random_reference,
)

__all__ = [
    "AdaptiveEnsembleBuilder",
    "AdaptiveResult",
    "AdaptiveRound",
    "cell_errors",
    "fixing_flat",
    "free_coords",
    "free_modes",
    "predict_cells",
    "random_reference",
]
