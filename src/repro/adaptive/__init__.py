"""Adaptive (single-run replication) ensemble growth on top of
partition-stitch sampling."""

from .loop import (
    AdaptiveEnsembleBuilder,
    AdaptiveResult,
    AdaptiveRound,
    random_reference,
)

__all__ = [
    "AdaptiveEnsembleBuilder",
    "AdaptiveResult",
    "AdaptiveRound",
    "random_reference",
]
