"""The store catalog: JSON metadata describing every stored tensor."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from ..exceptions import StorageError
from ..observability import get_metrics

CATALOG_FILE = "catalog.json"


@dataclass
class TensorEntry:
    """Catalog record for one stored tensor."""

    name: str
    shape: Tuple[int, ...]
    block_shape: Tuple[int, ...]
    nnz: int
    n_blocks: int
    block_ids: List[Tuple[int, ...]]

    def to_json(self) -> Dict:
        record = asdict(self)
        record["shape"] = list(self.shape)
        record["block_shape"] = list(self.block_shape)
        record["block_ids"] = [list(b) for b in self.block_ids]
        return record

    @classmethod
    def from_json(cls, record: Dict) -> "TensorEntry":
        return cls(
            name=str(record["name"]),
            shape=tuple(int(s) for s in record["shape"]),
            block_shape=tuple(int(s) for s in record["block_shape"]),
            nnz=int(record["nnz"]),
            n_blocks=int(record["n_blocks"]),
            block_ids=[tuple(int(i) for i in b) for b in record["block_ids"]],
        )


class Catalog:
    """Load/save the per-directory tensor catalog."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.path = self.directory / CATALOG_FILE
        self._entries: Dict[str, TensorEntry] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot read catalog {self.path}: {exc}") from exc
        self._entries = {
            name: TensorEntry.from_json(record)
            for name, record in raw.get("tensors", {}).items()
        }

    def _save(self) -> None:
        payload = {
            "version": 1,
            "tensors": {
                name: entry.to_json() for name, entry in self._entries.items()
            },
        }
        tmp_path = self.path.with_suffix(".tmp")
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        tmp_path.replace(self.path)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> TensorEntry:
        """One metered catalog lookup.

        ``storage.catalog_lookups`` is the micro-benchmark guard's
        handle: hot read paths (``get``/``slice_query``) must resolve
        the entry once per *request*, never once per block.
        """
        get_metrics().counter("storage.catalog_lookups").inc()
        try:
            return self._entries[name]
        except KeyError:
            raise StorageError(f"tensor {name!r} not in catalog") from None

    def put(self, entry: TensorEntry) -> None:
        self._entries[entry.name] = entry
        self._save()

    def remove(self, name: str) -> TensorEntry:
        entry = self.get(name)
        del self._entries[name]
        self._save()
        return entry
