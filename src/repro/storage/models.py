"""Persisting fitted decompositions next to their ensembles.

A study samples once and analyses many times; the fitted Tucker
models deserve the same on-disk treatment as the ensemble tensors.
``save_tucker``/``load_tucker`` round-trip a
:class:`~repro.tensor.tucker.TuckerTensor` (core + factors + optional
metadata) through a single compressed ``.npz`` file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import StorageError
from ..tensor.tucker import TuckerTensor

_FORMAT_VERSION = 1


def save_tucker(
    path,
    tucker: TuckerTensor,
    metadata: Optional[Dict] = None,
) -> Path:
    """Write a Tucker model (and JSON-serializable metadata) to disk."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        meta_json = json.dumps(
            {"version": _FORMAT_VERSION, "user": metadata or {}}
        )
    except TypeError as exc:
        raise StorageError(
            f"model metadata is not JSON-serializable: {exc}"
        ) from exc
    arrays = {"core": tucker.core, "meta": np.array(meta_json)}
    for mode, factor in enumerate(tucker.factors):
        arrays[f"factor_{mode}"] = factor
    np.savez_compressed(path, **arrays)
    return path


def load_tucker(path) -> Tuple[TuckerTensor, Dict]:
    """Read a Tucker model saved by :func:`save_tucker`.

    Returns ``(model, metadata)``.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no model file at {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            meta_raw = str(data["meta"])
            core = data["core"]
            factors = []
            mode = 0
            while f"factor_{mode}" in data:
                factors.append(data[f"factor_{mode}"])
                mode += 1
    except (OSError, KeyError, ValueError) as exc:
        raise StorageError(f"cannot read model {path}: {exc}") from exc
    try:
        meta = json.loads(meta_raw)
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt model metadata in {path}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported model format version {meta.get('version')!r}"
        )
    if not factors:
        raise StorageError(f"model {path} holds no factor matrices")
    return TuckerTensor(core, factors), meta.get("user", {})
