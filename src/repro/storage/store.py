"""The block tensor store: persist sparse ensemble tensors on disk.

A TensorDB-flavoured substrate (paper Section II-B): tensors are tiled
into hyper-blocks (:mod:`repro.storage.blocks`), each non-empty block
is one ``.npz`` file, and a JSON catalog tracks geometry.  Queries
that need a slice or a single block read only the files they touch —
the property that made in-database tensor decomposition practical in
the systems the paper cites.
"""

from __future__ import annotations

import hashlib
import re
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import BlockCorruptionError, StorageError
from ..faults.injector import get_injector
from ..observability import get_metrics, span as _span
from ..tensor.sparse import SparseTensor
from .blocks import BlockedLayout, BlockId, assemble_from_blocks, split_into_blocks
from .catalog import Catalog, TensorEntry

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_.-]+$")


def _block_digest(coords, values, shape) -> str:
    """Content checksum over a block's payload arrays.  Stored inside
    each block ``.npz`` so a flipped bit on disk is detected at read
    time instead of silently feeding garbage into a decomposition."""
    digest = hashlib.sha256()
    for array in (
        np.ascontiguousarray(coords),
        np.ascontiguousarray(values),
        np.asarray(shape, dtype=np.int64),
    ):
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class BlockTensorStore:
    """A directory-backed store of blocked sparse tensors."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.catalog = Catalog(self.directory)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise StorageError(
                f"invalid tensor name {name!r}; use letters, digits, "
                "'_', '-', '.'"
            )
        return name

    def _tensor_dir(self, name: str) -> Path:
        return self.directory / self._check_name(name)

    def _block_path(self, name: str, block_id: BlockId) -> Path:
        suffix = "_".join(str(int(i)) for i in block_id)
        return self._tensor_dir(name) / f"block_{suffix}.npz"

    # ------------------------------------------------------------------
    # write
    # ------------------------------------------------------------------
    def put(
        self,
        name: str,
        tensor: SparseTensor,
        block_shape: Optional[Tuple[int, ...]] = None,
        overwrite: bool = False,
    ) -> TensorEntry:
        """Store a tensor under ``name``.

        ``block_shape`` defaults to splitting each mode in (at most)
        four tiles.  Refuses to overwrite unless asked.
        """
        self._check_name(name)
        if name in self.catalog and not overwrite:
            raise StorageError(
                f"tensor {name!r} already stored (pass overwrite=True)"
            )
        if block_shape is None:
            block_shape = tuple(max(1, -(-s // 4)) for s in tensor.shape)
        layout = BlockedLayout(tensor.shape, block_shape)
        with _span(
            "store-put", "storage", tensor=name, nnz=tensor.nnz,
            shape=tensor.shape,
        ) as sp:
            blocks = split_into_blocks(tensor, layout)
            tensor_dir = self._tensor_dir(name)
            if tensor_dir.exists():
                for stale in tensor_dir.glob("block_*.npz"):
                    stale.unlink()
            tensor_dir.mkdir(parents=True, exist_ok=True)
            metrics = get_metrics()
            bytes_written = 0
            for block_id, block in blocks.items():
                path = self._block_path(name, block_id)
                np.savez_compressed(
                    path,
                    coords=block.coords,
                    values=block.values,
                    shape=np.asarray(block.shape, dtype=np.int64),
                    checksum=np.asarray(
                        _block_digest(block.coords, block.values, block.shape)
                    ),
                )
                block_bytes = path.stat().st_size
                bytes_written += block_bytes
                metrics.histogram("storage.block_bytes").observe(block_bytes)
            entry = TensorEntry(
                name=name,
                shape=tensor.shape,
                block_shape=layout.block_shape,
                nnz=tensor.nnz,
                n_blocks=len(blocks),
                block_ids=sorted(blocks),
            )
            self.catalog.put(entry)
            sp.set(n_blocks=len(blocks), bytes_written=bytes_written)
            metrics.counter("storage.puts").inc()
            metrics.counter("storage.blocks_written").inc(len(blocks))
            metrics.counter("storage.bytes_serialized").inc(bytes_written)
        return entry

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def layout(self, name: str) -> BlockedLayout:
        entry = self.catalog.get(name)
        return BlockedLayout(entry.shape, entry.block_shape)

    def get_block(self, name: str, block_id: BlockId) -> SparseTensor:
        """Load one block (empty tensor if the block has no cells).

        Blocks the catalog says exist must be present and pass their
        checksum; a missing file, an unreadable ``.npz``, or a payload
        that no longer matches its stored digest raises
        :class:`~repro.exceptions.BlockCorruptionError` — never a
        silently-empty tensor feeding garbage downstream.
        """
        entry = self.catalog.get(name)
        layout = BlockedLayout(entry.shape, entry.block_shape)
        return self._read_block(entry, layout, block_id)

    def _read_block(
        self, entry: TensorEntry, layout: BlockedLayout, block_id: BlockId
    ) -> SparseTensor:
        """The block-read body behind :meth:`get_block`.

        Takes the already-resolved catalog entry and layout so the
        multi-block request paths (``get`` / ``iter_blocks`` /
        ``slice_query``) resolve them *once per request* instead of
        once per block — the hot-path contract the
        ``storage.catalog_lookups`` micro-benchmark guard pins.
        """
        name = entry.name
        block_id = tuple(int(i) for i in block_id)
        grid = layout.grid_shape
        if len(block_id) != len(grid) or any(
            not 0 <= b < g for b, g in zip(block_id, grid)
        ):
            raise StorageError(
                f"block id {block_id} outside grid {grid} of {name!r}"
            )
        path = self._block_path(name, block_id)
        metrics = get_metrics()
        metrics.counter("storage.block_reads").inc()
        catalogued = block_id in set(map(tuple, entry.block_ids))
        injector = get_injector()
        if injector.enabled:
            # raise/crash/delay fire here; a "corrupt" decision flips
            # bytes in the block file so the real checksum path below
            # is what detects it.
            injector.fire(
                "storage.block-read", f"{name}/{block_id}", path=path
            )
        if not path.exists():
            if catalogued:
                metrics.counter("storage.block_corruptions").inc()
                raise BlockCorruptionError(
                    name, block_id, "catalogued block file is missing"
                )
            return SparseTensor(layout.block_extent(block_id))
        metrics.counter("storage.bytes_deserialized").inc(path.stat().st_size)
        try:
            with np.load(path) as data:
                shape = tuple(int(s) for s in data["shape"])
                coords = data["coords"]
                values = data["values"]
                if "checksum" in data.files:
                    expected = str(data["checksum"])
                    actual = _block_digest(coords, values, shape)
                    if actual != expected:
                        raise BlockCorruptionError(
                            name, block_id, "checksum mismatch"
                        )
            return SparseTensor(shape, coords, values)
        except BlockCorruptionError:
            metrics.counter("storage.block_corruptions").inc()
            raise
        except Exception as exc:
            metrics.counter("storage.block_corruptions").inc()
            raise BlockCorruptionError(
                name, block_id, f"unreadable block file: {exc}"
            ) from exc

    def iter_blocks(self, name: str) -> Iterator[Tuple[BlockId, SparseTensor]]:
        entry = self.catalog.get(name)
        layout = BlockedLayout(entry.shape, entry.block_shape)
        for block_id in entry.block_ids:
            yield block_id, self._read_block(entry, layout, block_id)

    def get(self, name: str) -> SparseTensor:
        """Load and reassemble the full tensor."""
        with _span("store-get", "storage", tensor=name) as sp:
            entry = self.catalog.get(name)
            layout = BlockedLayout(entry.shape, entry.block_shape)
            blocks: Dict[BlockId, SparseTensor] = {
                block_id: self._read_block(entry, layout, block_id)
                for block_id in entry.block_ids
            }
            tensor = assemble_from_blocks(layout, blocks)
            sp.set(n_blocks=len(blocks), nnz=tensor.nnz)
            get_metrics().counter("storage.gets").inc()
            return tensor

    def slice_query(self, name: str, mode: int, index: int) -> SparseTensor:
        """Cells on the hyperplane ``mode = index``, reading only the
        blocks that intersect it — the blocked layout's payoff."""
        with _span(
            "store-slice-query", "storage", tensor=name, mode=mode, index=index,
        ) as sp:
            entry = self.catalog.get(name)
            layout = BlockedLayout(entry.shape, entry.block_shape)
            stored = set(entry.block_ids)
            coords_parts, values_parts = [], []
            blocks_read = 0
            for block_id in layout.blocks_touching_slice(mode, index):
                if block_id not in stored:
                    continue
                block = self._read_block(entry, layout, block_id)
                blocks_read += 1
                origin = layout.block_origin(block_id)
                local_index = index - origin[mode]
                mask = block.coords[:, mode] == local_index
                if mask.any():
                    coords_parts.append(block.coords[mask] + origin[None, :])
                    values_parts.append(block.values[mask])
            sp.set(blocks_read=blocks_read)
            get_metrics().counter("storage.slice_queries").inc()
            if not coords_parts:
                return SparseTensor(entry.shape)
            return SparseTensor(
                entry.shape,
                np.vstack(coords_parts),
                np.concatenate(values_parts),
            )

    # ------------------------------------------------------------------
    # manage
    # ------------------------------------------------------------------
    def delete(self, name: str) -> None:
        entry = self.catalog.remove(name)
        tensor_dir = self._tensor_dir(name)
        for block_id in entry.block_ids:
            path = self._block_path(name, block_id)
            if path.exists():
                path.unlink()
        if tensor_dir.exists() and not any(tensor_dir.iterdir()):
            tensor_dir.rmdir()

    def names(self):
        return self.catalog.names()
