"""Hyper-rectangular blocking of sparse tensors.

The paper's related work (TensorDB [17], [22]) stores tensors as
chunked blocks so that decomposition operators touch only the blocks
they need.  Our store uses the same layout: the index space is tiled
by a fixed ``block_shape``; each non-empty tile holds its cells in
*local* coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from ..exceptions import StorageError
from ..tensor.sparse import SparseTensor

BlockId = Tuple[int, ...]


@dataclass(frozen=True)
class BlockedLayout:
    """Geometry of a blocked tensor.

    Attributes
    ----------
    shape:
        Full tensor shape.
    block_shape:
        Tile extent per mode (the last tile of a mode may be ragged).
    """

    shape: Tuple[int, ...]
    block_shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        block_shape = tuple(int(b) for b in self.block_shape)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "block_shape", block_shape)
        if len(block_shape) != len(shape):
            raise StorageError(
                f"block shape {block_shape} order != tensor order {len(shape)}"
            )
        if any(b < 1 for b in block_shape):
            raise StorageError(f"block extents must be >= 1, got {block_shape}")

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        """Number of tiles per mode."""
        return tuple(
            -(-s // b) for s, b in zip(self.shape, self.block_shape)
        )

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.grid_shape))

    def block_of(self, coords: np.ndarray) -> np.ndarray:
        """Block id (per row) of full-space coordinates."""
        coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
        return coords // np.asarray(self.block_shape, dtype=np.int64)

    def block_origin(self, block_id: BlockId) -> np.ndarray:
        return np.asarray(block_id, dtype=np.int64) * np.asarray(
            self.block_shape, dtype=np.int64
        )

    def block_extent(self, block_id: BlockId) -> Tuple[int, ...]:
        """Actual extent of a (possibly ragged, edge) block."""
        origin = self.block_origin(block_id)
        return tuple(
            int(min(b, s - o))
            for b, s, o in zip(self.block_shape, self.shape, origin)
        )

    def blocks_touching_slice(self, mode: int, index: int) -> Iterator[BlockId]:
        """Block ids intersecting the hyperplane ``mode = index``."""
        if not 0 <= mode < len(self.shape):
            raise StorageError(f"mode {mode} out of range")
        if not 0 <= index < self.shape[mode]:
            raise StorageError(f"index {index} out of range for mode {mode}")
        target = index // self.block_shape[mode]
        for block in np.ndindex(*self.grid_shape):
            if block[mode] == target:
                yield tuple(int(b) for b in block)


def split_into_blocks(
    tensor: SparseTensor, layout: BlockedLayout
) -> Dict[BlockId, SparseTensor]:
    """Partition a sparse tensor's cells into per-block tensors.

    Each block tensor uses *local* coordinates relative to the block
    origin and the (possibly ragged) block extent as its shape; empty
    blocks are omitted.
    """
    if tensor.shape != layout.shape:
        raise StorageError(
            f"tensor shape {tensor.shape} != layout shape {layout.shape}"
        )
    blocks: Dict[BlockId, SparseTensor] = {}
    if tensor.nnz == 0:
        return blocks
    block_ids = layout.block_of(tensor.coords)
    flat = np.ravel_multi_index(tuple(block_ids.T), layout.grid_shape)
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    coords_sorted = tensor.coords[order]
    values_sorted = tensor.values[order]
    boundaries = np.flatnonzero(np.diff(flat_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [flat_sorted.shape[0]]])
    for start, end in zip(starts, ends):
        block_id = tuple(
            int(i)
            for i in np.unravel_index(flat_sorted[start], layout.grid_shape)
        )
        origin = layout.block_origin(block_id)
        local = coords_sorted[start:end] - origin[None, :]
        blocks[block_id] = SparseTensor(
            layout.block_extent(block_id), local, values_sorted[start:end]
        )
    return blocks


def assemble_from_blocks(
    layout: BlockedLayout, blocks: Dict[BlockId, SparseTensor]
) -> SparseTensor:
    """Inverse of :func:`split_into_blocks`."""
    coords_parts = []
    values_parts = []
    for block_id, block in blocks.items():
        if block.nnz == 0:
            continue
        origin = layout.block_origin(block_id)
        coords_parts.append(block.coords + origin[None, :])
        values_parts.append(block.values)
    if not coords_parts:
        return SparseTensor(layout.shape)
    return SparseTensor(
        layout.shape,
        np.vstack(coords_parts),
        np.concatenate(values_parts),
    )
