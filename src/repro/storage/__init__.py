"""Block-based sparse tensor storage (TensorDB-style substrate)."""

from .blocks import (
    BlockedLayout,
    BlockId,
    assemble_from_blocks,
    split_into_blocks,
)
from .catalog import Catalog, TensorEntry
from .models import load_tucker, save_tucker
from .store import BlockTensorStore

__all__ = [
    "BlockedLayout",
    "BlockId",
    "assemble_from_blocks",
    "split_into_blocks",
    "Catalog",
    "TensorEntry",
    "load_tucker",
    "save_tucker",
    "BlockTensorStore",
]
