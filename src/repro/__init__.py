"""M2TD: Multi-Task Tensor Decomposition for Sparse Ensemble
Simulations — a full reproduction of Li, Candan & Sapino, ICDE 2018.

Quick start
-----------
>>> from repro import EnsembleStudy, DoublePendulum
>>> study = EnsembleStudy.create(DoublePendulum(), resolution=8)
>>> result = study.run_m2td([3] * 5, variant="select")
>>> 0 < result.accuracy < 1
True

Package map
-----------
``repro.tensor``
    Tensor algebra substrate (dense/sparse, Tucker, CP).
``repro.simulation``
    Dynamical systems, integrators, ensemble construction.
``repro.sampling``
    Conventional samplers and PF-partitioning.
``repro.core``
    JE-stitching, the M2TD variants, the study pipeline.
``repro.distributed``
    MapReduce engine, cluster model, D-M2TD.
``repro.runtime``
    Task-graph execution runtime: pluggable executors,
    content-addressed caching, retries.
``repro.observability``
    Tracing spans, metrics, and the Chrome-trace / flat-profile
    exporters every layer reports into.
``repro.storage``
    Block-based sparse tensor store.
``repro.experiments``
    Table/figure reproduction harness and CLI.
"""

from .core import (
    EnsembleStudy,
    M2TDResult,
    StudyResult,
    accuracy,
    join_tensor,
    m2td_avg,
    m2td_concat,
    m2td_decompose,
    m2td_select,
    zero_join_tensor,
)
from .distributed import ClusterModel, distributed_m2td
from .exceptions import ReproError
from .observability import (
    MetricsRegistry,
    Tracer,
    flat_profile,
    get_metrics,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
    write_chrome_trace,
)
from .runtime import (
    ResultCache,
    RetryPolicy,
    Runtime,
    RuntimeReport,
    TaskGraph,
    session_runtime,
)
from .sampling import (
    GridSampler,
    PartitionBudget,
    PFPartition,
    RandomSampler,
    SampleSet,
    SliceSampler,
    budget_for_fractions,
    select_sub_ensembles,
)
from .simulation import (
    DoublePendulum,
    DynamicalSystem,
    Lorenz,
    Observation,
    ParameterSpace,
    TriplePendulum,
    full_space_tensor,
    make_observation,
    make_system,
)
from .storage import BlockTensorStore
from .tensor import (
    CPTensor,
    SparseTensor,
    TuckerTensor,
    cp_als,
    em_tucker,
    energy_threshold_ranks,
    hooi,
    hosvd,
    st_hosvd,
)

__version__ = "1.0.0"

__all__ = [
    "EnsembleStudy",
    "M2TDResult",
    "StudyResult",
    "accuracy",
    "join_tensor",
    "m2td_avg",
    "m2td_concat",
    "m2td_decompose",
    "m2td_select",
    "zero_join_tensor",
    "ClusterModel",
    "distributed_m2td",
    "ReproError",
    "MetricsRegistry",
    "Tracer",
    "flat_profile",
    "get_metrics",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
    "write_chrome_trace",
    "ResultCache",
    "RetryPolicy",
    "Runtime",
    "RuntimeReport",
    "TaskGraph",
    "session_runtime",
    "GridSampler",
    "PartitionBudget",
    "PFPartition",
    "RandomSampler",
    "SampleSet",
    "SliceSampler",
    "budget_for_fractions",
    "select_sub_ensembles",
    "DoublePendulum",
    "DynamicalSystem",
    "Lorenz",
    "Observation",
    "ParameterSpace",
    "TriplePendulum",
    "full_space_tensor",
    "make_observation",
    "make_system",
    "BlockTensorStore",
    "CPTensor",
    "SparseTensor",
    "TuckerTensor",
    "cp_als",
    "em_tucker",
    "energy_threshold_ranks",
    "hooi",
    "hosvd",
    "st_hosvd",
    "__version__",
]
