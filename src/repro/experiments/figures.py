"""Figure-level analyses: effective density (paper Figure 6) and the
simulation-cost amortisation argument of Section VII-E1.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.stitch import join_tensor
from ..sampling.budget import budget_for_fractions, effective_density_ratio
from ..simulation import SimulationMeter, simulate_fibers
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport


def run_fig6(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    """Figure 6: PF-partitioning + JE-stitching yields a far higher
    effective density than conventionally sampling the full space with
    the same budget.  Reports both the analytic ratio and the measured
    non-null counts of the stitched tensor."""
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    partition = study.default_partition()
    report = ExperimentReport(
        experiment_id="fig6",
        title="Effective density of partition-stitch sampling "
        "(paper Figure 6)",
        headers=[
            "E",
            "budget cells",
            "conv. density",
            "join entries",
            "effective density",
            "gain (analytic)",
            "gain (measured)",
        ],
    )
    full_cells = study.truth.size
    for free_fraction in config.free_fractions:
        budget = budget_for_fractions(partition, 1.0, free_fraction)
        x1, x2, cells, _runs = study.sample_sub_ensembles(
            partition, budget, seed=config.seed
        )
        joined = join_tensor(x1, x2, partition)
        conventional_density = cells / full_cells
        effective_density = joined.nnz / full_cells
        report.add_row(
            f"{free_fraction:.0%}",
            cells,
            float(conventional_density),
            joined.nnz,
            float(effective_density),
            float(effective_density_ratio(partition, budget)),
            float(effective_density / conventional_density),
        )
    return report


def run_budget_curve(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    """Accuracy-vs-budget curves for every scheme.

    The paper's tables sample this relationship at a few points
    (Tables V-VII); the curve view makes the crossover structure
    explicit: M2TD's accuracy falls roughly with E^2 as the budget
    shrinks, the conventional schemes stay flat near zero, and the
    two families never cross within the sweep.
    """
    from .schemes import ALL_SCHEMES, run_all_schemes

    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    report = ExperimentReport(
        experiment_id="fig-budget",
        title="Accuracy vs budget (free-fraction sweep, all schemes)",
        headers=["budget fraction", "cells"] + list(ALL_SCHEMES),
    )
    for fraction in (1.0, 0.75, 0.5, 0.25, 0.125):
        results = run_all_schemes(
            study,
            config.default_rank,
            seed=config.seed,
            free_fraction=fraction,
        )
        report.add_row(
            f"{fraction:.0%}",
            results["M2TD-SELECT"].cells,
            *(float(results[s].accuracy) for s in ALL_SCHEMES),
        )
    report.notes.append(
        "budget scales the sub-ensemble density E at P = 100%; "
        "conventional schemes receive the matched cell budget per row"
    )
    return report


def run_cost_amortisation(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    """Section VII-E1's cost claim: the partitioned scheme reaches the
    full-space effective density with ~``2 * E`` simulation runs
    instead of ``R^{n_params}`` runs.  Measures actual integrator
    wall-clock for both."""
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    space = study.space
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)

    # Partitioned scheme: simulate only the sub-ensembles' runs.
    meter = SimulationMeter()
    for which in (1, 2):
        free_modes = partition.s1_free if which == 1 else partition.s2_free
        combos = np.stack(
            np.meshgrid(
                *(np.arange(space.shape[m]) for m in free_modes),
                indexing="ij",
            ),
            axis=-1,
        ).reshape(-1, len(free_modes))
        param_indices = np.empty(
            (combos.shape[0], space.n_param_modes), dtype=np.int64
        )
        for mode in range(space.n_param_modes):
            if mode in free_modes:
                param_indices[:, mode] = combos[:, free_modes.index(mode)]
            else:
                param_indices[:, mode] = partition.fixed_indices.get(
                    mode, space.shape[mode] // 2
                )
        simulate_fibers(space, study.observation, param_indices, meter=meter)
    partitioned_runs = meter.runs
    partitioned_seconds = meter.wall_seconds

    # Full-space scheme: measure a slice and extrapolate (simulating
    # everything again would just repeat EnsembleStudy.create).
    probe = min(256, space.n_simulations_full)
    probe_indices = np.stack(
        np.unravel_index(
            np.arange(probe), (space.resolution,) * space.n_param_modes
        ),
        axis=1,
    )
    probe_meter = SimulationMeter()
    started = time.perf_counter()
    simulate_fibers(space, study.observation, probe_indices, meter=probe_meter)
    del started
    full_runs = space.n_simulations_full
    full_seconds = probe_meter.wall_seconds * (full_runs / probe)

    report = ExperimentReport(
        experiment_id="fig-cost",
        title="Simulation cost amortisation (paper Section VII-E1)",
        headers=["Scheme", "runs", "integrator seconds"],
    )
    report.add_row(
        "partition-stitch (2E runs)",
        partitioned_runs,
        float(partitioned_seconds),
    )
    report.add_row(
        "full space (R^n runs, extrapolated)", full_runs, float(full_seconds)
    )
    report.notes.append(
        f"speedup: {full_seconds / max(partitioned_seconds, 1e-12):.1f}x "
        "fewer integrator-seconds for the same effective density "
        f"(budget cells = {budget.cells})"
    )
    return report
