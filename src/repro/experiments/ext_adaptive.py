"""Extension experiment: adaptive (single-run replication) growth.

The paper's related work splits ensemble design into one-shot
(multiple-run) and incremental (single-run replication) allocation.
This experiment grows the two sub-ensembles incrementally, promoting
the free configurations where the current M2TD model is most wrong
(see :mod:`repro.adaptive`), and compares three ways of spending the
same half-budget:

* adaptive fiber selection (model-mismatch guided);
* random fiber selection (same structure, no guidance);
* conventional random *cell* sampling (no structure at all).

Expected shape — a negative result that *strengthens* the paper:
adaptive and random fiber selection are statistically
indistinguishable (accuracy is governed by the sub-ensemble density
``E`` itself, exactly Table VII's ``P * E^2`` message), while both
beat unstructured cell sampling by an order of magnitude or more.
What matters is *that* you sample dense sub-ensembles, not *which*
fibers you pick.
"""

from __future__ import annotations

import numpy as np

from ..adaptive import AdaptiveEnsembleBuilder, random_reference
from ..sampling import RandomSampler
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport

#: Fraction of the full sub-ensemble budget the loop may spend.
BUDGET_FRACTION = 0.5

#: Seeds averaged per scheme.
N_SEEDS = 3


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    partition = study.default_partition()
    ranks = [config.default_rank] * study.space.n_modes
    full_budget = 2 * partition.pivot_space_size * partition.free_space_size(1)
    budget = int(BUDGET_FRACTION * full_budget)

    adaptive_accs, random_accs, conventional_accs = [], [], []
    cells_used = budget
    for seed in range(N_SEEDS):
        builder = AdaptiveEnsembleBuilder(
            study,
            partition,
            ranks,
            initial_fraction=0.2,
            batch_size=3,
            seed=config.seed + seed,
        )
        adaptive = builder.run(budget)
        cells_used = adaptive.cells_used
        reference, _ref_cells = random_reference(
            study, partition, ranks, cells_used, seed=config.seed + seed
        )
        conventional = study.run_conventional(
            RandomSampler(config.seed + seed), cells_used, ranks
        )
        adaptive_accs.append(adaptive.result.accuracy(study.truth))
        random_accs.append(reference.accuracy(study.truth))
        conventional_accs.append(conventional.accuracy)

    report = ExperimentReport(
        experiment_id="ext-adaptive",
        title="Extension: adaptive vs random fiber selection "
        f"(~{BUDGET_FRACTION:.0%} budget, mean of {N_SEEDS} seeds)",
        headers=["scheme", "accuracy (mean)", "cells"],
    )
    report.add_row(
        "adaptive fibers (model-mismatch)",
        float(np.mean(adaptive_accs)),
        cells_used,
    )
    report.add_row(
        "random fibers", float(np.mean(random_accs)), cells_used
    )
    report.add_row(
        "conventional random cells",
        float(np.mean(conventional_accs)),
        cells_used,
    )
    report.notes.append(
        "structured fibers >> unstructured cells; adaptive vs random "
        "fiber choice is within noise — density E, not fiber identity, "
        "drives accuracy (Table VII's message)"
    )
    return report
