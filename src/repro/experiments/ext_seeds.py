"""Extension experiment: seed robustness of the headline comparison.

Every table reports single-seed numbers (as does the paper).  This
experiment repeats the default-setting comparison over several RNG
seeds — which move the sub-ensemble selections and the conventional
samples — and reports mean and standard deviation per scheme.

Expected shape: the M2TD-vs-conventional gap dwarfs the seed-to-seed
spread by orders of magnitude; none of the reproduction's conclusions
is a seed artifact.
"""

from __future__ import annotations

import numpy as np

from ..sampling import GridSampler, RandomSampler, SliceSampler
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport

N_SEEDS = 5


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    ranks = [config.default_rank] * study.space.n_modes

    samples = {
        "M2TD-SELECT": [],
        "Random": [],
        "Grid": [],
        "Slice": [],
    }
    for offset in range(N_SEEDS):
        seed = config.seed + offset
        m2td = study.run_m2td(ranks, variant="select", seed=seed)
        samples["M2TD-SELECT"].append(m2td.accuracy)
        for sampler in (
            RandomSampler(seed),
            GridSampler(),
            SliceSampler(seed),
        ):
            result = study.run_conventional(sampler, m2td.cells, ranks)
            samples[sampler.name].append(result.accuracy)

    report = ExperimentReport(
        experiment_id="ext-seeds",
        title=f"Extension: seed robustness (mean ± std over {N_SEEDS} seeds)",
        headers=["scheme", "mean accuracy", "std", "min", "max"],
    )
    for scheme, values in samples.items():
        values = np.asarray(values, dtype=np.float64)
        report.add_row(
            scheme,
            float(values.mean()),
            float(values.std()),
            float(values.min()),
            float(values.max()),
        )
    report.notes.append(
        "Grid is deterministic, so its spread is exactly zero; the "
        "M2TD-vs-conventional gap exceeds every scheme's seed spread "
        "by orders of magnitude"
    )
    return report
