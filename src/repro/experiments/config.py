"""Shared experiment configuration and the study cache.

The paper's evaluation (Table I) sweeps resolutions 60-80 per mode,
ranks 5-20, and budgets up to 10^5 on an 18-server cluster; the scaled
defaults here keep every table reproducible on a laptop in minutes
while preserving each experiment's comparison structure (see
DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..core.pipeline import EnsembleStudy
from ..exceptions import ExperimentError
from ..runtime import Runtime
from ..simulation import make_system


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment runners.

    Attributes
    ----------
    resolutions:
        Parameter-space resolutions standing in for the paper's
        ``{60, 70, 80}``.
    ranks:
        Target decomposition ranks standing in for ``{5, 10, 20}``.
    default_resolution / default_rank:
        The single setting non-sweep tables use (the paper uses
        resolution 70, rank 10).
    systems:
        System names for the cross-system table (Table IV).
    servers:
        Cluster sizes for the D-M2TD scaling table (Table III).
    pivot_fractions / free_fractions:
        The ``P`` / ``E`` densities swept by Tables VI and VII.
    budget_fraction_low:
        The reduced-budget setting of Table V.
    campaign_budget_fraction:
        Fraction of the full sub-space budget an ``ext-campaign`` run
        may spend (the 0.88 default matches the golden regression's
        380-cell pin at resolution 6).
    seed:
        Base RNG seed for all sampling.
    method / keep_probability:
        Decomposition kernel for the M2TD schemes: ``"exact"``
        (default), ``"sketched"`` (MACH subsampling at
        ``keep_probability``), or ``"gram"``.  Threaded from the CLI's
        ``--method`` / ``--keep-probability`` flags.
    """

    resolutions: Tuple[int, ...] = (8, 10, 12)
    ranks: Tuple[int, ...] = (2, 3, 5)
    default_resolution: int = 10
    default_rank: int = 3
    systems: Tuple[str, ...] = (
        "double_pendulum",
        "triple_pendulum",
        "lorenz",
    )
    default_system: str = "double_pendulum"
    servers: Tuple[int, ...] = (1, 2, 4, 9, 18)
    pivot_fractions: Tuple[float, ...] = (1.0, 0.5, 0.25)
    free_fractions: Tuple[float, ...] = (1.0, 0.5, 0.25)
    budget_fraction_low: float = 0.1
    campaign_budget_fraction: float = 0.88
    pivots: Tuple[str, ...] = ("t", "phi1", "phi2", "m1", "m2")
    seed: int = 7
    method: str = "exact"
    keep_probability: float = 0.5

    def validate(self) -> None:
        if self.default_resolution < 4:
            raise ExperimentError("default_resolution must be >= 4")
        if self.default_rank < 1:
            raise ExperimentError("default_rank must be >= 1")
        if not self.resolutions or not self.ranks:
            raise ExperimentError("resolutions and ranks must be non-empty")
        if self.method not in ("exact", "sketched", "gram"):
            raise ExperimentError(
                f"unknown decomposition method {self.method!r}"
            )
        if not 0.0 < self.keep_probability <= 1.0:
            raise ExperimentError(
                "keep_probability must be in (0, 1], got "
                f"{self.keep_probability}"
            )
        if not 0.0 < self.campaign_budget_fraction <= 1.0:
            raise ExperimentError(
                "campaign_budget_fraction must be in (0, 1], got "
                f"{self.campaign_budget_fraction}"
            )


def default_config() -> ExperimentConfig:
    """Full laptop-scale configuration (minutes per table)."""
    return ExperimentConfig()


def quick_config() -> ExperimentConfig:
    """Smaller configuration for benchmarks and CI (seconds per table)."""
    return replace(
        default_config(),
        resolutions=(6, 8),
        ranks=(2, 3),
        default_resolution=8,
        default_rank=3,
        servers=(1, 4, 18),
    )


@dataclass
class StudyCache:
    """Memoize the expensive ground-truth construction per
    (system, resolution) — every scheme in a table shares it.

    With a :class:`~repro.runtime.Runtime` attached, study creation
    additionally goes through the runtime's content-addressed cache,
    so the memoization extends across experiment invocations (and,
    with a cache directory, across processes)."""

    runtime: Optional[Runtime] = None
    _studies: Dict[Tuple[str, int], EnsembleStudy] = field(default_factory=dict)

    def study(self, system_name: str, resolution: int) -> EnsembleStudy:
        key = (system_name, int(resolution))
        if key not in self._studies:
            self._studies[key] = EnsembleStudy.create(
                make_system(system_name), resolution, runtime=self.runtime
            )
        return self._studies[key]

    def clear(self) -> None:
        self._studies.clear()
