"""Scheme roster shared by the table runners: the three M2TD variants
against the three conventional baselines, at matched cell budgets.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.pipeline import EnsembleStudy, StudyResult
from ..exceptions import ExperimentError
from ..sampling import GridSampler, PFPartition, RandomSampler, SliceSampler

M2TD_VARIANTS = ("avg", "concat", "select")
CONVENTIONAL_SCHEMES = ("Random", "Grid", "Slice")
ALL_SCHEMES = tuple(f"M2TD-{v.upper()}" for v in M2TD_VARIANTS) + CONVENTIONAL_SCHEMES


def conventional_sampler(name: str, seed: int):
    """Instantiate a Section IV baseline sampler by display name."""
    if name == "Random":
        return RandomSampler(seed)
    if name == "Grid":
        return GridSampler()
    if name == "Slice":
        return SliceSampler(seed)
    raise ExperimentError(f"unknown conventional scheme {name!r}")


def run_all_schemes(
    study: EnsembleStudy,
    rank: int,
    seed: int,
    pivot: str = "t",
    partition: Optional[PFPartition] = None,
    pivot_fraction: float = 1.0,
    free_fraction: float = 1.0,
    join_kind: str = "join",
    sub_sampling: str = "cross",
    method: str = "exact",
    keep_probability: float = 0.5,
) -> Dict[str, StudyResult]:
    """Run every scheme on one study configuration.

    The conventional baselines receive exactly the cell budget the
    M2TD configuration consumes — the paper's "same number of
    simulation instances" ground rule.  ``method`` /
    ``keep_probability`` select the decomposition kernel for the M2TD
    schemes (the conventional baselines always decompose exactly).
    """
    ranks = [rank] * study.space.n_modes
    results: Dict[str, StudyResult] = {}
    for variant in M2TD_VARIANTS:
        result = study.run_m2td(
            ranks,
            variant=variant,
            pivot=pivot,
            partition=partition,
            pivot_fraction=pivot_fraction,
            free_fraction=free_fraction,
            join_kind=join_kind,
            sub_sampling=sub_sampling,
            seed=seed,
            method=method,
            keep_probability=keep_probability,
        )
        results[result.scheme] = result
    budget = next(iter(results.values())).cells
    for name in CONVENTIONAL_SCHEMES:
        sampler = conventional_sampler(name, seed)
        results[name] = study.run_conventional(sampler, budget, ranks)
    return results
