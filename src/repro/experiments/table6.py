"""Table VI reproduction: the impact of reduced pivot density ``P``.

Paper shape to reproduce: reducing ``P`` (at full sub-ensemble
density ``E``) lowers accuracy moderately — noticeably *less* than an
equal reduction of ``E`` (Table VII), because the stitched effective
density is proportional to ``P * E^2``.
"""

from __future__ import annotations

from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport
from .schemes import ALL_SCHEMES, run_all_schemes


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    report = ExperimentReport(
        experiment_id="table6",
        title="Varying pivot density P (paper Table VI; E = 100%)",
        headers=["P", "cells"] + list(ALL_SCHEMES),
    )
    for pivot_fraction in config.pivot_fractions:
        results = run_all_schemes(
            study,
            config.default_rank,
            seed=config.seed,
            pivot_fraction=pivot_fraction,
            method=config.method,
            keep_probability=config.keep_probability,
        )
        report.add_row(
            f"{pivot_fraction:.0%}",
            results["M2TD-SELECT"].cells,
            *(float(results[s].accuracy) for s in ALL_SCHEMES),
        )
    return report
