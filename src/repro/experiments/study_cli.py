"""Config-driven study runner: ``python -m repro.experiments.study_cli``.

Downstream users rarely want to write orchestration code; they want to
declare a study and get a table.  This CLI reads a JSON config,
builds the ground truth once, runs every declared scheme, prints the
comparison, and (optionally) writes machine-readable results.

Example config::

    {
      "system": "double_pendulum",
      "resolution": 8,
      "rank": 3,
      "seed": 7,
      "schemes": [
        {"kind": "m2td", "variant": "select", "pivot": "t"},
        {"kind": "m2td", "variant": "select", "join": "zero",
         "free_fraction": 0.2, "sub_sampling": "random"},
        {"kind": "conventional", "sampler": "Random"},
        {"kind": "conventional", "sampler": "Grid"}
      ]
    }

Conventional schemes receive the budget of the *first* M2TD scheme
(or an explicit ``"budget"`` field).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..core.pipeline import EnsembleStudy, StudyResult
from ..exceptions import ExperimentError
from ..faults import add_fault_args, inject_faults
from ..observability import add_observability_args, observe, span
from ..runtime import Runtime, TaskGraph, output
from ..simulation import make_system
from .reporting import format_table
from .schemes import conventional_sampler

REQUIRED_KEYS = ("system", "resolution", "rank", "schemes")


def load_config(path: str) -> Dict:
    try:
        with open(path) as handle:
            config = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot read config {path!r}: {exc}") from exc
    missing = [key for key in REQUIRED_KEYS if key not in config]
    if missing:
        raise ExperimentError(
            f"config {path!r} is missing required keys: {missing}"
        )
    if not isinstance(config["schemes"], list) or not config["schemes"]:
        raise ExperimentError("config needs a non-empty 'schemes' list")
    return config


def run_scheme(
    study: EnsembleStudy,
    scheme: Dict,
    ranks: List[int],
    seed: int,
    default_budget: Optional[int],
) -> StudyResult:
    kind = scheme.get("kind")
    if kind == "m2td":
        return study.run_m2td(
            ranks,
            variant=scheme.get("variant", "select"),
            pivot=scheme.get("pivot", "t"),
            pivot_fraction=float(scheme.get("pivot_fraction", 1.0)),
            free_fraction=float(scheme.get("free_fraction", 1.0)),
            join_kind=scheme.get("join", "join"),
            sub_sampling=scheme.get("sub_sampling", "cross"),
            seed=scheme.get("seed", seed),
            method=scheme.get("method", "exact"),
            keep_probability=float(scheme.get("keep_probability", 0.5)),
        )
    if kind == "conventional":
        budget = scheme.get("budget", default_budget)
        if budget is None:
            raise ExperimentError(
                "conventional scheme needs a 'budget' (or declare an "
                "m2td scheme first to match its budget)"
            )
        sampler = conventional_sampler(
            scheme.get("sampler", "Random"), scheme.get("seed", seed)
        )
        return study.run_conventional(sampler, int(budget), ranks)
    raise ExperimentError(
        f"unknown scheme kind {kind!r}; use 'm2td' or 'conventional'"
    )


def scheme_graph(
    study: EnsembleStudy, config: Dict, ranks: List[int], seed: int
) -> TaskGraph:
    """One task per declared scheme, on one shared ground truth.

    Schemes are independent of each other — a multi-worker runtime
    runs them concurrently — with one exception mirroring the
    sequential semantics: a conventional scheme without an explicit
    ``"budget"`` consumes the cell budget of the *first* m2td scheme,
    so its task depends on that scheme's result.
    """
    graph = TaskGraph()
    first_m2td: Optional[str] = None
    for index, scheme in enumerate(config["schemes"]):
        name = f"scheme-{index}:{scheme.get('kind', '?')}"
        needs_budget = (
            scheme.get("kind") == "conventional"
            and scheme.get("budget") is None
        )
        if needs_budget and first_m2td is None:
            raise ExperimentError(
                "conventional scheme needs a 'budget' (or declare an "
                "m2td scheme first to match its budget)"
            )

        def run(m2td_result=None, scheme=scheme):
            budget = (
                m2td_result.cells if m2td_result is not None else None
            )
            return run_scheme(study, scheme, ranks, seed, budget)

        if needs_budget:
            graph.add(name, run, m2td_result=output(first_m2td),
                      affinity="thread")
        else:
            graph.add(name, run, affinity="thread")
        if first_m2td is None and scheme.get("kind") == "m2td":
            first_m2td = name
    return graph


def run_config(
    config: Dict, runtime: Optional[Runtime] = None
) -> List[StudyResult]:
    """Execute a loaded config; returns one result per scheme.

    With a ``runtime``, ground-truth construction goes through the
    content-addressed cache (repeat invocations with a ``--cache-dir``
    skip the simulations entirely) and the schemes execute as a task
    graph on the runtime's workers.
    """
    system = make_system(str(config["system"]))
    study = EnsembleStudy.create(
        system, int(config["resolution"]), runtime=runtime
    )
    ranks = [int(config["rank"])] * study.space.n_modes
    seed = int(config.get("seed", 7))
    if runtime is None:
        results: List[StudyResult] = []
        default_budget: Optional[int] = None
        for scheme in config["schemes"]:
            result = run_scheme(study, scheme, ranks, seed, default_budget)
            if default_budget is None and scheme.get("kind") == "m2td":
                default_budget = result.cells
            results.append(result)
        return results
    graph = scheme_graph(study, config, ranks, seed)
    outcome = runtime.run(graph)
    return [outcome.results[name] for name in graph.names]


def render_results(results: List[StudyResult]) -> str:
    rows = [
        [
            r.scheme,
            float(r.accuracy),
            float(r.decompose_seconds),
            r.cells,
            r.runs,
        ]
        for r in results
    ]
    return format_table(
        ["scheme", "accuracy", "seconds", "cells", "runs"], rows
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.study_cli",
        description="Run a declared ensemble study from a JSON config.",
    )
    parser.add_argument("config", help="path to the JSON study config")
    parser.add_argument(
        "--output", help="write machine-readable results (JSON) here"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor pool width; schemes run concurrently when > 1",
    )
    parser.add_argument(
        "--cache-dir",
        help="content-addressed result cache directory; repeated "
        "studies over the same (system, resolution) reuse the "
        "ground-truth tensor instead of re-simulating",
    )
    parser.add_argument(
        "--method",
        choices=("exact", "sketched", "gram"),
        help="override the decomposition kernel of every m2td scheme "
        "(exact SVD, MACH-sketched, or Gram-matrix fast path)",
    )
    parser.add_argument(
        "--keep-probability",
        type=float,
        help="MACH keep probability for --method sketched "
        "(1.0 short-circuits to exact)",
    )
    add_observability_args(parser)
    add_fault_args(parser)
    args = parser.parse_args(argv)
    config = load_config(args.config)
    for scheme in config["schemes"]:
        if scheme.get("kind") != "m2td":
            continue
        if args.method is not None:
            scheme["method"] = args.method
        if args.keep_probability is not None:
            scheme["keep_probability"] = args.keep_probability
    runtime = Runtime(workers=args.workers, cache_dir=args.cache_dir)
    try:
        with observe(
            args.trace, args.profile, args.metrics,
            getattr(args, "events", None),
        ), inject_faults(
            args.fault_plan, args.fault_seed
        ):
            with span(
                "study", "experiment",
                system=str(config["system"]),
                resolution=int(config["resolution"]),
            ):
                results = run_config(config, runtime=runtime)
    finally:
        runtime.shutdown()
    print(render_results(results))
    if args.output:
        payload = [r.row() for r in results]
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main())
