"""Table VIII reproduction: the choice of the pivot parameter.

Paper shape to reproduce: the pivot choice moves M2TD accuracy around
somewhat, but *every* pivot stays orders of magnitude above the
conventional schemes — precise a-priori knowledge of the system is not
needed to partition it.

Following the paper's caption, the 3-mode sub-systems keep the free
parameters of the same pendulum together: when a pendulum parameter
is pivoted, the time mode replaces it in that pendulum's sub-system.
"""

from __future__ import annotations

from typing import List

from ..exceptions import ExperimentError
from ..sampling import PFPartition
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport
from .schemes import ALL_SCHEMES, run_all_schemes

PENDULUM_GROUPS = (("phi1", "m1"), ("phi2", "m2"))


def pendulum_partition(study, pivot: str) -> PFPartition:
    """Same-pendulum PF-partition of the double pendulum for ``pivot``."""
    group1: List[str] = list(PENDULUM_GROUPS[0])
    group2: List[str] = list(PENDULUM_GROUPS[1])
    if pivot == "t":
        pass  # both groups intact; time is the pivot
    elif pivot in group1:
        group1.remove(pivot)
        group1.append("t")
    elif pivot in group2:
        group2.remove(pivot)
        group2.append("t")
    else:
        raise ExperimentError(f"unknown double-pendulum pivot {pivot!r}")
    return study.default_partition(
        pivot=pivot, s1_free=tuple(group1), s2_free=tuple(group2)
    )


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study("double_pendulum", config.default_resolution)
    accuracy_report = ExperimentReport(
        experiment_id="table8",
        title="Pivot parameter choice (paper Table VIII; double pendulum)",
        headers=["Pivot"] + list(ALL_SCHEMES),
    )
    time_report = ExperimentReport(
        experiment_id="table8-time",
        title="Decomposition time (s) per pivot",
        headers=["Pivot"] + list(ALL_SCHEMES),
    )
    for pivot in config.pivots:
        partition = pendulum_partition(study, pivot)
        results = run_all_schemes(
            study,
            config.default_rank,
            seed=config.seed,
            pivot=pivot,
            partition=partition,
            method=config.method,
            keep_probability=config.keep_probability,
        )
        accuracy_report.add_row(
            pivot, *(float(results[s].accuracy) for s in ALL_SCHEMES)
        )
        time_report.add_row(
            pivot,
            *(float(results[s].decompose_seconds) for s in ALL_SCHEMES),
        )
    accuracy_report.extra_tables["decomposition time (s)"] = time_report
    return accuracy_report
