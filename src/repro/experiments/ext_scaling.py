"""Extension experiment: how the M2TD advantage scales with resolution.

The paper evaluates at resolutions 60-80 where conventional schemes
score 1e-9..3e-4; our scaled runs at 8-12 put them at 1e-3..1e-2.  The
bridge between the two is the claim this experiment tests directly:
as the resolution (and with it the full space `R^5`) grows while the
M2TD budget stays at `2 R^3` cells, the conventional schemes' density
falls as `1/R^2` and their accuracy collapses, while M2TD's stitched
effective density stays at 100% — so the accuracy *ratio* must grow
quickly with `R`.

Expected shape: M2TD accuracy roughly flat across resolutions; the
best conventional accuracy decaying; the ratio increasing
monotonically — extrapolating toward the paper's several-orders gap at
60-80.
"""

from __future__ import annotations

from ..sampling import GridSampler, RandomSampler, SliceSampler
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport

SCALING_RESOLUTIONS = (6, 8, 10, 12)


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    report = ExperimentReport(
        experiment_id="ext-scaling",
        title="Extension: accuracy gap vs resolution "
        "(M2TD-SELECT over best conventional)",
        headers=[
            "Res.",
            "full cells",
            "budget",
            "M2TD-SELECT",
            "best conventional",
            "ratio",
        ],
    )
    resolutions = tuple(
        r for r in SCALING_RESOLUTIONS if r <= config.default_resolution + 2
    )
    if len(resolutions) < 2:
        # Tiny configurations: sweep around the default instead.
        low = max(4, config.default_resolution - 1)
        resolutions = (low, config.default_resolution + 2)
    for resolution in resolutions:
        study = cache.study(config.default_system, resolution)
        ranks = [config.default_rank] * study.space.n_modes
        m2td = study.run_m2td(ranks, variant="select", seed=config.seed)
        best_conventional = max(
            study.run_conventional(sampler, m2td.cells, ranks).accuracy
            for sampler in (
                RandomSampler(config.seed),
                GridSampler(),
                SliceSampler(config.seed),
            )
        )
        report.add_row(
            resolution,
            study.truth.size,
            m2td.cells,
            float(m2td.accuracy),
            float(best_conventional),
            float(m2td.accuracy / max(best_conventional, 1e-12)),
        )
    report.notes.append(
        "budget = 2*R^3 cells per resolution; conventional density "
        "falls as 1/R^2, so the ratio should grow with R — "
        "extrapolating to the paper's orders-of-magnitude gap at 60-80"
    )
    return report
