"""Table VII reproduction: the impact of reduced sub-ensemble density
``E``.

Paper shape to reproduce: at the same total budget, reducing ``E``
hurts much more than reducing ``P`` (Table VI) — the stitched
effective density scales as ``P * E^2``, so ``E`` enters squared.
"""

from __future__ import annotations

from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport
from .schemes import ALL_SCHEMES, run_all_schemes


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    report = ExperimentReport(
        experiment_id="table7",
        title="Varying sub-ensemble density E (paper Table VII; P = 100%)",
        headers=["E", "cells"] + list(ALL_SCHEMES),
    )
    for free_fraction in config.free_fractions:
        results = run_all_schemes(
            study,
            config.default_rank,
            seed=config.seed,
            free_fraction=free_fraction,
            method=config.method,
            keep_probability=config.keep_probability,
        )
        report.add_row(
            f"{free_fraction:.0%}",
            results["M2TD-SELECT"].cells,
            *(float(results[s].accuracy) for s in ALL_SCHEMES),
        )
    return report
