"""Extension experiment: campaign-level adaptive budget allocation.

Where ``ext-adaptive`` grows one sub-ensemble fiber at a time, this
experiment evaluates the *campaign* layer (:mod:`repro.campaigns`):
whole rounds of simulations allocated across probed configurations by
per-cell stitched-reconstruction error, versus the uniform-allocation
control, at the same total budget on the epidemic study.

Reported per strategy: ground-truth RMSE of the final model, cells
charged, rounds run, and the stopping reason — the campaign analogue
of the paper's fixed-budget quality tables.
"""

from __future__ import annotations

from ..campaigns import CampaignOrchestrator, CampaignSpec
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport

#: Campaign study resolution: the golden-test scale — big enough for
#: several confirm rounds, small enough for seconds-per-run.
CAMPAIGN_RESOLUTION = 6

#: Confirm-round batch in simulation cells.
CAMPAIGN_BATCH = 24


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study("epidemic_seir", CAMPAIGN_RESOLUTION)
    partition = study.default_partition()
    full_budget = (
        2 * partition.pivot_space_size * partition.free_space_size(1)
    )
    budget = max(
        CAMPAIGN_BATCH, int(config.campaign_budget_fraction * full_budget)
    )

    report = ExperimentReport(
        experiment_id="ext-campaign",
        title="Extension: adaptive vs uniform campaign allocation "
        f"(epidemic, {config.campaign_budget_fraction:.0%} of "
        f"{full_budget} cells)",
        headers=[
            "allocation", "truth RMSE", "cells", "rounds", "stop",
        ],
    )
    finals = {}
    for allocation in ("adaptive", "uniform"):
        spec = CampaignSpec(
            scenario="epidemic_seir",
            budget=budget,
            batch=CAMPAIGN_BATCH,
            success_delta=1e-9,
            resolution=CAMPAIGN_RESOLUTION,
            rank=2,
            seed=config.seed,
            allocation=allocation,
            max_rounds=12,
        )
        with CampaignOrchestrator(
            spec, study=study, truth_metrics=True
        ) as orchestrator:
            outcome = orchestrator.run()
        final_rmse = outcome.rounds[-1].truth_rmse
        finals[allocation] = final_rmse
        report.add_row(
            allocation,
            float(final_rmse),
            outcome.cells_simulated,
            len(outcome.rounds),
            outcome.stop_reason,
        )
    if finals["adaptive"] < finals["uniform"]:
        report.notes.append(
            "error-guided allocation beats uniform at equal budget — "
            "the probe signal concentrates cells on the worst fibers"
        )
    else:
        report.notes.append(
            "adaptive within noise of uniform at this budget; raise "
            "--campaign-budget-fraction to give the signal more rounds"
        )
    return report
