"""Extension experiment: stronger conventional baselines.

The paper compares against Random/Grid/Slice sampling; two natural
strengthenings from its own related work are evaluated here at the
same budget:

* **LHS** — Latin hypercube designs from the experiment-design
  literature (Section II-A): space-filling, stratified sampling;
* **MACH-style rescaling** ([31]) — uniform cell sampling is exactly a
  MACH sketch of the full tensor *if* the survivors are rescaled by
  ``1/p``; comparing Random vs its rescaled twin isolates the effect
  of the unbiased-sketch correction.

Expected shape: LHS lands in the conventional cluster with Random
(space-filling cannot fix the fundamental sparsity); the MACH
rescaling is *worse than zero-filling* here — it repairs the
reconstruction norm in expectation but at ensemble densities
(~1e-2 and below) the variance of the rescaled sketch dwarfs the
signal and accuracy goes negative.  MACH's guarantees assume far
denser sketches than any simulation budget affords, which is
precisely the paper's argument for changing the sampling instead.
"""

from __future__ import annotations

from ..sampling import GridSampler, RandomSampler, SliceSampler
from ..sampling.lhs_sampler import LatinHypercubeSampler
from ..tensor import SparseTensor, clip_ranks, hosvd
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport


def mach_scaled_accuracy(study, budget: int, ranks) -> float:
    """Random sampling with MACH's 1/p rescaling, then HOSVD."""
    sample = RandomSampler(0).sample(study.space.shape, budget)
    keep_probability = budget / study.truth.size
    values = study.truth[tuple(sample.coords.T)] / keep_probability
    sketch = SparseTensor(study.space.shape, sample.coords, values)
    effective_ranks = clip_ranks(study.space.shape, ranks)
    tucker = hosvd(sketch, effective_ranks)
    return float(tucker.accuracy(study.truth))


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    ranks = [config.default_rank] * study.space.n_modes
    m2td = study.run_m2td(ranks, variant="select", seed=config.seed)
    budget = m2td.cells

    report = ExperimentReport(
        experiment_id="ext-baselines",
        title="Extension: stronger conventional baselines at matched budget",
        headers=["scheme", "accuracy"],
    )
    for sampler in (
        RandomSampler(config.seed),
        LatinHypercubeSampler(config.seed),
        GridSampler(),
        SliceSampler(config.seed),
    ):
        result = study.run_conventional(sampler, budget, ranks)
        report.add_row(result.scheme, float(result.accuracy))
    report.add_row(
        "Random + MACH 1/p rescaling",
        mach_scaled_accuracy(study, budget, ranks),
    )
    report.add_row("Partition-stitch + M2TD-SELECT", float(m2td.accuracy))
    return report
