"""Extension experiment: robustness to stochastic simulations.

Real ensembles are noisy — stochastic simulators, measurement error in
the observed configuration, numerical jitter.  This experiment
corrupts every *executed* simulation cell with Gaussian noise (a
fraction of the ground truth's RMS value) before decomposition, and
sweeps the noise level.

Expected shape: all schemes lose accuracy as noise grows, but the
ordering is preserved — the join tensor averages two observations per
cell, which even gives M2TD a small variance advantage.  The paper's
conclusions do not hinge on noiseless simulators.
"""

from __future__ import annotations

import numpy as np

from ..core.m2td import m2td_decompose
from ..sampling import RandomSampler, budget_for_fractions
from ..tensor import SparseTensor, clip_ranks, hosvd, make_rng
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport

NOISE_LEVELS = (0.0, 0.05, 0.2, 0.5)


def _noisy(values: np.ndarray, scale: float, rng) -> np.ndarray:
    if scale == 0.0:
        return values
    return values + scale * rng.standard_normal(values.shape)


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    ranks = [config.default_rank] * study.space.n_modes
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    rms = float(np.sqrt(np.mean(study.truth**2)))

    report = ExperimentReport(
        experiment_id="ext-noise",
        title="Extension: accuracy under simulation noise "
        "(noise sigma as a fraction of the truth RMS)",
        headers=["noise", "M2TD-SELECT", "Random", "ratio"],
    )
    for level in NOISE_LEVELS:
        rng = make_rng(config.seed)
        sigma = level * rms
        # M2TD path with noisy sub-ensemble observations.
        x1, x2, cells, _runs = study.sample_sub_ensembles(
            partition, budget, seed=config.seed
        )
        x1 = SparseTensor(x1.shape, x1.coords, _noisy(x1.values, sigma, rng))
        x2 = SparseTensor(x2.shape, x2.coords, _noisy(x2.values, sigma, rng))
        m2td = m2td_decompose(
            x1, x2, partition, ranks, variant="select"
        )
        m2td_accuracy = float(m2td.accuracy(study.truth))
        # Conventional path with equally noisy cells.
        sample = RandomSampler(config.seed).sample(study.space.shape, cells)
        values = _noisy(study.truth[tuple(sample.coords.T)], sigma, rng)
        ensemble = SparseTensor(study.space.shape, sample.coords, values)
        tucker = hosvd(ensemble, clip_ranks(study.space.shape, ranks))
        random_accuracy = float(tucker.accuracy(study.truth))
        report.add_row(
            f"{level:.0%}",
            m2td_accuracy,
            random_accuracy,
            m2td_accuracy / max(random_accuracy, 1e-12),
        )
    report.notes.append(
        "both sub-ensembles' cells are corrupted independently; the "
        "join's two-observation averaging damps the noise for M2TD"
    )
    return report
