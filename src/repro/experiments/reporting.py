"""Experiment report containers and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def format_value(value) -> str:
    """Human-friendly cell formatting: small accuracies in scientific
    notation (matching the paper's tables), other floats to 4 digits."""
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-2:
            return f"{value:.0e}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned plain-text table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(parts):
        return "  ".join(str(p).rjust(w) for p, w in zip(parts, widths))
    divider = "  ".join("-" * w for w in widths)
    body = [line(headers), divider]
    body.extend(line(row) for row in cells)
    return "\n".join(body)


@dataclass
class ExperimentReport:
    """One reproduced table/figure: metadata plus printable tables."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extra_tables: Dict[str, "ExperimentReport"] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        for name, table in self.extra_tables.items():
            parts.append("")
            parts.append(f"-- {name} --")
            parts.append(format_table(table.headers, table.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def as_dicts(self) -> List[Dict]:
        return [dict(zip(self.headers, row)) for row in self.rows]
