"""Command-line entry point: ``python -m repro.experiments``.

Examples
--------
List experiments::

    python -m repro.experiments --list

Run one table with the quick configuration::

    python -m repro.experiments table2 --quick

Run everything and write the reports to a file::

    python -m repro.experiments --all --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from ..distributed.cli import add_worker_args, apply_worker_args
from ..faults import add_fault_args, inject_faults
from ..observability import add_observability_args, observe, span
from ..runtime import Runtime
from .config import default_config, quick_config
from .runner import available_experiments, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the M2TD paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick configuration",
    )
    parser.add_argument(
        "--output", help="also write the rendered reports to this file"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="runtime executor pool width for study construction",
    )
    parser.add_argument(
        "--cache-dir",
        help="on-disk content-addressed cache; repeated invocations "
        "reuse ground-truth tensors instead of re-simulating",
    )
    parser.add_argument(
        "--method",
        choices=("exact", "sketched", "gram"),
        default="exact",
        help="decomposition kernel for the M2TD schemes: exact SVD "
        "(default), MACH-sketched entry subsampling, or the "
        "Gram-matrix fast path",
    )
    parser.add_argument(
        "--keep-probability",
        type=float,
        default=0.5,
        help="MACH keep probability for --method sketched "
        "(1.0 short-circuits to exact; default 0.5)",
    )
    parser.add_argument(
        "--campaign-budget-fraction",
        type=float,
        default=0.88,
        help="fraction of the full sub-space budget the ext-campaign "
        "experiment may spend (default 0.88)",
    )
    add_observability_args(parser)
    add_fault_args(parser)
    add_worker_args(parser)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    apply_worker_args(args)
    config = quick_config() if args.quick else default_config()
    if (
        args.method != "exact"
        or args.keep_probability != 0.5
        or args.campaign_budget_fraction != 0.88
    ):
        from dataclasses import replace

        config = replace(
            config,
            method=args.method,
            keep_probability=args.keep_probability,
            campaign_budget_fraction=args.campaign_budget_fraction,
        )
        config.validate()
    if args.all:
        targets = available_experiments()
    elif args.experiments:
        targets = args.experiments
    else:
        build_parser().print_help()
        return 2
    runtime = Runtime(workers=args.workers, cache_dir=args.cache_dir)
    sections = []
    try:
        with observe(
            args.trace, args.profile, args.metrics,
            getattr(args, "events", None),
        ), inject_faults(
            args.fault_plan, args.fault_seed
        ):
            if args.all:
                with span("experiments:all", "experiment"):
                    reports = run_all(config, runtime=runtime)
                for experiment_id in targets:
                    sections.append(reports[experiment_id].render())
            else:
                for experiment_id in targets:
                    started = time.perf_counter()
                    with span(
                        f"experiment:{experiment_id}", "experiment",
                        quick=args.quick,
                    ):
                        report = run_experiment(
                            experiment_id, config, runtime=runtime
                        )
                    elapsed = time.perf_counter() - started
                    rendered = report.render()
                    sections.append(f"{rendered}\n[ran in {elapsed:.1f}s]")
    finally:
        runtime.shutdown()
    text = "\n\n".join(sections)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
