"""Extension experiment: factor-subspace recovery.

Frobenius accuracy (the paper's metric) measures reconstruction; a
decision maker additionally wants the *factor subspaces* — the actual
patterns — to be right.  This experiment decomposes the full
ground-truth tensor once (the reference patterns) and measures, per
mode, how well each scheme's factor subspaces align with it
(mean squared cosine of the principal angles; 1 = identical).

Expected shape: M2TD's factors recover the true subspaces far better
than the conventional schemes', whose factors are essentially noise —
the accuracy gap of Table II is a *pattern* gap, not just a norm gap.
"""

from __future__ import annotations

import numpy as np

from ..analysis import factor_recovery, truth_decomposition
from ..sampling import RandomSampler
from ..tensor import clip_ranks
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    ranks = [config.default_rank] * study.space.n_modes
    reference = truth_decomposition(
        study.truth, clip_ranks(study.truth.shape, ranks)
    )

    m2td = study.run_m2td(ranks, variant="select", seed=config.seed)
    m2td_recovery = factor_recovery(
        m2td.m2td.tucker,
        reference,
        mode_map=m2td.m2td.partition.join_modes,
    )
    random_result = study.run_conventional(
        RandomSampler(config.seed), m2td.cells, ranks
    )
    random_recovery = factor_recovery(random_result.tucker, reference)

    report = ExperimentReport(
        experiment_id="ext-subspace",
        title="Extension: factor-subspace recovery vs ground truth "
        "(affinity; 1 = perfect)",
        headers=["mode", "M2TD-SELECT", "Random"],
    )
    mode_names = study.space.mode_names
    # Report in original mode order.
    m2td_by_mode = {
        m2td.m2td.partition.join_modes[r.mode]: r for r in m2td_recovery
    }
    for mode in range(study.space.n_modes):
        report.add_row(
            mode_names[mode],
            float(m2td_by_mode[mode].affinity),
            float(random_recovery[mode].affinity),
        )
    report.add_row(
        "(mean)",
        float(np.mean([r.affinity for r in m2td_recovery])),
        float(np.mean([r.affinity for r in random_recovery])),
    )
    return report
