"""Table II reproduction: accuracy and decomposition time on the
double pendulum across resolutions and target ranks.

Paper shape to reproduce: M2TD-based schemes beat the conventional
schemes by orders of magnitude at equal budget; among conventional
schemes Random is worst; among M2TD variants SELECT leads, with its
margin growing at higher ranks.  M2TD decomposition costs more than
the conventional schemes (denser stitched tensor) but amortises the
effective-density gain.
"""

from __future__ import annotations

from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport
from .schemes import ALL_SCHEMES, run_all_schemes


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    accuracy_report = ExperimentReport(
        experiment_id="table2",
        title="Double pendulum: accuracy across resolution x rank "
        "(paper Table II(a))",
        headers=["Res.", "Rank"] + list(ALL_SCHEMES),
    )
    time_report = ExperimentReport(
        experiment_id="table2-time",
        title="Double pendulum: decomposition time (s) "
        "(paper Table II(b))",
        headers=["Res.", "Rank"] + list(ALL_SCHEMES),
    )
    for resolution in config.resolutions:
        study = cache.study(config.default_system, resolution)
        for rank in config.ranks:
            results = run_all_schemes(
                study, rank, seed=config.seed,
                method=config.method,
                keep_probability=config.keep_probability,
            )
            accuracy_report.add_row(
                resolution,
                rank,
                *(float(results[s].accuracy) for s in ALL_SCHEMES),
            )
            time_report.add_row(
                resolution,
                rank,
                *(float(results[s].decompose_seconds) for s in ALL_SCHEMES),
            )
    accuracy_report.extra_tables["decomposition time (s)"] = time_report
    accuracy_report.notes.append(
        "resolutions stand in for the paper's 60/70/80; ranks for 5/10/20"
    )
    return accuracy_report
