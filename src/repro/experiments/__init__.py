"""Experiment harness reproducing the paper's evaluation section.

One runner per table/figure (Tables II-VIII, Figure 6, the Section
VII-E1 cost analysis), a shared configuration, and a CLI
(``python -m repro.experiments``).
"""

from .config import (
    ExperimentConfig,
    StudyCache,
    default_config,
    quick_config,
)
from .reporting import ExperimentReport, format_table, format_value
from .runner import (
    EXPERIMENTS,
    available_experiments,
    run_all,
    run_experiment,
)
from .schemes import (
    ALL_SCHEMES,
    CONVENTIONAL_SCHEMES,
    M2TD_VARIANTS,
    conventional_sampler,
    run_all_schemes,
)

__all__ = [
    "ExperimentConfig",
    "StudyCache",
    "default_config",
    "quick_config",
    "ExperimentReport",
    "format_table",
    "format_value",
    "EXPERIMENTS",
    "available_experiments",
    "run_all",
    "run_experiment",
    "ALL_SCHEMES",
    "CONVENTIONAL_SCHEMES",
    "M2TD_VARIANTS",
    "conventional_sampler",
    "run_all_schemes",
]
