"""Table III reproduction: D-M2TD per-phase wall-clock against the
number of servers (simulated cluster; see DESIGN.md substitutions).

Paper shape to reproduce: Phase 3 (core recovery) is the costliest
step; adding servers reduces every phase with diminishing returns due
to communication/scheduling overheads.
"""

from __future__ import annotations

from ..distributed import ClusterModel, distributed_m2td
from ..sampling.budget import budget_for_fractions
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    partition = study.default_partition(pivot="t")
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = study.sample_sub_ensembles(
        partition, budget, seed=config.seed
    )
    ranks = [config.default_rank] * study.space.n_modes
    outcome = distributed_m2td(
        x1, x2, partition, ranks, variant="select"
    )
    report = ExperimentReport(
        experiment_id="table3",
        title="D-M2TD phase times (s) vs number of servers "
        "(paper Table III; simulated cluster)",
        headers=["Servers", "Phase1", "Phase2", "Phase3", "Total"],
    )
    for n_servers in config.servers:
        cluster = ClusterModel(n_servers=n_servers)
        times = outcome.phase_times(cluster)
        report.add_row(
            n_servers,
            float(times["phase1"]),
            float(times["phase2"]),
            float(times["phase3"]),
            float(sum(times.values())),
        )
    report.notes.append(
        f"decomposition accuracy: {outcome.result.accuracy(study.truth):.4f} "
        "(identical to single-node M2TD-SELECT)"
    )
    return report
