"""Table V reproduction: reduced budgets and zero-join stitching.

Paper shape to reproduce: shrinking the simulation budget drops
accuracy for every scheme, but M2TD stays orders of magnitude ahead of
the conventional baselines; in the low-budget regime zero-join
stitching beats plain join (it repairs the join tensor's collapsed
effective density).

The low-budget rows sample the sub-spaces *uniformly at random* (the
regime where per-pivot observations are partial); at full budget the
cross-product protocol applies and join/zero-join coincide.
"""

from __future__ import annotations

from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport
from .schemes import ALL_SCHEMES, run_all_schemes


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    report = ExperimentReport(
        experiment_id="table5",
        title="Reduced budgets and zero-joins (paper Table V)",
        headers=["Budget", "Stitch"] + list(ALL_SCHEMES) + ["join nnz"],
    )
    low = config.budget_fraction_low
    settings = [
        ("100%", "join", dict(free_fraction=1.0, sub_sampling="cross")),
        (
            f"{low:.0%}",
            "join",
            dict(free_fraction=low, sub_sampling="random"),
        ),
        (
            f"{low:.0%}",
            "zero-join",
            dict(free_fraction=low, sub_sampling="random", join_kind="zero"),
        ),
    ]
    for budget_label, stitch_label, kwargs in settings:
        results = run_all_schemes(
            study, config.default_rank, seed=config.seed,
            method=config.method,
            keep_probability=config.keep_probability, **kwargs
        )
        join_nnz = results["M2TD-SELECT"].join_nnz
        report.add_row(
            budget_label,
            stitch_label,
            *(float(results[s].accuracy) for s in ALL_SCHEMES),
            join_nnz,
        )
    report.notes.append(
        "low-budget rows use uniform random sub-space sampling; the "
        "conventional schemes' budget matches the M2TD cells per row"
    )
    return report
