"""Table IV reproduction: accuracy and decomposition time across the
three dynamic systems (double pendulum, triple pendulum, Lorenz).

Paper shape to reproduce: the Table II pattern holds per system —
M2TD variants are orders of magnitude above the conventional schemes.
"""

from __future__ import annotations

from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport
from .schemes import ALL_SCHEMES, run_all_schemes


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    accuracy_report = ExperimentReport(
        experiment_id="table4",
        title="Accuracy across dynamic systems (paper Table IV)",
        headers=["System"] + list(ALL_SCHEMES),
    )
    time_report = ExperimentReport(
        experiment_id="table4-time",
        title="Decomposition time (s) across dynamic systems",
        headers=["System"] + list(ALL_SCHEMES),
    )
    for system_name in config.systems:
        study = cache.study(system_name, config.default_resolution)
        results = run_all_schemes(
            study, config.default_rank, seed=config.seed,
            method=config.method,
            keep_probability=config.keep_probability,
        )
        accuracy_report.add_row(
            system_name, *(float(results[s].accuracy) for s in ALL_SCHEMES)
        )
        time_report.add_row(
            system_name,
            *(float(results[s].decompose_seconds) for s in ALL_SCHEMES),
        )
    accuracy_report.extra_tables["decomposition time (s)"] = time_report
    return accuracy_report
