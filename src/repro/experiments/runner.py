"""Experiment registry: map experiment ids to their runners."""

from __future__ import annotations

import logging
import time

from typing import Callable, Dict, List, Optional

from ..exceptions import ExperimentError
from ..runtime import Runtime
from . import (
    ext_adaptive,
    ext_baselines,
    ext_campaign,
    ext_completion,
    ext_multiway,
    ext_noise,
    ext_pendulum5,
    ext_scaling,
    ext_seeds,
    ext_subspace,
    figures,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from .config import ExperimentConfig, StudyCache, default_config
from .reporting import ExperimentReport

logger = logging.getLogger(__name__)

Runner = Callable[[ExperimentConfig, StudyCache], ExperimentReport]

EXPERIMENTS: Dict[str, Runner] = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "fig6": figures.run_fig6,
    "fig-cost": figures.run_cost_amortisation,
    "fig-budget": figures.run_budget_curve,
    "ext-adaptive": ext_adaptive.run,
    "ext-baselines": ext_baselines.run,
    "ext-campaign": ext_campaign.run,
    "ext-completion": ext_completion.run,
    "ext-multiway": ext_multiway.run,
    "ext-noise": ext_noise.run,
    "ext-pendulum5": ext_pendulum5.run,
    "ext-scaling": ext_scaling.run,
    "ext-seeds": ext_seeds.run,
    "ext-subspace": ext_subspace.run,
}


def available_experiments() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    config: Optional[ExperimentConfig] = None,
    cache: Optional[StudyCache] = None,
    runtime: Optional[Runtime] = None,
) -> ExperimentReport:
    """Run one experiment by id (``table2`` ... ``fig-cost``).

    A ``runtime`` (when no explicit ``cache`` is given) routes
    ground-truth construction through the content-addressed result
    cache, so repeated invocations with the same on-disk cache
    directory skip the simulations.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {available_experiments()}"
        ) from None
    started = time.perf_counter()
    report = runner(
        config or default_config(), cache or StudyCache(runtime=runtime)
    )
    logger.info(
        "experiment %s finished in %.1fs (%d rows)",
        experiment_id,
        time.perf_counter() - started,
        len(report.rows),
    )
    return report


def run_all(
    config: Optional[ExperimentConfig] = None,
    runtime: Optional[Runtime] = None,
) -> Dict[str, ExperimentReport]:
    """Run every experiment, sharing one study cache."""
    config = config or default_config()
    cache = StudyCache(runtime=runtime)
    return {
        experiment_id: runner(config, cache)
        for experiment_id, runner in EXPERIMENTS.items()
    }
