"""Extension experiment: can tensor *completion* rescue conventional
sampling?

The paper argues for changing the *sampling* (partition-stitch); an
obvious counter-proposal is to keep random sampling and change the
*decomposition* — EM-Tucker completion imputes the missing cells from
the low-rank model instead of treating them as zeros.  This experiment
pits Random + EM-completion against Random + HOSVD and against
M2TD-SELECT at the same cell budget.

Expected shape: completion helps the conventional baseline (often by
an order of magnitude) but remains far below partition-stitch + M2TD —
at ensemble densities there simply is not enough signal per fiber for
imputation to latch onto.
"""

from __future__ import annotations

from ..sampling import RandomSampler
from ..tensor import SparseTensor, clip_ranks, completion_accuracy, em_tucker
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study(config.default_system, config.default_resolution)
    ranks = [config.default_rank] * study.space.n_modes

    m2td = study.run_m2td(ranks, variant="select", seed=config.seed)
    budget = m2td.cells

    sampler = RandomSampler(config.seed)
    sample = sampler.sample(study.space.shape, budget)
    values = study.truth[tuple(sample.coords.T)]
    observed = SparseTensor(study.space.shape, sample.coords, values)
    effective_ranks = clip_ranks(study.space.shape, ranks)

    plain = study.run_conventional(RandomSampler(config.seed), budget, ranks)
    completed = em_tucker(observed, effective_ranks, n_iter=20)

    report = ExperimentReport(
        experiment_id="ext-completion",
        title="Extension: EM-Tucker completion vs partition-stitch "
        "(matched budget)",
        headers=["scheme", "accuracy", "budget cells"],
    )
    report.add_row("Random + HOSVD (paper baseline)", float(plain.accuracy), budget)
    report.add_row(
        "Random + EM-Tucker completion",
        float(completion_accuracy(completed, study.truth)),
        budget,
    )
    report.add_row("Partition-stitch + M2TD-SELECT", float(m2td.accuracy), budget)
    report.notes.append(
        f"EM iterations: {completed.n_iterations} "
        f"(converged: {completed.converged})"
    )
    return report
