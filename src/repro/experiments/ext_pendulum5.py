"""Extension experiment: the intro's 5-parameter pendulum and
multi-pivot (k = 2) partitioning.

Paper Section I-B motivates everything with the 5-parameter double
pendulum (angles, masses, *and gravity*), whose simulation space
explodes as ``R^5``; the evaluation then freezes gravity.  This
experiment runs the actual 5-parameter system (6-mode ensemble tensor)
and PF-partitions it with **two** pivot modes — gravity and time —
exercising the paper's general ``k`` formulation beyond the evaluated
``k = 1``.

Expected shape: the Table II pattern carries over — partition-stitch +
M2TD beats conventional sampling by orders of magnitude on the bigger
system too, and sharing gravity as a second pivot keeps both
sub-systems anchored to the same gravity regime.
"""

from __future__ import annotations

from ..sampling import GridSampler, RandomSampler, SliceSampler
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport

#: Resolution for the 6-mode tensor (R^6 cells; keep it modest).
PENDULUM5_RESOLUTION = 6


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study("double_pendulum_g", PENDULUM5_RESOLUTION)
    ranks = [config.default_rank] * study.space.n_modes
    partition = study.default_partition(pivot=("g", "t"))

    report = ExperimentReport(
        experiment_id="ext-pendulum5",
        title="Extension: 5-parameter pendulum, k = 2 pivots (g, t)",
        headers=["scheme", "accuracy", "cells"],
    )
    budget = None
    for variant in ("avg", "concat", "select"):
        result = study.run_m2td(
            ranks, variant=variant, partition=partition, seed=config.seed
        )
        budget = result.cells
        report.add_row(result.scheme, float(result.accuracy), result.cells)
    for sampler in (
        RandomSampler(config.seed),
        GridSampler(),
        SliceSampler(config.seed),
    ):
        result = study.run_conventional(sampler, budget, ranks)
        report.add_row(result.scheme, float(result.accuracy), result.cells)
    report.notes.append(
        f"6-mode tensor at resolution {PENDULUM5_RESOLUTION} "
        f"({PENDULUM5_RESOLUTION**6} cells); sub-systems share "
        "pivots (g, t) and split (phi1, m1) / (phi2, m2)"
    )
    return report
