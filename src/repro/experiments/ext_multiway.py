"""Extension experiment: partition depth — two-way vs four-way.

The paper partitions into exactly two sub-systems; the construction
generalizes (see :mod:`repro.core.multiway`).  This experiment sweeps
the partition depth on the double pendulum:

* ``m = 2`` — the paper's scheme, budget ``2 * P * R^2``;
* ``m = 4`` — singleton groups (each sub-system varies one parameter
  plus time), budget ``4 * P * R`` — an ``R/2``-fold cheaper ensemble.

Expected shape: deeper partitioning trades accuracy for budget, yet
even ``m = 4`` stays orders of magnitude above conventional sampling
at its own (much smaller) budget.
"""

from __future__ import annotations

from ..core.multiway import MWPartition, multiway_study
from ..sampling import RandomSampler
from .config import ExperimentConfig, StudyCache
from .reporting import ExperimentReport

PENDULUM_GROUPS_2WAY = (("phi1", "m1"), ("phi2", "m2"))


def run(
    config: ExperimentConfig, cache: StudyCache = None
) -> ExperimentReport:
    config.validate()
    cache = cache or StudyCache()
    study = cache.study("double_pendulum", config.default_resolution)
    ranks = [config.default_rank] * study.space.n_modes

    report = ExperimentReport(
        experiment_id="ext-multiway",
        title="Extension: partition depth (m sub-systems, complete "
        "sub-ensembles)",
        headers=[
            "m",
            "groups",
            "budget cells",
            "M2TD-SELECT",
            "Random @ same budget",
        ],
    )
    settings = [
        (2, PENDULUM_GROUPS_2WAY),
        (4, None),  # singleton groups
    ]
    for m, groups in settings:
        partition = MWPartition.for_space(study.space, pivot="t", groups=groups)
        result, cells = multiway_study(
            study.truth, partition, ranks, variant="select"
        )
        baseline = study.run_conventional(
            RandomSampler(config.seed), cells, ranks
        )
        group_names = "/".join(
            "+".join(study.space.mode_names[mode] for mode in g)
            for g in partition.free_groups
        )
        report.add_row(
            m,
            group_names,
            cells,
            float(result.accuracy(study.truth)),
            float(baseline.accuracy),
        )
    report.notes.append(
        "m = 4 uses 1/R of the m = 2 budget per sub-ensemble pair; "
        "accuracy degrades gracefully while conventional sampling at "
        "the same budget collapses"
    )
    return report
