"""Exception hierarchy for the M2TD reproduction library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors (``TypeError`` etc. still
propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError, ValueError):
    """A tensor/matrix shape does not match what an operation requires."""


class RankError(ReproError, ValueError):
    """A requested decomposition rank is invalid for the given tensor."""


class ModeError(ReproError, ValueError):
    """A mode index is out of range or otherwise invalid."""


class SketchError(RankError):
    """A randomized sketch is unusable (e.g. every entry was dropped).

    Subclasses :class:`RankError` because an empty sketch has no
    computable factor subspaces — callers that handled the historical
    ``RankError`` keep working — while letting sketch-aware callers
    (``method="sketched"`` dispatch) catch exactly this case and fall
    back to the exact kernel.
    """


class KernelError(ReproError, ValueError):
    """A tensor-kernel option is invalid (e.g. an unknown ``method``)."""


class PartitionError(ReproError, ValueError):
    """A PF-partition specification is inconsistent with the system."""


class BudgetError(ReproError, ValueError):
    """A simulation budget cannot be satisfied (e.g. negative, or
    smaller than the minimum number of samples a scheme needs)."""


class SamplingError(ReproError, ValueError):
    """An ensemble sampler was configured inconsistently."""


class SimulationError(ReproError, RuntimeError):
    """A dynamical-system simulation failed (diverged, bad parameters)."""


class StitchError(ReproError, ValueError):
    """JE-stitching preconditions were violated (e.g. pivot mismatch)."""


class StorageError(ReproError, RuntimeError):
    """The block tensor store hit an I/O or catalog consistency problem."""


class BlockCorruptionError(StorageError):
    """A stored block is unreadable, truncated, or fails its checksum.

    Raised instead of returning a silently wrong tensor: a corrupt or
    missing-but-catalogued block must be loud so callers can recompute
    or restore from the source ensemble.
    """

    def __init__(self, tensor: str, block_id, reason: str):
        super().__init__(
            f"block {tuple(block_id)} of tensor {tensor!r} is corrupt: "
            f"{reason}"
        )
        self.tensor = tensor
        self.block_id = tuple(block_id)
        self.reason = reason

    def __reduce__(self):
        return (self.__class__, (self.tensor, self.block_id, self.reason))


class MapReduceError(ReproError, RuntimeError):
    """A MapReduce job failed (bad job spec, task raised, etc.)."""


class TaskGraphError(ReproError, ValueError):
    """A task graph is malformed (duplicate task, unknown dependency,
    or a dependency cycle)."""


class RuntimeExecutionError(ReproError, RuntimeError):
    """Base class for failures inside the task-graph execution runtime.

    Carries the name of the task that failed so orchestration layers
    can report *which* node of the graph went down.
    """

    def __init__(self, task_name: str, message: str):
        super().__init__(f"task {task_name!r}: {message}")
        self.task_name = task_name
        self._message = message

    def __reduce__(self):
        # Exceptions with non-(args,) __init__ signatures need explicit
        # reduce support to survive the ProcessPoolExecutor round-trip.
        return (self.__class__, (self.task_name, self._message))


class TaskFailedError(RuntimeExecutionError):
    """A task raised; the original exception is chained as ``__cause__``."""


class TaskTimeoutError(RuntimeExecutionError):
    """A task exceeded its per-attempt timeout."""


class RetryExhaustedError(RuntimeExecutionError):
    """A task kept failing after every attempt its retry policy allows."""

    def __init__(self, task_name: str, attempts: int, message: str):
        RuntimeExecutionError.__init__(
            self, task_name, f"failed after {attempts} attempt(s): {message}"
        )
        self.attempts = attempts
        self._inner = message

    def __reduce__(self):
        return (self.__class__, (self.task_name, self.attempts, self._inner))


class CacheError(ReproError, RuntimeError):
    """The result cache could not fingerprint or persist a value."""


class FaultInjectionError(ReproError, RuntimeError):
    """An injected fault fired (deterministic chaos testing).

    Carries full provenance — the injection site, the target id the
    fault matched, and the fault's id within its plan — so a failure
    observed N layers up can always be traced back to the schedule
    that caused it (and reproduced from the plan's seed).
    """

    def __init__(self, site: str, target: str, fault_id: str,
                 message: str = ""):
        detail = f"injected fault {fault_id!r} fired at {site}:{target}"
        if message:
            detail = f"{detail} ({message})"
        super().__init__(detail)
        self.site = site
        self.target = target
        self.fault_id = fault_id
        self.fault_message = message

    def __reduce__(self):
        # Survive the ProcessPoolExecutor round-trip (non-(args,)
        # __init__ signature).
        return (
            self.__class__,
            (self.site, self.target, self.fault_id, self.fault_message),
        )


class WorkerCrashError(FaultInjectionError):
    """An injected fault simulating a crashed worker mid-task."""


class WorkerProtocolError(ReproError, RuntimeError):
    """Base class for failures in the cross-process worker protocol."""


class WorkerSpawnError(WorkerProtocolError):
    """A worker process could not be started (or an injected spawn
    fault aborted the attempt)."""

    def __init__(self, worker_id: str, reason: str):
        super().__init__(f"worker {worker_id!r} failed to spawn: {reason}")
        self.worker_id = worker_id
        self.reason = reason

    def __reduce__(self):
        return (self.__class__, (self.worker_id, self.reason))


class CorruptReplyError(WorkerProtocolError):
    """A worker's reply failed its checksum — the payload travelled the
    transport but arrived damaged.  The supervisor treats this like a
    worker death (requeue the task, respawn the worker) rather than
    ever unpickling bytes it cannot trust."""

    def __init__(self, worker_id: str, task_id: str, reason: str):
        super().__init__(
            f"reply for task {task_id!r} from worker {worker_id!r} is "
            f"corrupt: {reason}"
        )
        self.worker_id = worker_id
        self.task_id = task_id
        self.reason = reason

    def __reduce__(self):
        return (self.__class__, (self.worker_id, self.task_id, self.reason))


class PoisonTaskError(WorkerProtocolError):
    """A task burned through its lease-expiry budget and was
    quarantined — it keeps taking workers down (or never finishes)
    no matter where it runs."""

    def __init__(self, task_id: str, expiries: int):
        super().__init__(
            f"task {task_id!r} quarantined after {expiries} expired "
            "lease(s)"
        )
        self.task_id = task_id
        self.expiries = expiries

    def __reduce__(self):
        return (self.__class__, (self.task_id, self.expiries))


class CrashBudgetError(WorkerProtocolError):
    """The supervisor's crash budget is exhausted and inline
    degradation was disabled."""

    def __init__(self, respawns: int, budget: int):
        super().__init__(
            f"crash budget exhausted: {respawns} respawn(s) against a "
            f"budget of {budget}"
        )
        self.respawns = respawns
        self.budget = budget

    def __reduce__(self):
        return (self.__class__, (self.respawns, self.budget))


class RemoteTaskError(WorkerProtocolError):
    """A worker-side exception whose original class could not be
    reconstructed in the supervisor process.

    The original type name, message and full traceback text are
    preserved verbatim, so a pickling quirk in some exotic exception
    class can never mask what actually went wrong in the worker.
    """

    def __init__(self, type_name: str, message: str,
                 remote_traceback: str = ""):
        super().__init__(f"worker raised {type_name}: {message}")
        self.type_name = type_name
        self.remote_message = message
        self.remote_traceback = remote_traceback

    def __reduce__(self):
        return (
            self.__class__,
            (self.type_name, self.remote_message, self.remote_traceback),
        )


class ServingError(ReproError, RuntimeError):
    """Base class for failures in the decomposition-serving layer."""


class StudyNotFoundError(ServingError):
    """A query named a study the catalog has not registered."""

    def __init__(self, study: str, known=()):
        known = sorted(known)
        detail = f"study {study!r} is not registered"
        if known:
            detail = f"{detail} (registered: {', '.join(known)})"
        super().__init__(detail)
        self.study = study
        self.known = tuple(known)

    def __reduce__(self):
        return (self.__class__, (self.study, self.known))


class QueryError(ServingError, ValueError):
    """A serving query is malformed (bad index, mode, or k)."""


class ServingOverloadError(ServingError):
    """The server shed this request: its queue is at capacity.

    Shedding is graceful-degradation by design — a bounded queue keeps
    admitted requests' latency predictable, and callers get a typed
    error they can back off on instead of an unbounded wait.
    """

    def __init__(self, study: str, depth: int, limit: int):
        super().__init__(
            f"study {study!r} queue is full ({depth} >= {limit}); "
            "request shed"
        )
        self.study = study
        self.depth = depth
        self.limit = limit

    def __reduce__(self):
        return (self.__class__, (self.study, self.depth, self.limit))


class ExperimentError(ReproError, RuntimeError):
    """An experiment runner was given an invalid configuration."""


class BenchError(ReproError, RuntimeError):
    """The benchmark harness hit an invalid workload, document, or
    comparison (unknown suite, malformed BENCH_*.json, schema drift)."""


class SLOConfigError(ReproError, ValueError):
    """An SLO objective file is malformed (unknown stat/op, missing
    fields, non-JSON content)."""


class CampaignError(ReproError, RuntimeError):
    """A campaign orchestration failure (see subclasses)."""


class CampaignSpecError(CampaignError, ValueError):
    """A campaign spec is malformed.  Carries the offending ``field``
    so CLI and tests can point at the exact knob, never a bare
    ``KeyError``."""

    def __init__(self, field: str, message: str):
        super().__init__(f"{field}: {message}")
        self.field = field
        self.detail = message

    def __reduce__(self):
        return (self.__class__, (self.field, self.detail))


class CampaignStateError(CampaignError):
    """A campaign's persisted journal cannot be used as asked (running
    over existing progress, resuming a finished campaign, fingerprint
    mismatch between journal and spec)."""
