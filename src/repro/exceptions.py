"""Exception hierarchy for the M2TD reproduction library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors (``TypeError`` etc. still
propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError, ValueError):
    """A tensor/matrix shape does not match what an operation requires."""


class RankError(ReproError, ValueError):
    """A requested decomposition rank is invalid for the given tensor."""


class ModeError(ReproError, ValueError):
    """A mode index is out of range or otherwise invalid."""


class PartitionError(ReproError, ValueError):
    """A PF-partition specification is inconsistent with the system."""


class BudgetError(ReproError, ValueError):
    """A simulation budget cannot be satisfied (e.g. negative, or
    smaller than the minimum number of samples a scheme needs)."""


class SamplingError(ReproError, ValueError):
    """An ensemble sampler was configured inconsistently."""


class SimulationError(ReproError, RuntimeError):
    """A dynamical-system simulation failed (diverged, bad parameters)."""


class StitchError(ReproError, ValueError):
    """JE-stitching preconditions were violated (e.g. pivot mismatch)."""


class StorageError(ReproError, RuntimeError):
    """The block tensor store hit an I/O or catalog consistency problem."""


class MapReduceError(ReproError, RuntimeError):
    """A MapReduce job failed (bad job spec, task raised, etc.)."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment runner was given an invalid configuration."""
