"""Declarative fault schedules: what breaks, where, and how often.

A :class:`FaultPlan` is a seedable, JSON-serialisable schedule of
:class:`FaultSpec` entries.  Each spec names an injection *site* (a
fixed instrumentation point in the stack), a glob over *target* ids
(task names, MapReduce task ids, cache fingerprints, ``tensor/block``
ids), a fault *kind*, and a budget saying how many matching events to
fault.  Determinism is the whole point: the same plan + seed produces
the same faults at the same events, so any chaos failure seen in CI is
reproducible locally from two values (see ``docs/fault-injection.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..exceptions import ReproError


class FaultPlanError(ReproError, ValueError):
    """A fault plan or spec is malformed (unknown site/kind, illegal
    combination, bad budget)."""


#: Instrumentation points threaded through the stack.
SITES: Tuple[str, ...] = (
    "runtime.task",       # task-graph scheduler; target = task name
    "executor.submit",    # executor venues; target = executor kind
    "mapreduce.map",      # map tasks; target = e.g. "map-0"
    "mapreduce.reduce",   # reduce tasks; target = e.g. "reduce-1"
    "cache.read",         # result-cache disk reads; target = fingerprint
    "storage.block-read",  # block store reads; target = "tensor/(i, j)"
    "serving.query",       # serving requests; target = "study/kind"
    "serving.factor-load",  # factor-bundle loads; target = study key
    "worker.spawn",        # worker (re)spawns; target = e.g. "worker-0"
    "worker.heartbeat",    # worker heartbeat loops; target = worker id
    "worker.result",       # worker task replies; target = task id
    "observability.telemetry",  # telemetry snapshot in a reply;
                                # target = task id — costs visibility
                                # (supervisor-side-only spans), never
                                # the task
    "campaign.round",      # campaign round boundary; target =
                           # "<campaign>/round-<n>" — an injected
                           # raise/crash kills the run mid-campaign,
                           # which `campaigns resume` must heal
    "campaign.state",      # campaign journal reads; target = campaign
                           # name — corrupt bit-flips the journal so
                           # resume's per-line checksums must
                           # quarantine the damage
)

#: Fault kinds a spec may request.
KINDS: Tuple[str, ...] = (
    "raise",         # the event raises FaultInjectionError
    "crash-worker",  # simulated crash in-process; at worker.* sites a
                     # REAL one — SIGKILL of the live worker process
    "delay",         # the event stalls for delay_seconds (straggler;
                     # at worker.heartbeat: the beat loop goes silent)
    "corrupt",       # the backing file — or a worker's reply bytes —
                     # is bit-flipped before the read
    "drop-output",   # a map task's output is discarded after it ran;
                     # at worker.result: the reply is never sent
)

#: Which kinds are meaningful at which sites.
_KIND_SITES: Dict[str, Tuple[str, ...]] = {
    "raise": SITES,
    "delay": SITES,
    "crash-worker": (
        "runtime.task", "executor.submit", "mapreduce.map",
        "mapreduce.reduce", "worker.spawn", "worker.heartbeat",
        "campaign.round",
    ),
    "corrupt": (
        "cache.read", "storage.block-read", "serving.factor-load",
        "worker.result", "observability.telemetry", "campaign.state",
    ),
    "drop-output": (
        "mapreduce.map", "worker.result", "observability.telemetry",
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    site:
        Injection point (one of :data:`SITES`).
    kind:
        What happens (one of :data:`KINDS`).
    target:
        ``fnmatch``-style glob the event's target id must match
        (``"*"`` matches every event at the site).
    times:
        How many matching events to fault (``None`` = every one).
    after:
        Skip this many matching events before the first injection —
        e.g. ``after=1, times=1`` faults only the second occurrence.
    probability:
        Chance each eligible event actually faults.  Decided by a
        stateless hash of ``(plan seed, fault id, event ordinal)``, so
        it is reproducible and independent of thread interleaving.
    delay_seconds:
        Stall length for ``kind="delay"``.
    message:
        Free-text note carried into the raised error's provenance.
    fault_id:
        Stable id within the plan (auto-assigned ``"fault-N"``).
    """

    site: str
    kind: str
    target: str = "*"
    times: Optional[int] = 1
    after: int = 0
    probability: float = 1.0
    delay_seconds: float = 0.05
    message: str = ""
    fault_id: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; use one of {SITES}"
            )
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; use one of {KINDS}"
            )
        if self.site not in _KIND_SITES[self.kind]:
            raise FaultPlanError(
                f"fault kind {self.kind!r} is not injectable at site "
                f"{self.site!r} (valid sites: {_KIND_SITES[self.kind]})"
            )
        if self.times is not None and self.times < 1:
            raise FaultPlanError(
                f"times must be >= 1 or null, got {self.times}"
            )
        if self.after < 0:
            raise FaultPlanError(f"after must be >= 0, got {self.after}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_seconds < 0:
            raise FaultPlanError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    def matches(self, target: str) -> bool:
        return fnmatchcase(target, self.target)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "site": self.site,
            "kind": self.kind,
            "target": self.target,
            "times": self.times,
        }
        if self.after:
            record["after"] = self.after
        if self.probability != 1.0:
            record["probability"] = self.probability
        if self.kind == "delay":
            record["delay_seconds"] = self.delay_seconds
        if self.message:
            record["message"] = self.message
        if self.fault_id:
            record["fault_id"] = self.fault_id
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultSpec":
        known = {
            "site", "kind", "target", "times", "after", "probability",
            "delay_seconds", "message", "fault_id",
        }
        unknown = sorted(set(record) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault spec keys: {unknown}")
        try:
            return cls(**record)
        except TypeError as exc:
            raise FaultPlanError(f"bad fault spec {record!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded collection of fault specs.

    The ``seed`` feeds every probabilistic decision; two injectors
    built from equal plans fire identically.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = ""
    _by_site: Dict[str, Tuple[FaultSpec, ...]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        labelled = tuple(
            spec if spec.fault_id
            else replace(spec, fault_id=f"fault-{index}")
            for index, spec in enumerate(self.faults)
        )
        seen: set = set()
        for spec in labelled:
            if spec.fault_id in seen:
                raise FaultPlanError(
                    f"duplicate fault_id {spec.fault_id!r} in plan"
                )
            seen.add(spec.fault_id)
        object.__setattr__(self, "faults", labelled)
        by_site: Dict[str, List[FaultSpec]] = {}
        for spec in labelled:
            by_site.setdefault(spec.site, []).append(spec)
        object.__setattr__(
            self,
            "_by_site",
            {site: tuple(specs) for site, specs in by_site.items()},
        )

    def __len__(self) -> int:
        return len(self.faults)

    def for_site(self, site: str) -> Tuple[FaultSpec, ...]:
        """Specs registered at ``site`` (declaration order)."""
        return self._by_site.get(site, ())

    @property
    def sites(self) -> Tuple[str, ...]:
        """Sites this plan touches — injection points not listed here
        can skip even the decision bookkeeping."""
        return tuple(self._by_site)

    def chance(self, spec: FaultSpec, ordinal: int) -> bool:
        """The deterministic coin flip for ``spec`` at match ``ordinal``.

        Stateless: a SHA-256 over (seed, fault id, ordinal) maps to
        [0, 1), so the outcome depends only on the event's identity —
        never on thread interleaving or Python's hash randomisation.
        """
        if spec.probability >= 1.0:
            return True
        if spec.probability <= 0.0:
            return False
        token = f"{self.seed}:{spec.fault_id}:{ordinal}".encode()
        draw = int.from_bytes(
            hashlib.sha256(token).digest()[:8], "big"
        ) / float(1 << 64)
        return draw < spec.probability

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "version": 1,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }
        if self.name:
            record["name"] = self.name
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultPlan":
        version = record.get("version", 1)
        if version != 1:
            raise FaultPlanError(f"unsupported fault plan version {version}")
        raw_faults = record.get("faults")
        if not isinstance(raw_faults, list):
            raise FaultPlanError("fault plan needs a 'faults' list")
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in raw_faults),
            seed=int(record.get("seed", 0)),
            name=str(record.get("name", "")),
        )

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(
                f"cannot read fault plan {str(path)!r}: {exc}"
            ) from exc
        return cls.from_dict(record)

    def to_file(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same schedule under a different seed."""
        return replace(self, seed=int(seed))


def plan_of(specs: Iterable[FaultSpec], seed: int = 0,
            name: str = "") -> FaultPlan:
    """Convenience constructor used heavily by the chaos tests."""
    return FaultPlan(faults=tuple(specs), seed=seed, name=name)
