"""Argparse glue for fault injection: the ``--fault-plan`` flag.

Mirrors :mod:`repro.observability.cli`::

    add_fault_args(parser)
    args = parser.parse_args(argv)
    with inject_faults(args.fault_plan):
        ...   # run under the plan; summary printed on exit

Reproducing a CI chaos failure is then one flag: save the failing
plan JSON (seed included) and rerun the same command with
``--fault-plan plan.json``.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from .injector import FaultInjector, use_injector
from .plan import FaultPlan

__all__ = ["add_fault_args", "inject_faults"]


def add_fault_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--fault-plan",
        metavar="FILE",
        help="JSON fault plan to inject during the run (deterministic "
        "chaos testing; see docs/fault-injection.md)",
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        metavar="N",
        help="override the plan's seed (replay a different schedule of "
        "probabilistic faults)",
    )


@contextmanager
def inject_faults(
    plan_path: Optional[str], seed: Optional[int] = None
) -> Iterator[Optional[FaultInjector]]:
    """Install a :class:`FaultInjector` for the block when a plan was
    given; prints an injection summary on the way out (also on error —
    knowing which faults fired is exactly what a post-mortem needs)."""
    if not plan_path:
        yield None
        return
    plan = FaultPlan.from_file(plan_path)
    if seed is not None:
        plan = plan.with_seed(seed)
    injector = FaultInjector(plan)
    try:
        with use_injector(injector):
            yield injector
    finally:
        totals = injector.summary()
        print(
            f"[faults] plan {plan.name or plan_path!r} seed {plan.seed}: "
            f"{totals['injected']} injected, "
            f"{totals['recovered']} recovered",
            file=sys.stderr,
        )
