"""Fault directives: parent-decided effects shipped across process
boundaries.

The injector's bookkeeping (match ordinals, pending-recovery records,
the ``faults.injected`` counter) must live in exactly one process or
determinism and the recovery accounting fall apart.  When work runs in
an external worker, the *decision* is therefore taken by the
supervising process — via :meth:`FaultInjector.decide` — and only the
*effect* travels: a :class:`FaultDirective` is plain picklable data
that the task body (or the worker runtime) applies wherever it ends up
executing.  A directive raising in a child process raises a real
:class:`~repro.exceptions.FaultInjectionError` with full provenance,
which the worker protocol's error envelope carries back intact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..exceptions import FaultInjectionError, WorkerCrashError

__all__ = ["FaultDirective", "directive_for"]


@dataclass(frozen=True)
class FaultDirective:
    """One armed fault effect, reduced to plain data.

    ``apply_pre`` fires the effects that land *before* the work
    (``crash-worker``, ``raise``, ``delay``); ``apply_post`` fires the
    ones that need the work done first (``drop-output`` — the output,
    not the task, is lost).  ``corrupt`` and reply-suppression effects
    are interpreted by the worker transport, not here.
    """

    site: str
    target: str
    fault_id: str
    kind: str
    message: str = ""
    delay_seconds: float = 0.0

    def apply_pre(self) -> None:
        if self.kind == "crash-worker":
            raise WorkerCrashError(
                self.site, self.target, self.fault_id,
                self.message or "worker crashed",
            )
        if self.kind == "raise":
            raise FaultInjectionError(
                self.site, self.target, self.fault_id, self.message
            )
        if self.kind == "delay":
            time.sleep(self.delay_seconds)

    def apply_post(self) -> None:
        if self.kind == "drop-output":
            raise FaultInjectionError(
                self.site, self.target, self.fault_id,
                self.message or "output dropped",
            )


def directive_for(injector, site: str, target: str
                  ) -> Optional[FaultDirective]:
    """Take a decision on ``injector`` and freeze it into a directive
    (``None`` when faulting is off or nothing matched)."""
    if not injector.enabled:
        return None
    decision = injector.decide(site, str(target))
    if decision is None:
        return None
    spec = decision.spec
    return FaultDirective(
        site=site,
        target=str(target),
        fault_id=spec.fault_id,
        kind=spec.kind,
        message=spec.message,
        delay_seconds=spec.delay_seconds,
    )
