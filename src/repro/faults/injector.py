"""The fault injector: deterministic decisions, applied effects,
recovery accounting.

One :class:`FaultInjector` executes one :class:`~repro.faults.plan.
FaultPlan` for one run.  Injection points across the stack call
:func:`get_injector` and, when faulting is active, ask it to act:

* ``wrap_callable(site, target, fn)`` — used where the *caller* must
  not blow up (the task-graph scheduler, executor submission): the
  decision is taken immediately, but the effect fires inside the
  returned callable, on whichever worker runs it, so retry machinery
  sees an ordinary task failure.
* ``fire(site, target, path=...)`` — used inside tasks and around
  file reads: raises / sleeps / bit-flips the file on the spot.
* ``note_recovery(site, target)`` — called by the layer that healed
  (a retry that succeeded, a cache that quarantined-and-recomputed);
  ticks ``faults.recovered`` and the recovery-latency histogram when
  a pending fault matches.

The default injector is :data:`NULL_INJECTOR` (``enabled = False``):
every hook is a cheap attribute check, so production runs pay nothing.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import FaultInjectionError, WorkerCrashError
from ..observability import get_metrics
from .plan import FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "InjectionRecord",
    "NULL_INJECTOR",
    "NullInjector",
    "get_injector",
    "set_injector",
    "use_injector",
]


@dataclass
class InjectionRecord:
    """One fault that actually fired, plus its (eventual) recovery."""

    fault_id: str
    site: str
    target: str
    kind: str
    hit: int
    injected_at: float = field(default_factory=time.monotonic)
    recovered: bool = False
    recovery_seconds: Optional[float] = None


@dataclass(frozen=True)
class FaultDecision:
    """An armed fault for one specific event."""

    spec: FaultSpec
    hit: int

    @property
    def kind(self) -> str:
        return self.spec.kind


class _FaultedCall:
    """A task callable with a fault effect baked in.

    Module-level and built from plain data so it survives pickling to
    a process pool; the effect fires where the task runs, which lets
    the scheduler's retry/timeout machinery treat it like any other
    task failure.
    """

    def __init__(self, site: str, target: str, fault_id: str, kind: str,
                 message: str, delay_seconds: float,
                 fn: Callable[..., Any]):
        self.site = site
        self.target = target
        self.fault_id = fault_id
        self.kind = kind
        self.message = message
        self.delay_seconds = delay_seconds
        self.fn = fn

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        if self.kind == "crash-worker":
            raise WorkerCrashError(
                self.site, self.target, self.fault_id,
                self.message or "worker crashed",
            )
        if self.kind == "raise":
            raise FaultInjectionError(
                self.site, self.target, self.fault_id, self.message
            )
        if self.kind == "delay":
            time.sleep(self.delay_seconds)
        return self.fn(*args, **kwargs)


def _flip_bytes(path, offsets: Tuple[float, ...] = (0.4, 0.6, 0.8)) -> None:
    """Bit-flip a few bytes of ``path`` in place (real corruption, so
    detection exercises the same checksum machinery as a rotten disk)."""
    size = os.path.getsize(path)
    if size == 0:
        return
    with open(path, "r+b") as handle:
        for fraction in offsets:
            position = min(size - 1, int(size * fraction))
            handle.seek(position)
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ 0xFF]))


class NullInjector:
    """No faults, no bookkeeping, no overhead."""

    enabled = False
    plan: Optional[FaultPlan] = None

    @property
    def records(self) -> List[InjectionRecord]:
        return []

    def decide(self, site: str, target: str) -> None:
        return None

    def fire(self, site: str, target: str, path=None) -> None:
        return None

    def wrap_callable(
        self, site: str, target: str, fn: Callable[..., Any]
    ) -> Callable[..., Any]:
        return fn

    def note_recovery(self, site: str, target: str) -> None:
        return None

    def summary(self) -> Dict[str, int]:
        return {"injected": 0, "recovered": 0}


class FaultInjector:
    """Execute a :class:`FaultPlan`: decide, apply, account.

    Decisions are consumed — a ``times=1`` spec fires once per
    injector, so chaos tests build a fresh injector per run to replay
    the same schedule.  All bookkeeping is lock-guarded; determinism
    under threads holds whenever targets are exact ids (the chaos
    suite's idiom).  Wildcard targets with ``probability < 1`` are
    deterministic per *match ordinal*, which is only stable when the
    matching events themselves arrive in a stable order.
    """

    enabled = True

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.records: List[InjectionRecord] = []
        self._matches: Dict[str, int] = {}
        self._pending: Dict[Tuple[str, str], InjectionRecord] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def decide(self, site: str, target: str) -> Optional[FaultDecision]:
        """Arm the first matching spec with budget left, if any.

        Ticks ``faults.injected`` and remembers the fault as pending
        recovery (except pure delays, which need none).
        """
        target = str(target)
        for spec in self.plan.for_site(site):
            if not spec.matches(target):
                continue
            with self._lock:
                ordinal = self._matches.get(spec.fault_id, 0) + 1
                self._matches[spec.fault_id] = ordinal
                if ordinal <= spec.after:
                    continue
                hit = ordinal - spec.after
                if spec.times is not None and hit > spec.times:
                    continue
                if not self.plan.chance(spec, ordinal):
                    continue
                record = InjectionRecord(
                    fault_id=spec.fault_id, site=site, target=target,
                    kind=spec.kind, hit=hit,
                )
                self.records.append(record)
                if spec.kind != "delay":
                    self._pending[(site, target)] = record
            get_metrics().counter("faults.injected").inc()
            return FaultDecision(spec=spec, hit=hit)
        return None

    # ------------------------------------------------------------------
    # effects
    # ------------------------------------------------------------------
    def fire(self, site: str, target: str, path=None
             ) -> Optional[FaultDecision]:
        """Decide and apply the effect on the spot.

        ``raise``/``crash-worker`` raise; ``delay`` sleeps; ``corrupt``
        bit-flips ``path`` (when given) so the caller's own integrity
        checking must catch it; ``drop-output`` is returned to the
        caller, which owns the discarding.
        """
        decision = self.decide(site, target)
        if decision is None:
            return None
        spec = decision.spec
        if spec.kind == "crash-worker":
            raise WorkerCrashError(
                site, target, spec.fault_id,
                spec.message or "worker crashed",
            )
        if spec.kind == "raise":
            raise FaultInjectionError(site, target, spec.fault_id,
                                      spec.message)
        if spec.kind == "delay":
            time.sleep(spec.delay_seconds)
        elif spec.kind == "corrupt" and path is not None and os.path.exists(
            path
        ):
            _flip_bytes(path)
        return decision

    def wrap_callable(
        self, site: str, target: str, fn: Callable[..., Any]
    ) -> Callable[..., Any]:
        """Decide now, fail later: the effect fires when the returned
        callable runs (on its executor), not at the call site."""
        decision = self.decide(site, target)
        if decision is None:
            return fn
        spec = decision.spec
        return _FaultedCall(
            site, str(target), spec.fault_id, spec.kind, spec.message,
            spec.delay_seconds, fn,
        )

    # ------------------------------------------------------------------
    # recovery accounting
    # ------------------------------------------------------------------
    def note_recovery(self, site: str, target: str) -> None:
        """The layer that healed reports back; a no-op unless a fault
        is pending for exactly this ``(site, target)``."""
        with self._lock:
            record = self._pending.pop((site, str(target)), None)
        if record is None:
            return
        record.recovered = True
        record.recovery_seconds = time.monotonic() - record.injected_at
        metrics = get_metrics()
        metrics.counter("faults.recovered").inc()
        metrics.histogram("faults.recovery_seconds").observe(
            record.recovery_seconds
        )

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        with self._lock:
            injected = len(self.records)
            recovered = sum(1 for r in self.records if r.recovered)
        return {"injected": injected, "recovered": recovered}


#: The process-wide default: faulting off.
NULL_INJECTOR = NullInjector()

_active: Any = NULL_INJECTOR


def get_injector():
    """The active injector (:data:`NULL_INJECTOR` unless installed)."""
    return _active


def set_injector(injector=None) -> None:
    """Install ``injector`` process-wide (``None`` restores the null)."""
    global _active
    _active = injector if injector is not None else NULL_INJECTOR


class use_injector:
    """``with use_injector(FaultInjector(plan)): ...`` — scoped install."""

    def __init__(self, injector):
        self.injector = injector
        self._previous = None

    def __enter__(self):
        global _active
        self._previous = _active
        _active = self.injector
        return self.injector

    def __exit__(self, *exc_info: Any) -> None:
        global _active
        _active = self._previous
