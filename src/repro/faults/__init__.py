"""repro.faults — deterministic fault injection and chaos verification.

The verification layer for the runtime and distributed stack: a
declarative, seedable :class:`FaultPlan` schedules faults (raise,
crash-worker, delay, corrupt, drop-output) against named injection
sites threaded through the scheduler, executors, result cache,
MapReduce engine and block store; a :class:`FaultInjector` executes
the plan deterministically and meters what fired and what recovered
(``faults.injected`` / ``faults.recovered`` counters and the
``faults.recovery_seconds`` histogram on the process metrics
registry).

The chaos suite under ``tests/faults/`` builds on this to prove the
properties the recovery code claims: single faults within the retry
budget leave D-M2TD output byte-identical, exhausted retries surface
the fault's provenance, and corrupted cache/storage bytes are always
detected — never served as a silently wrong tensor.

CLI runs take ``--fault-plan FILE`` (both ``python -m
repro.experiments`` and the study runner) to replay a schedule; see
``docs/fault-injection.md``.
"""

from .cli import add_fault_args, inject_faults
from .directive import FaultDirective, directive_for
from .injector import (
    NULL_INJECTOR,
    FaultInjector,
    InjectionRecord,
    NullInjector,
    get_injector,
    set_injector,
    use_injector,
)
from .plan import KINDS, SITES, FaultPlan, FaultPlanError, FaultSpec, plan_of

__all__ = [
    "FaultDirective",
    "directive_for",
    "KINDS",
    "SITES",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "plan_of",
    "FaultInjector",
    "InjectionRecord",
    "NullInjector",
    "NULL_INJECTOR",
    "get_injector",
    "set_injector",
    "use_injector",
    "add_fault_args",
    "inject_faults",
]
