"""SLICE sampling (paper Section IV): whole lower-dimensional slices.

A slice fixes a subset of the modes to concrete index values and
includes *every* cell of the remaining free modes.  The sampler picks
the largest number of free modes whose slice still fits the budget,
then draws random distinct fixed-coordinate assignments until the
budget is (almost) exhausted.

Slices give locally dense regions (good for the per-slice fibers) but
poor global coverage — the paper places Slice between Random and Grid.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..tensor.random import SeedLike, make_rng
from .base import Sampler, SampleSet, validate_budget


def choose_free_modes(shape: Tuple[int, ...], budget: int) -> Tuple[int, ...]:
    """Largest suffix-balanced set of free modes with slice size <= budget.

    Modes are considered from the last (time) backwards, mirroring how
    practitioners keep the time axis dense; each added mode multiplies
    the slice size by its resolution.
    """
    free = []
    slice_size = 1
    for mode in range(len(shape) - 1, -1, -1):
        if slice_size * shape[mode] <= budget:
            free.append(mode)
            slice_size *= shape[mode]
        else:
            break
    return tuple(sorted(free))


class SliceSampler(Sampler):
    """Random full slices of the simulation space."""

    name = "Slice"

    def __init__(self, seed: SeedLike = None):
        self._rng = make_rng(seed)

    def _sample(self, shape: Sequence[int], budget: int) -> SampleSet:
        shape = tuple(int(s) for s in shape)
        budget = validate_budget(budget, shape)
        free_modes = choose_free_modes(shape, budget)
        if not free_modes:
            # Budget below one full fiber: degenerate to random cells.
            size = int(np.prod(shape))
            flat = self._rng.choice(size, size=budget, replace=False)
            coords = np.stack(np.unravel_index(flat, shape), axis=1)
            return SampleSet(shape, coords)
        fixed_modes = tuple(m for m in range(len(shape)) if m not in free_modes)
        slice_size = int(np.prod([shape[m] for m in free_modes]))
        n_slices = max(1, budget // slice_size)
        fixed_space = (
            int(np.prod([shape[m] for m in fixed_modes])) if fixed_modes else 1
        )
        n_slices = min(n_slices, fixed_space)
        if fixed_modes:
            flat_fixed = self._rng.choice(fixed_space, size=n_slices, replace=False)
            fixed_coords = np.stack(
                np.unravel_index(flat_fixed, [shape[m] for m in fixed_modes]),
                axis=1,
            )
        else:
            fixed_coords = np.zeros((1, 0), dtype=np.int64)
        free_shape = [shape[m] for m in free_modes]
        free_coords = np.stack(
            np.unravel_index(np.arange(slice_size), free_shape), axis=1
        )
        coords = np.empty(
            (n_slices * slice_size, len(shape)), dtype=np.int64
        )
        block = np.empty((slice_size, len(shape)), dtype=np.int64)
        for i, fixed in enumerate(fixed_coords):
            for j, mode in enumerate(fixed_modes):
                block[:, mode] = fixed[j]
            for j, mode in enumerate(free_modes):
                block[:, mode] = free_coords[:, j]
            coords[i * slice_size : (i + 1) * slice_size] = block
        return SampleSet(shape, coords)
