"""Ensemble sampling: conventional schemes and PF-partitioning.

``RandomSampler``/``GridSampler``/``SliceSampler`` are the paper's
Section IV baselines; :class:`PFPartition`, :class:`PartitionBudget`
and :func:`select_sub_ensembles` implement the partition-stitch
sampling of Section V.
"""

from .base import Sampler, SampleSet, validate_budget
from .budget import (
    PartitionBudget,
    budget_for_fractions,
    effective_density_ratio,
)
from .grid_sampler import GridSampler, balanced_grid_counts, spread_indices
from .lhs_sampler import LatinHypercubeSampler, lhs_round
from .partition import PFPartition
from .random_sampler import RandomSampler
from .slice_sampler import SliceSampler, choose_free_modes
from .sub_ensemble import SubEnsembleSelection, select_sub_ensembles

__all__ = [
    "Sampler",
    "SampleSet",
    "validate_budget",
    "PartitionBudget",
    "budget_for_fractions",
    "effective_density_ratio",
    "GridSampler",
    "LatinHypercubeSampler",
    "lhs_round",
    "balanced_grid_counts",
    "spread_indices",
    "PFPartition",
    "RandomSampler",
    "SliceSampler",
    "choose_free_modes",
    "SubEnsembleSelection",
    "select_sub_ensembles",
]
