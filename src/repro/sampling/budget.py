"""Budget accounting for partition-stitch sampling (Sections I-C, V).

The scheme's arithmetic, in the paper's symbols: with a budget of
``B`` cells, each sub-ensemble receives ``B/2 = P * E`` cells, where
``P`` pivot configurations are shared between the sub-ensembles and
``E`` free configurations are chosen per sub-system.  Join stitching
then yields ``P * E^2`` effective entries from ``2 * P * E`` simulated
cells — squaring the density (paper Figure 6).  Zero-join's extra gain
materialises only when per-pivot observations are partial; see
:mod:`repro.core.stitch`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import BudgetError
from .partition import PFPartition


@dataclass(frozen=True)
class PartitionBudget:
    """Concrete P/E counts for one PF-partitioned ensemble.

    Attributes
    ----------
    n_pivot:
        ``P`` — pivot configurations shared by the two sub-ensembles.
    n_free1 / n_free2:
        ``E`` per sub-system — free configurations selected for each.
    """

    n_pivot: int
    n_free1: int
    n_free2: int

    def __post_init__(self) -> None:
        for label, value in (
            ("n_pivot", self.n_pivot),
            ("n_free1", self.n_free1),
            ("n_free2", self.n_free2),
        ):
            if int(value) < 1:
                raise BudgetError(f"{label} must be >= 1, got {value}")

    @property
    def cells(self) -> int:
        """Total budget consumed, ``B = P*E1 + P*E2``."""
        return self.n_pivot * (self.n_free1 + self.n_free2)

    @property
    def join_entries(self) -> int:
        """Effective entries after join stitching, ``P * E1 * E2``."""
        return self.n_pivot * self.n_free1 * self.n_free2


def budget_for_fractions(
    partition: PFPartition,
    pivot_fraction: float = 1.0,
    free_fraction: float = 1.0,
) -> PartitionBudget:
    """P/E counts from fractional densities.

    The paper's Tables VI/VII vary ``P`` and ``E`` as percentages of
    the pivot/free sub-space sizes; this maps those percentages to
    concrete counts (at least 1 each).
    """
    if not 0.0 < pivot_fraction <= 1.0:
        raise BudgetError(
            f"pivot_fraction must be in (0, 1], got {pivot_fraction}"
        )
    if not 0.0 < free_fraction <= 1.0:
        raise BudgetError(
            f"free_fraction must be in (0, 1], got {free_fraction}"
        )
    n_pivot = max(1, int(round(pivot_fraction * partition.pivot_space_size)))
    n_free1 = max(1, int(round(free_fraction * partition.free_space_size(1))))
    n_free2 = max(1, int(round(free_fraction * partition.free_space_size(2))))
    return PartitionBudget(n_pivot, n_free1, n_free2)


def effective_density_ratio(
    partition: PFPartition, budget: PartitionBudget
) -> float:
    """Paper Figure 6's headline number.

    Ratio of the stitched join ensemble's effective density to the
    density a conventional sampler achieves spending the same budget
    on the full space.  Both densities share the full-space cell count
    as denominator, so the ratio reduces to
    ``join_entries / cells = E / 2`` for symmetric sub-systems.
    """
    full_cells = int(np.prod(partition.shape))
    conventional_density = budget.cells / full_cells
    join_density = budget.join_entries / full_cells
    if conventional_density == 0:
        raise BudgetError("budget too small for a meaningful density ratio")
    return join_density / conventional_density
