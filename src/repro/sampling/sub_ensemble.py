"""Selection of the two PF-partitioned sub-ensembles.

Implements the ensemble-generation protocol of Section V-B: pick ``P``
configurations of the pivot parameters (shared by both sub-ensembles —
this is what makes them joinable) and ``E`` configurations of each
sub-system's free parameters; each sub-ensemble is the cross product
of the pivot and free selections, ``P * E`` cells.

Matching the paper's evaluation ("to analyze worst case behavior, we
sampled the sub-systems randomly"), the default selection is uniform
random without replacement; fractions of 100% select everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import SamplingError
from ..tensor.random import SeedLike, make_rng
from .base import SampleSet
from .budget import PartitionBudget
from .partition import PFPartition


def _select_configs(
    space_shape: Tuple[int, ...],
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` distinct index tuples from a product space, sorted.

    Selecting everything returns the full enumeration (deterministic);
    otherwise a uniform sample without replacement.
    """
    size = int(np.prod(space_shape))
    if count > size:
        raise SamplingError(
            f"cannot select {count} configurations from a space of {size}"
        )
    if count == size:
        flat = np.arange(size)
    else:
        flat = np.sort(rng.choice(size, size=count, replace=False))
    return np.stack(np.unravel_index(flat, space_shape), axis=1)


@dataclass(frozen=True)
class SubEnsembleSelection:
    """The concrete cells selected for both sub-ensembles.

    Attributes
    ----------
    partition:
        The PF-partition the selection lives in.
    pivot_configs:
        ``(P, k)`` pivot index tuples, shared by both sub-ensembles.
    free1 / free2:
        ``(E_i, |free modes|)`` free index tuples per sub-system.
    """

    partition: PFPartition
    pivot_configs: np.ndarray
    free1: np.ndarray
    free2: np.ndarray

    def __post_init__(self) -> None:
        for name, array, width in (
            ("pivot_configs", self.pivot_configs, self.partition.k),
            ("free1", self.free1, len(self.partition.s1_free)),
            ("free2", self.free2, len(self.partition.s2_free)),
        ):
            array = np.asarray(array, dtype=np.int64)
            if array.ndim != 2 or array.shape[1] != width:
                raise SamplingError(
                    f"{name} must have shape (n, {width}), got {array.shape}"
                )
            object.__setattr__(self, name, array)

    @property
    def budget(self) -> PartitionBudget:
        return PartitionBudget(
            n_pivot=self.pivot_configs.shape[0],
            n_free1=self.free1.shape[0],
            n_free2=self.free2.shape[0],
        )

    def free_configs(self, which: int) -> np.ndarray:
        if which == 1:
            return self.free1
        if which == 2:
            return self.free2
        raise SamplingError(f"sub-system must be 1 or 2, got {which}")

    def sub_coords(self, which: int) -> np.ndarray:
        """All selected cells of sub-ensemble ``which`` in *sub-space*
        coordinates (pivot columns first, matching
        ``PFPartition.sub_modes`` order): the P x E cross product."""
        free = self.free_configs(which)
        n_pivot = self.pivot_configs.shape[0]
        n_free = free.shape[0]
        pivots = np.repeat(self.pivot_configs, n_free, axis=0)
        frees = np.tile(free, (n_pivot, 1))
        return np.hstack([pivots, frees])

    def full_coords(self, which: int) -> np.ndarray:
        """Selected cells of sub-ensemble ``which`` in full-space
        coordinates (frozen modes at their fixing constants)."""
        return self.partition.embed_coords(which, self.sub_coords(which))

    def union_sample_set(self) -> SampleSet:
        """Both sub-ensembles as one full-space sample set — the
        "union into a single tensor" strawman of Section I-C."""
        coords = np.vstack([self.full_coords(1), self.full_coords(2)])
        return SampleSet(self.partition.shape, coords)

    def total_cells(self) -> int:
        """Budget consumed (cells across both sub-ensembles)."""
        return int(
            self.pivot_configs.shape[0]
            * (self.free1.shape[0] + self.free2.shape[0])
        )


def select_sub_ensembles(
    partition: PFPartition,
    budget: PartitionBudget,
    seed: SeedLike = None,
) -> SubEnsembleSelection:
    """Randomly select pivot and free configurations per the budget."""
    rng = make_rng(seed)
    pivots = _select_configs(partition.pivot_shape, budget.n_pivot, rng)
    free1 = _select_configs(partition.free_shape(1), budget.n_free1, rng)
    free2 = _select_configs(partition.free_shape(2), budget.n_free2, rng)
    return SubEnsembleSelection(partition, pivots, free1, free2)
