"""Pivoted/Fixed (PF) partitioning of a parameter space (Section V-B).

Given a system with ``N`` tensor modes, a :class:`PFPartition` splits
the modes into

* ``k`` **pivot** modes, shared between both sub-systems,
* sub-system 1's **free** modes (frozen in sub-system 2), and
* sub-system 2's **free** modes (frozen in sub-system 1);

each frozen mode is pinned to a *fixing-constant* index.  The class
owns all the coordinate bookkeeping: sub-tensor shapes, embedding
sub-space coordinates back into the full space, and the mode order of
the join tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import PartitionError
from ..simulation.parameter_space import ParameterSpace


@dataclass(frozen=True)
class PFPartition:
    """A pivoted/fixed split of a tensor's modes.

    Attributes
    ----------
    shape:
        Full-space tensor shape.
    pivot_modes:
        Original indices of the ``k`` shared pivot modes.
    s1_free / s2_free:
        Original indices of each sub-system's free modes.
    fixed_indices:
        ``{mode: index}`` fixing constants for every mode that appears
        frozen in one of the sub-systems (i.e. every free mode).
    """

    shape: Tuple[int, ...]
    pivot_modes: Tuple[int, ...]
    s1_free: Tuple[int, ...]
    s2_free: Tuple[int, ...]
    fixed_indices: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        object.__setattr__(self, "shape", shape)
        pivot = tuple(int(m) for m in self.pivot_modes)
        s1 = tuple(int(m) for m in self.s1_free)
        s2 = tuple(int(m) for m in self.s2_free)
        object.__setattr__(self, "pivot_modes", pivot)
        object.__setattr__(self, "s1_free", s1)
        object.__setattr__(self, "s2_free", s2)
        n_modes = len(shape)
        all_modes = pivot + s1 + s2
        if sorted(all_modes) != list(range(n_modes)):
            raise PartitionError(
                f"pivot {pivot} + s1_free {s1} + s2_free {s2} must "
                f"partition modes 0..{n_modes - 1}"
            )
        if not pivot:
            raise PartitionError("at least one pivot mode is required")
        if not s1 or not s2:
            raise PartitionError("both sub-systems need at least one free mode")
        fixed = {int(m): int(i) for m, i in self.fixed_indices.items()}
        for mode in s1 + s2:
            if mode not in fixed:
                # Default fixing constant: the middle grid index.
                fixed[mode] = shape[mode] // 2
            if not 0 <= fixed[mode] < shape[mode]:
                raise PartitionError(
                    f"fixing index {fixed[mode]} out of range for mode {mode}"
                )
        object.__setattr__(self, "fixed_indices", fixed)

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of shared pivot modes."""
        return len(self.pivot_modes)

    @property
    def n_modes(self) -> int:
        return len(self.shape)

    def sub_modes(self, which: int) -> Tuple[int, ...]:
        """Original mode ids of sub-system ``which`` (1 or 2), pivots first."""
        if which == 1:
            return self.pivot_modes + self.s1_free
        if which == 2:
            return self.pivot_modes + self.s2_free
        raise PartitionError(f"sub-system must be 1 or 2, got {which}")

    def sub_shape(self, which: int) -> Tuple[int, ...]:
        return tuple(self.shape[m] for m in self.sub_modes(which))

    def frozen_modes(self, which: int) -> Tuple[int, ...]:
        """Modes fixed (not varied) in sub-system ``which``."""
        if which == 1:
            return self.s2_free
        return self.s1_free if which == 2 else self._bad(which)

    @staticmethod
    def _bad(which):  # pragma: no cover - defensive
        raise PartitionError(f"sub-system must be 1 or 2, got {which}")

    @property
    def pivot_shape(self) -> Tuple[int, ...]:
        return tuple(self.shape[m] for m in self.pivot_modes)

    def free_shape(self, which: int) -> Tuple[int, ...]:
        free = self.s1_free if which == 1 else self.s2_free
        return tuple(self.shape[m] for m in free)

    @property
    def pivot_space_size(self) -> int:
        return int(np.prod(self.pivot_shape))

    def free_space_size(self, which: int) -> int:
        return int(np.prod(self.free_shape(which)))

    # ------------------------------------------------------------------
    # join-tensor mode order
    # ------------------------------------------------------------------
    @property
    def join_modes(self) -> Tuple[int, ...]:
        """Original mode ids in the join tensor's internal order:
        pivots, then S1 free, then S2 free."""
        return self.pivot_modes + self.s1_free + self.s2_free

    @property
    def join_shape(self) -> Tuple[int, ...]:
        return tuple(self.shape[m] for m in self.join_modes)

    @property
    def join_to_original(self) -> Tuple[int, ...]:
        """Permutation ``p`` such that transposing a join-ordered tensor
        with ``p`` yields the original mode order: position ``i`` gives
        the join-axis holding original mode ``i``."""
        lookup = {mode: axis for axis, mode in enumerate(self.join_modes)}
        return tuple(lookup[mode] for mode in range(self.n_modes))

    # ------------------------------------------------------------------
    # coordinate embedding
    # ------------------------------------------------------------------
    def embed_coords(self, which: int, sub_coords: np.ndarray) -> np.ndarray:
        """Map sub-space coordinates to full-space coordinates.

        ``sub_coords`` has one column per sub-system mode in
        :meth:`sub_modes` order; frozen modes are filled with their
        fixing-constant indices.
        """
        sub_coords = np.atleast_2d(np.asarray(sub_coords, dtype=np.int64))
        modes = self.sub_modes(which)
        if sub_coords.shape[1] != len(modes):
            raise PartitionError(
                f"sub-system {which} coordinates need {len(modes)} columns, "
                f"got {sub_coords.shape[1]}"
            )
        full = np.empty((sub_coords.shape[0], self.n_modes), dtype=np.int64)
        for axis, mode in enumerate(modes):
            full[:, mode] = sub_coords[:, axis]
        for mode in self.frozen_modes(which):
            full[:, mode] = self.fixed_indices[mode]
        return full

    def extract_sub_tensor(self, which: int, full: np.ndarray) -> np.ndarray:
        """Slice the ground-truth sub-system tensor out of the full
        tensor: frozen modes pinned to fixing constants, remaining
        modes reordered to :meth:`sub_modes` order."""
        full = np.asarray(full)
        if full.shape != self.shape:
            raise PartitionError(
                f"full tensor shape {full.shape} != partition shape {self.shape}"
            )
        index = [slice(None)] * self.n_modes
        for mode in self.frozen_modes(which):
            index[mode] = self.fixed_indices[mode]
        sliced = full[tuple(index)]
        frozen = self.frozen_modes(which)
        remaining = [m for m in range(self.n_modes) if m not in frozen]
        order = [remaining.index(m) for m in self.sub_modes(which)]
        return np.transpose(sliced, order)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_space(
        cls,
        space: ParameterSpace,
        pivot="t",
        s1_free: Optional[Sequence[str]] = None,
        s2_free: Optional[Sequence[str]] = None,
        fixed_indices: Optional[Dict[str, int]] = None,
    ) -> "PFPartition":
        """Build a partition for a simulation parameter space by name.

        Parameters
        ----------
        space:
            The discretized parameter space.
        pivot:
            Name of the pivot mode, e.g. ``"t"`` or ``"m1"`` — or a
            sequence of names for a multi-pivot (``k > 1``) partition,
            e.g. ``("g", "t")`` on the 5-parameter pendulum.
        s1_free / s2_free:
            Optional explicit mode-name split of the non-pivot modes
            (used by the pivot-choice experiment to keep same-pendulum
            parameters together).  When omitted the first half of the
            remaining modes, in tensor order, goes to sub-system 1.
        fixed_indices:
            Optional ``{mode_name: index}`` fixing constants; modes not
            listed use the grid index closest to the parameter's
            declared default value (the time mode uses its middle
            index).
        """
        if isinstance(pivot, str):
            pivot_names: Sequence[str] = (pivot,)
        else:
            pivot_names = tuple(pivot)
        pivot_mode_list = [space.mode_index(name) for name in pivot_names]
        if len(set(pivot_mode_list)) != len(pivot_mode_list):
            raise PartitionError(f"duplicate pivot modes in {pivot_names}")
        remaining = [
            m for m in range(space.n_modes) if m not in pivot_mode_list
        ]
        if (s1_free is None) != (s2_free is None):
            raise PartitionError(
                "either give both s1_free and s2_free or neither"
            )
        if s1_free is None:
            half = len(remaining) // 2
            s1 = tuple(remaining[:half])
            s2 = tuple(remaining[half:])
        else:
            s1 = tuple(space.mode_index(n) for n in s1_free)
            s2 = tuple(space.mode_index(n) for n in s2_free)
        if len(s1) != len(s2):
            raise PartitionError(
                f"sub-systems must have equally many free modes, got "
                f"{len(s1)} and {len(s2)} (N - k must be even)"
            )
        fixed: Dict[int, int] = {}
        for mode in s1 + s2:
            if mode == space.time_mode:
                fixed[mode] = space.time_resolution // 2
            else:
                grid = space.grid(mode)
                default = space.system.parameters[mode].default
                fixed[mode] = int(np.abs(grid - default).argmin())
        if fixed_indices:
            for name, index in fixed_indices.items():
                fixed[space.mode_index(name)] = int(index)
        return cls(
            shape=space.shape,
            pivot_modes=tuple(pivot_mode_list),
            s1_free=s1,
            s2_free=s2,
            fixed_indices=fixed,
        )
