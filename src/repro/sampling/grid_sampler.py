"""GRID sampling (paper Section IV): a regular sub-lattice of the space.

The budget is spread into a coarse grid: each mode contributes
``c_i`` equally spaced index values with ``prod(c_i) <= budget`` and
the counts kept as balanced as possible.  The paper finds Grid the
best conventional scheme — the lattice at least gives every retained
mode index a full complement of observations.
"""

from __future__ import annotations

import itertools
from typing import Sequence, Tuple

import numpy as np

from .base import Sampler, SampleSet, validate_budget


def balanced_grid_counts(shape: Tuple[int, ...], budget: int) -> Tuple[int, ...]:
    """Per-mode sample counts, balanced, with product <= budget.

    Greedy: repeatedly increment the mode with the smallest current
    count (ties to the earlier mode) while the product stays within
    budget and the count within the mode size.
    """
    counts = [1] * len(shape)
    while True:
        order = sorted(
            range(len(shape)), key=lambda m: (counts[m], m)
        )
        progressed = False
        for mode in order:
            if counts[mode] >= shape[mode]:
                continue
            product = np.prod(
                [c + 1 if m == mode else c for m, c in enumerate(counts)],
                dtype=np.int64,
            )
            if product <= budget:
                counts[mode] += 1
                progressed = True
                break
        if not progressed:
            return tuple(counts)


def spread_indices(size: int, count: int) -> np.ndarray:
    """``count`` distinct indices spread evenly over ``range(size)``."""
    if count >= size:
        return np.arange(size)
    return np.unique(np.linspace(0, size - 1, count).round().astype(np.int64))


class GridSampler(Sampler):
    """Regular sub-lattice sampling."""

    name = "Grid"

    def _sample(self, shape: Sequence[int], budget: int) -> SampleSet:
        shape = tuple(int(s) for s in shape)
        budget = validate_budget(budget, shape)
        counts = balanced_grid_counts(shape, budget)
        axes = [spread_indices(s, c) for s, c in zip(shape, counts)]
        coords = np.array(
            list(itertools.product(*axes)), dtype=np.int64
        ).reshape(-1, len(shape))
        return SampleSet(shape, coords)
