"""RANDOM sampling (paper Section IV): budget cells drawn uniformly
without replacement from the whole simulation space.

The paper's worst-performing conventional baseline — the samples end
up spread so thin that no mode fiber accumulates enough observations
for the SVD steps to find structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..tensor.random import SeedLike, make_rng
from .base import Sampler, SampleSet, validate_budget


class RandomSampler(Sampler):
    """Uniform cell sampling without replacement."""

    name = "Random"

    def __init__(self, seed: SeedLike = None):
        self._rng = make_rng(seed)

    def _sample(self, shape: Sequence[int], budget: int) -> SampleSet:
        shape = tuple(int(s) for s in shape)
        budget = validate_budget(budget, shape)
        size = int(np.prod(shape))
        flat = self._rng.choice(size, size=budget, replace=False)
        coords = np.stack(np.unravel_index(flat, shape), axis=1)
        return SampleSet(shape, coords)
