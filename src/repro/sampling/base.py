"""Sampler interface and the sample-set container.

A sampler turns ``(tensor shape, budget B)`` into a set of cell
coordinates — the simulations that will actually be executed.  The
conventional schemes of paper Section IV (RANDOM, GRID, SLICE) and the
partition-stitch scheme of Section V all implement this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import BudgetError, SamplingError
from ..observability import get_metrics, span as _span


@dataclass(frozen=True)
class SampleSet:
    """A set of selected tensor cells.

    Attributes
    ----------
    shape:
        The full tensor shape the coordinates index into.
    coords:
        Unique cell coordinates, shape ``(n, len(shape))``.
    """

    shape: Tuple[int, ...]
    coords: np.ndarray

    def __post_init__(self) -> None:
        coords = np.asarray(self.coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != len(self.shape):
            raise SamplingError(
                f"coords must have shape (n, {len(self.shape)}), got "
                f"{coords.shape}"
            )
        if coords.size:
            upper = np.asarray(self.shape, dtype=np.int64)
            if (coords < 0).any() or (coords >= upper).any():
                raise SamplingError("sample coordinate out of bounds")
            unique = np.unique(coords, axis=0)
            if unique.shape[0] != coords.shape[0]:
                object.__setattr__(self, "coords", unique)
                return
        object.__setattr__(self, "coords", coords)

    @property
    def n_cells(self) -> int:
        return int(self.coords.shape[0])

    @property
    def density(self) -> float:
        return self.n_cells / float(np.prod(self.shape))

    def n_runs(self, time_mode: int) -> int:
        """Distinct parameter combinations (simulation runs) selected."""
        if self.n_cells == 0:
            return 0
        param_modes = [m for m in range(len(self.shape)) if m != time_mode]
        return int(np.unique(self.coords[:, param_modes], axis=0).shape[0])


def validate_budget(budget: int, shape: Sequence[int]) -> int:
    """Check a cell budget against a tensor shape."""
    budget = int(budget)
    if budget < 1:
        raise BudgetError(f"budget must be >= 1, got {budget}")
    size = int(np.prod([int(s) for s in shape]))
    if budget > size:
        raise BudgetError(
            f"budget {budget} exceeds the {size} cells of the space"
        )
    return budget


class Sampler(ABC):
    """Strategy that selects which cells of the space to simulate."""

    #: Short name used in experiment reports ("Random", "Grid", ...).
    name: str = "abstract"

    def sample(self, shape: Sequence[int], budget: int) -> SampleSet:
        """Select *at most* ``budget`` cells of a tensor of ``shape``.

        Instrumented template method: opens a ``sample`` span and
        records per-sampler cell counts, then delegates the actual
        selection to :meth:`_sample`.
        """
        with _span(
            f"sample-{self.name.lower()}", "sample",
            sampler=self.name, budget=int(budget),
        ) as sp:
            sample = self._sample(shape, budget)
            sp.set(cells=sample.n_cells, density=sample.density)
            metrics = get_metrics()
            metrics.counter(f"sample.{self.name}.cells").inc(sample.n_cells)
            metrics.counter("sample.cells").inc(sample.n_cells)
            metrics.histogram("sample.density").observe(sample.density)
            return sample

    @abstractmethod
    def _sample(self, shape: Sequence[int], budget: int) -> SampleSet:
        """Select the cells (subclass hook behind :meth:`sample`).

        Implementations may return slightly fewer cells than the
        budget when the scheme's structure cannot hit it exactly (e.g.
        a grid whose stride does not divide the mode size); they must
        never return more.
        """
