"""Latin hypercube sampling (LHS) baseline.

The simulation-design literature the paper builds on (Section II-A)
routinely uses Latin hypercube designs to spread a fixed budget over a
parameter space: each mode's index range is divided into strata and
every stratum is hit exactly once per round.  LHS is a stronger
space-filling baseline than plain random sampling, so including it
sharpens the comparison: partition-stitch must beat not just naive but
*well-designed* conventional sampling.

For a cell budget larger than the largest mode size, multiple
independent LHS rounds are stacked (duplicates are dropped by the
sample-set container and replaced in later rounds' draws).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..tensor.random import SeedLike, make_rng
from .base import Sampler, SampleSet, validate_budget


def lhs_round(
    shape: Sequence[int], n_points: int, rng: np.random.Generator
) -> np.ndarray:
    """One Latin hypercube round of ``n_points`` over ``shape``.

    Per mode, ``n_points`` strata are sampled without bias: indices are
    drawn by permuting ``round(stratum * size / n_points)`` positions,
    so every mode's samples are (nearly) evenly spread and never
    collide within the round when ``n_points <= size``.
    """
    shape = tuple(int(s) for s in shape)
    columns = []
    for size in shape:
        strata = (np.arange(n_points) + rng.random(n_points)) / n_points
        indices = np.floor(strata * size).astype(np.int64)
        indices = np.clip(indices, 0, size - 1)
        rng.shuffle(indices)
        columns.append(indices)
    return np.stack(columns, axis=1)


class LatinHypercubeSampler(Sampler):
    """Stacked Latin hypercube rounds until the budget is filled."""

    name = "LHS"

    def __init__(self, seed: SeedLike = None, max_rounds: int = 64):
        self._rng = make_rng(seed)
        self._max_rounds = int(max_rounds)

    def _sample(self, shape: Sequence[int], budget: int) -> SampleSet:
        shape = tuple(int(s) for s in shape)
        budget = validate_budget(budget, shape)
        collected = np.empty((0, len(shape)), dtype=np.int64)
        for _round in range(self._max_rounds):
            missing = budget - collected.shape[0]
            if missing <= 0:
                break
            round_points = lhs_round(shape, missing, self._rng)
            collected = np.unique(
                np.vstack([collected, round_points]), axis=0
            )
        # Top up any shortfall (duplicate collisions) with random cells.
        missing = budget - collected.shape[0]
        if missing > 0:
            size = int(np.prod(shape))
            occupied = set(map(tuple, collected.tolist()))
            flat = self._rng.permutation(size)
            extra = []
            for candidate in flat:
                cell = tuple(
                    int(i) for i in np.unravel_index(candidate, shape)
                )
                if cell not in occupied:
                    extra.append(cell)
                    occupied.add(cell)
                    if len(extra) == missing:
                        break
            collected = np.vstack(
                [collected, np.asarray(extra, dtype=np.int64)]
            )
        return SampleSet(shape, collected[:budget])
