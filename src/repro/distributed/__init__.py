"""Distributed substrate: a local MapReduce engine with per-task
accounting, a simulated cluster cost model, and the 3-phase D-M2TD
pipeline of paper Section VI-D.
"""

from .cluster import ClusterModel, lpt_makespan
from .dm2td import (
    PHASE_NAMES,
    DM2TDResult,
    distributed_m2td,
    dm2td_task_graph,
)
from .mapreduce import (
    JobStats,
    LocalMapReduceEngine,
    MapReduceJob,
    TaskStats,
    payload_bytes,
)
from .workers import (
    InlineTransport,
    ProcessTransport,
    TaskOutcome,
    Transport,
    WorkerSupervisor,
    make_transport,
)

__all__ = [
    "ClusterModel",
    "lpt_makespan",
    "PHASE_NAMES",
    "DM2TDResult",
    "distributed_m2td",
    "dm2td_task_graph",
    "JobStats",
    "LocalMapReduceEngine",
    "MapReduceJob",
    "TaskStats",
    "payload_bytes",
    "InlineTransport",
    "ProcessTransport",
    "TaskOutcome",
    "Transport",
    "WorkerSupervisor",
    "make_transport",
]
