"""A local MapReduce engine with per-task accounting.

The paper runs D-M2TD on Hadoop over 18 Chameleon-cloud servers; this
module supplies the execution substrate for our reproduction: jobs are
expressed as classic ``map -> shuffle -> reduce`` pipelines and
executed locally, while every task records its compute time and the
bytes it moved.  :mod:`repro.distributed.cluster` replays those
measurements against a cluster model to obtain the wall-clock a given
server count would achieve — which is all Table III needs (the phase
split and the scaling shape, not JVM details).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import MapReduceError
from ..observability import get_metrics, span as _span
from ..runtime.executors import Executor, InlineExecutor, ThreadExecutor

#: A key-value record flowing through the pipeline.
Record = Tuple[Hashable, Any]

#: ``map(key, value) -> iterable of records``.
MapFn = Callable[[Hashable, Any], Iterable[Record]]

#: ``reduce(key, values) -> iterable of records``.
ReduceFn = Callable[[Hashable, List[Any]], Iterable[Record]]


def payload_bytes(value: Any) -> int:
    """Approximate serialized size of a record payload.

    Numpy arrays report their buffer size; containers recurse; other
    objects are charged a small flat cost.  Only *relative* sizes
    matter — the cluster model multiplies by a configurable per-byte
    network cost.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        # numpy scalars (np.float64, np.int32, ...) know their width;
        # without this branch they fell through to the flat 8-byte cost.
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(payload_bytes(v) for v in value) + 8
    if isinstance(value, dict):
        return sum(
            payload_bytes(k) + payload_bytes(v) for k, v in value.items()
        ) + 8
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    return 8


@dataclass
class TaskStats:
    """Accounting for one map or reduce task."""

    task_id: str
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    compute_seconds: float = 0.0


@dataclass
class JobStats:
    """Accounting for one MapReduce job run."""

    name: str
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    shuffle_bytes: int = 0

    @property
    def total_compute_seconds(self) -> float:
        return sum(t.compute_seconds for t in self.map_tasks) + sum(
            t.compute_seconds for t in self.reduce_tasks
        )


@dataclass(frozen=True)
class MapReduceJob:
    """A job specification.

    Attributes
    ----------
    name:
        Job label for reports.
    map_fn / reduce_fn:
        The user functions.  ``map_fn`` may be ``None`` for identity.
    map_tasks:
        Number of map tasks the input is split across (affects only
        the scheduling granularity the cluster model sees).
    """

    name: str
    map_fn: Optional[MapFn] = None
    reduce_fn: Optional[ReduceFn] = None
    map_tasks: int = 4


def _identity_map(key: Hashable, value: Any) -> Iterable[Record]:
    yield key, value


class LocalMapReduceEngine:
    """Execute MapReduce jobs in-process, recording task statistics.

    By default the engine is sequential — determinism matters more for
    a reproduction harness than real parallel speed, and the cluster
    model, not the host machine, decides the reported wall-clock.
    Passing ``n_workers > 1`` executes both the map and the reduce
    stages on the runtime's shared executor interface
    (:mod:`repro.runtime.executors`), a thread pool by default: the
    heavy tasks here are numpy/LAPACK-bound (SVDs, dense projections),
    which release the GIL, so threads yield real speedups without
    pickling the closures a process pool would require.  An explicit
    ``executor`` overrides that choice — any venue satisfying the
    :class:`~repro.runtime.executors.Executor` contract works.  Map
    results are concatenated in task order and reduce tasks complete
    in sorted key order, so output records and statistics ordering are
    byte-identical to the sequential engine (tests assert it).
    """

    def __init__(
        self, n_workers: int = 1, executor: Optional[Executor] = None
    ):
        n_workers = int(n_workers)
        if n_workers < 1:
            raise MapReduceError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.n_workers = n_workers
        self._owns_executor = executor is None
        if executor is None:
            executor = (
                InlineExecutor() if n_workers == 1
                else ThreadExecutor(n_workers)
            )
        self.executor = executor

    def close(self) -> None:
        """Release the worker pool (only if the engine created it)."""
        if self._owns_executor:
            self.executor.shutdown()

    def run(
        self, job: MapReduceJob, records: Iterable[Record]
    ) -> Tuple[List[Record], JobStats]:
        """Run ``job`` over ``records``; returns (output records, stats)."""
        records = list(records)
        stats = JobStats(name=job.name)
        map_fn = job.map_fn or _identity_map

        # ----------------------------------------------------- map
        n_map_tasks = max(1, min(int(job.map_tasks), max(len(records), 1)))
        chunks = np.array_split(np.arange(len(records)), n_map_tasks)

        def run_map_task(
            task_index: int, chunk: np.ndarray
        ) -> Tuple[TaskStats, List[Record]]:
            task = TaskStats(task_id=f"map-{task_index}")
            emitted_records: List[Record] = []
            started = time.perf_counter()
            with _span(
                task.task_id, "mapreduce", job=job.name, stage="map",
                worker=threading.current_thread().name,
            ) as sp:
                for record_index in chunk:
                    key, value = records[record_index]
                    task.records_in += 1
                    task.bytes_in += payload_bytes(value)
                    try:
                        emitted = list(map_fn(key, value))
                    except Exception as exc:
                        raise MapReduceError(
                            f"map task {task.task_id} of job {job.name!r} "
                            f"failed on key {key!r}: {exc}"
                        ) from exc
                    for out_key, out_value in emitted:
                        task.records_out += 1
                        task.bytes_out += payload_bytes(out_value)
                        emitted_records.append((out_key, out_value))
                sp.set(
                    records_in=task.records_in, records_out=task.records_out
                )
            task.compute_seconds = time.perf_counter() - started
            return task, emitted_records

        map_results = self._dispatch(
            [(index, chunk) for index, chunk in enumerate(chunks)],
            run_map_task,
        )
        intermediate: List[Record] = []
        for task, emitted_records in map_results:
            stats.map_tasks.append(task)
            intermediate.extend(emitted_records)

        # ----------------------------------------------------- shuffle
        with _span(
            "shuffle", "mapreduce", job=job.name, stage="shuffle",
        ) as shuffle_span:
            groups: Dict[Hashable, List[Any]] = {}
            for key, value in intermediate:
                groups.setdefault(key, []).append(value)
            stats.shuffle_bytes = sum(
                payload_bytes(v) for _k, v in intermediate
            )
            shuffle_span.set(
                shuffle_bytes=stats.shuffle_bytes, keys=len(groups)
            )
        metrics = get_metrics()
        metrics.counter("mapreduce.jobs").inc()
        metrics.counter("mapreduce.shuffle_bytes").inc(stats.shuffle_bytes)

        # ----------------------------------------------------- reduce
        output: List[Record] = []
        if job.reduce_fn is None:
            for key, values in groups.items():
                for value in values:
                    output.append((key, value))
            return output, stats

        def run_reduce_task(key) -> Tuple[TaskStats, List[Record]]:
            task = TaskStats(task_id=f"reduce-{key!r}")
            values = groups[key]
            task.records_in = len(values)
            task.bytes_in = sum(payload_bytes(v) for v in values)
            started = time.perf_counter()
            with _span(
                task.task_id, "mapreduce", job=job.name, stage="reduce",
                worker=threading.current_thread().name,
            ):
                try:
                    emitted = list(job.reduce_fn(key, values))
                except Exception as exc:
                    raise MapReduceError(
                        f"reduce task for key {key!r} of job {job.name!r} "
                        f"failed: {exc}"
                    ) from exc
            task.compute_seconds = time.perf_counter() - started
            for _out_key, out_value in emitted:
                task.records_out += 1
                task.bytes_out += payload_bytes(out_value)
            return task, emitted

        ordered_keys = sorted(groups, key=repr)
        results = self._dispatch(
            [(key,) for key in ordered_keys], run_reduce_task
        )
        for task, emitted in results:
            stats.reduce_tasks.append(task)
            output.extend(emitted)
        return output, stats

    # ------------------------------------------------------------------
    def _dispatch(self, arg_tuples, fn):
        """Run ``fn(*args)`` for each tuple on the executor, returning
        results in submission order (concurrent execution, sequential
        collection — hence deterministic output/statistics ordering)."""
        if len(arg_tuples) <= 1 or isinstance(self.executor, InlineExecutor):
            return [fn(*args) for args in arg_tuples]
        futures = [self.executor.submit(fn, *args) for args in arg_tuples]
        return [future.result() for future in futures]
