"""A local MapReduce engine with per-task accounting.

The paper runs D-M2TD on Hadoop over 18 Chameleon-cloud servers; this
module supplies the execution substrate for our reproduction: jobs are
expressed as classic ``map -> shuffle -> reduce`` pipelines and
executed locally, while every task records its compute time and the
bytes it moved.  :mod:`repro.distributed.cluster` replays those
measurements against a cluster model to obtain the wall-clock a given
server count would achieve — which is all Table III needs (the phase
split and the scaling shape, not JVM details).

Task bodies are module-level callable objects (:class:`_MapTaskBody`,
:class:`_ReduceTaskBody`) built from plain data, so the same job can
run in-process (threads, the default) or be dispatched through a
:class:`~repro.distributed.workers.WorkerSupervisor` to real external
worker processes.  Fault decisions are always taken engine-side — the
armed effect rides into the task as a picklable
:class:`~repro.faults.directive.FaultDirective` — so the injector's
ordinal bookkeeping and recovery accounting stay in one process no
matter where the task lands.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import FaultInjectionError, MapReduceError
from ..faults.directive import FaultDirective, directive_for
from ..faults.injector import get_injector
from ..observability import get_metrics, span as _span
from ..runtime.executors import Executor, InlineExecutor, ThreadExecutor

#: A key-value record flowing through the pipeline.
Record = Tuple[Hashable, Any]

#: ``map(key, value) -> iterable of records``.
MapFn = Callable[[Hashable, Any], Iterable[Record]]

#: ``reduce(key, values) -> iterable of records``.
ReduceFn = Callable[[Hashable, List[Any]], Iterable[Record]]

#: ``M2TD_TRANSPORT`` env values that mean "no external workers".
_IN_PROCESS_TRANSPORTS = ("", "thread", "none", "off")


def payload_bytes(value: Any) -> int:
    """Approximate serialized size of a record payload.

    Numpy arrays report their buffer size; containers recurse; other
    objects are charged a small flat cost.  Only *relative* sizes
    matter — the cluster model multiplies by a configurable per-byte
    network cost.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        # numpy scalars (np.float64, np.int32, ...) know their width;
        # without this branch they fell through to the flat 8-byte cost.
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(payload_bytes(v) for v in value) + 8
    if isinstance(value, dict):
        return sum(
            payload_bytes(k) + payload_bytes(v) for k, v in value.items()
        ) + 8
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    return 8


@dataclass
class TaskStats:
    """Accounting for one map or reduce task."""

    task_id: str
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    compute_seconds: float = 0.0


@dataclass
class JobStats:
    """Accounting for one MapReduce job run."""

    name: str
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    shuffle_bytes: int = 0
    #: Tasks that failed at least once and succeeded on re-execution.
    retried_tasks: int = 0
    #: Stragglers re-executed speculatively (fresh result taken).
    speculative_tasks: int = 0

    @property
    def total_compute_seconds(self) -> float:
        return sum(t.compute_seconds for t in self.map_tasks) + sum(
            t.compute_seconds for t in self.reduce_tasks
        )


@dataclass(frozen=True)
class MapReduceJob:
    """A job specification.

    Attributes
    ----------
    name:
        Job label for reports.
    map_fn / reduce_fn:
        The user functions.  ``map_fn`` may be ``None`` for identity.
    map_tasks:
        Number of map tasks the input is split across (affects only
        the scheduling granularity the cluster model sees).
    """

    name: str
    map_fn: Optional[MapFn] = None
    reduce_fn: Optional[ReduceFn] = None
    map_tasks: int = 4


def _identity_map(key: Hashable, value: Any) -> Iterable[Record]:
    yield key, value


class _MapTaskBody:
    """One map task as a self-contained, picklable callable.

    Carries only its own slice of the input (not the full record
    list), so shipping it to an external worker moves exactly the
    bytes the task needs.  ``directive`` is the engine-armed fault
    effect for the current attempt: raise/crash/delay fire before the
    work *inside the timed section* (a delayed task shows up as a
    straggler), drop-output discards the finished output.
    """

    def __init__(
        self,
        job_name: str,
        task_id: str,
        map_fn: MapFn,
        items: List[Record],
    ):
        self.job_name = job_name
        self.task_id = task_id
        self.map_fn = map_fn
        self.items = items
        self.directive: Optional[FaultDirective] = None

    def __call__(self) -> Tuple[TaskStats, List[Record]]:
        task = TaskStats(task_id=self.task_id)
        emitted_records: List[Record] = []
        started = time.perf_counter()
        with _span(
            self.task_id, "mapreduce", job=self.job_name, stage="map",
            worker=threading.current_thread().name,
        ) as sp:
            directive = self.directive
            drop = directive is not None and directive.kind == "drop-output"
            if directive is not None and not drop:
                directive.apply_pre()
            for key, value in self.items:
                task.records_in += 1
                task.bytes_in += payload_bytes(value)
                try:
                    emitted = list(self.map_fn(key, value))
                except Exception as exc:
                    raise MapReduceError(
                        f"map task {task.task_id} of job "
                        f"{self.job_name!r} failed on key {key!r}: {exc}"
                    ) from exc
                for out_key, out_value in emitted:
                    task.records_out += 1
                    task.bytes_out += payload_bytes(out_value)
                    emitted_records.append((out_key, out_value))
            if drop:
                # The work happened; its output is lost — the fault the
                # engine's re-execution budget must absorb.
                raise FaultInjectionError(
                    "mapreduce.map",
                    self.task_id,
                    directive.fault_id,
                    "map output dropped",
                )
            sp.set(
                records_in=task.records_in, records_out=task.records_out
            )
        task.compute_seconds = time.perf_counter() - started
        return task, emitted_records


class _ReduceTaskBody:
    """One reduce task as a self-contained, picklable callable."""

    def __init__(
        self,
        job_name: str,
        key: Hashable,
        values: List[Any],
        reduce_fn: ReduceFn,
    ):
        self.job_name = job_name
        self.task_id = f"reduce-{key!r}"
        self.key = key
        self.values = values
        self.reduce_fn = reduce_fn
        self.directive: Optional[FaultDirective] = None

    def __call__(self) -> Tuple[TaskStats, List[Record]]:
        task = TaskStats(task_id=self.task_id)
        task.records_in = len(self.values)
        task.bytes_in = sum(payload_bytes(v) for v in self.values)
        started = time.perf_counter()
        with _span(
            self.task_id, "mapreduce", job=self.job_name, stage="reduce",
            worker=threading.current_thread().name,
        ):
            if self.directive is not None:
                self.directive.apply_pre()
            try:
                emitted = list(self.reduce_fn(self.key, self.values))
            except Exception as exc:
                raise MapReduceError(
                    f"reduce task for key {self.key!r} of job "
                    f"{self.job_name!r} failed: {exc}"
                ) from exc
        task.compute_seconds = time.perf_counter() - started
        for _out_key, out_value in emitted:
            task.records_out += 1
            task.bytes_out += payload_bytes(out_value)
        return task, emitted


class LocalMapReduceEngine:
    """Execute MapReduce jobs, recording task statistics.

    By default the engine is sequential — determinism matters more for
    a reproduction harness than real parallel speed, and the cluster
    model, not the host machine, decides the reported wall-clock.
    Passing ``n_workers > 1`` executes both the map and the reduce
    stages on the runtime's shared executor interface
    (:mod:`repro.runtime.executors`), a thread pool by default: the
    heavy tasks here are numpy/LAPACK-bound (SVDs, dense projections),
    which release the GIL, so threads yield real speedups without
    pickling the closures a process pool would require.  An explicit
    ``executor`` overrides that choice — any venue satisfying the
    :class:`~repro.runtime.executors.Executor` contract works.

    Cross-process execution is one constructor argument away:
    ``transport="process"`` (or ``"inline"``) routes every map/reduce
    task through a :class:`~repro.distributed.workers.WorkerSupervisor`
    — external worker processes with heartbeats, task leases, crash
    budgets and metered degradation.  An explicit ``supervisor``
    overrides (and is *not* owned by the engine); with neither given,
    the ``M2TD_TRANSPORT`` environment variable picks the venue, which
    is how the chaos suite runs unchanged against live workers.

    Map results are concatenated in task order and reduce tasks
    complete in sorted key order, so output records and statistics
    ordering are byte-identical to the sequential engine on every
    venue (tests assert it).
    """

    def __init__(
        self,
        n_workers: int = 1,
        executor: Optional[Executor] = None,
        task_attempts: int = 1,
        straggler_seconds: Optional[float] = None,
        transport: Optional[str] = None,
        supervisor: Optional[Any] = None,
        heartbeat_seconds: float = 0.25,
        lease_seconds: Optional[float] = None,
        crash_budget: int = 3,
        start_method: Optional[str] = None,
    ):
        n_workers = int(n_workers)
        if n_workers < 1:
            raise MapReduceError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        task_attempts = int(task_attempts)
        if task_attempts < 1:
            raise MapReduceError(
                f"task_attempts must be >= 1, got {task_attempts}"
            )
        if straggler_seconds is not None and straggler_seconds <= 0:
            raise MapReduceError(
                f"straggler_seconds must be > 0, got {straggler_seconds}"
            )
        self.n_workers = n_workers
        #: Attempts per map/reduce task (1 = fail fast, Hadoop-style
        #: re-execution when > 1).
        self.task_attempts = task_attempts
        #: Tasks slower than this are speculatively re-executed once
        #: and the fresh copy's result is taken (``None`` disables).
        self.straggler_seconds = straggler_seconds
        self._stats_lock = threading.Lock()
        self._owns_executor = executor is None
        if executor is None:
            executor = (
                InlineExecutor() if n_workers == 1
                else ThreadExecutor(n_workers)
            )
        self.executor = executor
        self._owns_supervisor = False
        if supervisor is None and transport is None:
            transport = os.environ.get("M2TD_TRANSPORT", "").strip() or None
            if transport in _IN_PROCESS_TRANSPORTS:
                transport = None
            hb_env = os.environ.get("M2TD_HEARTBEAT_SECONDS", "").strip()
            if transport is not None and hb_env:
                heartbeat_seconds = float(hb_env)
        if supervisor is None and transport is not None:
            # Imported lazily: repro.distributed.workers depends on this
            # module's payload accounting, not the other way round.
            from .workers import WorkerSupervisor

            supervisor = WorkerSupervisor(
                transport=transport,
                n_workers=n_workers,
                heartbeat_seconds=heartbeat_seconds,
                lease_seconds=lease_seconds,
                crash_budget=crash_budget,
                start_method=start_method,
            )
            self._owns_supervisor = True
            # Tests (and long-lived drivers) don't always close the
            # engine; make sure an engine-owned pool never outlives it.
            self._finalizer = weakref.finalize(
                self, supervisor.shutdown
            )
        self.supervisor = supervisor

    def close(self) -> None:
        """Release the worker pool (only what the engine created)."""
        if self._owns_executor:
            self.executor.shutdown()
        if self._owns_supervisor and self.supervisor is not None:
            self.supervisor.shutdown()

    def run(
        self, job: MapReduceJob, records: Iterable[Record]
    ) -> Tuple[List[Record], JobStats]:
        """Run ``job`` over ``records``; returns (output records, stats)."""
        records = list(records)
        stats = JobStats(name=job.name)
        map_fn = job.map_fn or _identity_map

        # ----------------------------------------------------- map
        n_map_tasks = max(1, min(int(job.map_tasks), max(len(records), 1)))
        chunks = np.array_split(np.arange(len(records)), n_map_tasks)
        map_bodies = [
            _MapTaskBody(
                job.name,
                f"map-{index}",
                map_fn,
                [records[i] for i in chunk],
            )
            for index, chunk in enumerate(chunks)
        ]
        map_results = self._execute(map_bodies, "mapreduce.map", stats)
        intermediate: List[Record] = []
        for task, emitted_records in map_results:
            stats.map_tasks.append(task)
            intermediate.extend(emitted_records)

        # ----------------------------------------------------- shuffle
        with _span(
            "shuffle", "mapreduce", job=job.name, stage="shuffle",
        ) as shuffle_span:
            groups: Dict[Hashable, List[Any]] = {}
            for key, value in intermediate:
                groups.setdefault(key, []).append(value)
            stats.shuffle_bytes = sum(
                payload_bytes(v) for _k, v in intermediate
            )
            shuffle_span.set(
                shuffle_bytes=stats.shuffle_bytes, keys=len(groups)
            )
        metrics = get_metrics()
        metrics.counter("mapreduce.jobs").inc()
        metrics.counter("mapreduce.shuffle_bytes").inc(stats.shuffle_bytes)

        # ----------------------------------------------------- reduce
        output: List[Record] = []
        if job.reduce_fn is None:
            for key, values in groups.items():
                for value in values:
                    output.append((key, value))
            return output, stats

        ordered_keys = sorted(groups, key=repr)
        reduce_bodies = [
            _ReduceTaskBody(job.name, key, groups[key], job.reduce_fn)
            for key in ordered_keys
        ]
        results = self._execute(reduce_bodies, "mapreduce.reduce", stats)
        for task, emitted in results:
            stats.reduce_tasks.append(task)
            output.extend(emitted)
        return output, stats

    # ------------------------------------------------------------------
    def _run_task(self, body, site, stats):
        """One task with Hadoop-style fault tolerance: up to
        ``task_attempts`` executions on (injected or genuine) task
        failure, then one speculative re-execution if the surviving
        attempt ran longer than ``straggler_seconds``.  Tasks are
        deterministic, so the rerun's records are identical and taking
        the fresh copy never changes job output."""
        injector = get_injector()
        attempts = self.task_attempts
        for attempt in range(1, attempts + 1):
            body.directive = directive_for(injector, site, body.task_id)
            try:
                task, emitted = body()
            except (MapReduceError, FaultInjectionError):
                if attempt >= attempts:
                    raise
                continue
            if attempt > 1:
                with self._stats_lock:
                    stats.retried_tasks += 1
                if injector.enabled:
                    injector.note_recovery(site, task.task_id)
            if (
                self.straggler_seconds is not None
                and task.compute_seconds > self.straggler_seconds
            ):
                body.directive = directive_for(
                    injector, site, body.task_id
                )
                task, emitted = body()
                with self._stats_lock:
                    stats.speculative_tasks += 1
                if injector.enabled:
                    injector.note_recovery(site, task.task_id)
            return task, emitted
        raise AssertionError("unreachable")  # pragma: no cover

    def _execute(self, bodies, site, stats):
        """Run every task body, returning results in submission order
        (concurrent execution, sequential collection — hence
        deterministic output/statistics ordering)."""
        if self.supervisor is not None:
            return self._execute_supervised(bodies, site, stats)
        if len(bodies) <= 1 or isinstance(self.executor, InlineExecutor):
            return [self._run_task(body, site, stats) for body in bodies]
        futures = [
            self.executor.submit(self._run_task, body, site, stats)
            for body in bodies
        ]
        return [future.result() for future in futures]

    def _execute_supervised(self, bodies, site, stats):
        """Round-based dispatch through the worker supervisor.

        Each round arms fresh fault directives (one injector decision
        per task per attempt — the same cadence as in-process
        execution) and submits the still-unfinished bodies as one
        batch; task-level failures consume the engine's attempt
        budget, while worker-level failures were already absorbed by
        the supervisor's own crash budget and never surface here.
        """
        injector = get_injector()
        results: List[Any] = [None] * len(bodies)
        pending = list(range(len(bodies)))
        attempt = 0
        while pending:
            attempt += 1
            for index in pending:
                bodies[index].directive = directive_for(
                    injector, site, bodies[index].task_id
                )
            outcomes = self.supervisor.run_tasks(
                [(bodies[index].task_id, bodies[index]) for index in pending]
            )
            still_pending: List[int] = []
            for index, outcome in zip(pending, outcomes):
                if outcome.ok:
                    results[index] = outcome.value
                    if attempt > 1:
                        with self._stats_lock:
                            stats.retried_tasks += 1
                        if injector.enabled:
                            injector.note_recovery(
                                site, bodies[index].task_id
                            )
                    continue
                error = outcome.error
                if (
                    isinstance(error, (MapReduceError, FaultInjectionError))
                    and attempt < self.task_attempts
                ):
                    still_pending.append(index)
                else:
                    raise error
            pending = still_pending
        if self.straggler_seconds is not None:
            slow = [
                index
                for index, (task, _emitted) in enumerate(results)
                if task.compute_seconds > self.straggler_seconds
            ]
            if slow:
                for index in slow:
                    bodies[index].directive = directive_for(
                        injector, site, bodies[index].task_id
                    )
                outcomes = self.supervisor.run_tasks(
                    [(bodies[index].task_id, bodies[index]) for index in slow]
                )
                for index, outcome in zip(slow, outcomes):
                    if not outcome.ok:
                        raise outcome.error
                    results[index] = outcome.value
                    with self._stats_lock:
                        stats.speculative_tasks += 1
                    if injector.enabled:
                        injector.note_recovery(site, bodies[index].task_id)
        return results
