"""A local MapReduce engine with per-task accounting.

The paper runs D-M2TD on Hadoop over 18 Chameleon-cloud servers; this
module supplies the execution substrate for our reproduction: jobs are
expressed as classic ``map -> shuffle -> reduce`` pipelines and
executed locally, while every task records its compute time and the
bytes it moved.  :mod:`repro.distributed.cluster` replays those
measurements against a cluster model to obtain the wall-clock a given
server count would achieve — which is all Table III needs (the phase
split and the scaling shape, not JVM details).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import FaultInjectionError, MapReduceError
from ..faults.injector import get_injector
from ..observability import get_metrics, span as _span
from ..runtime.executors import Executor, InlineExecutor, ThreadExecutor

#: A key-value record flowing through the pipeline.
Record = Tuple[Hashable, Any]

#: ``map(key, value) -> iterable of records``.
MapFn = Callable[[Hashable, Any], Iterable[Record]]

#: ``reduce(key, values) -> iterable of records``.
ReduceFn = Callable[[Hashable, List[Any]], Iterable[Record]]


def payload_bytes(value: Any) -> int:
    """Approximate serialized size of a record payload.

    Numpy arrays report their buffer size; containers recurse; other
    objects are charged a small flat cost.  Only *relative* sizes
    matter — the cluster model multiplies by a configurable per-byte
    network cost.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        # numpy scalars (np.float64, np.int32, ...) know their width;
        # without this branch they fell through to the flat 8-byte cost.
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(payload_bytes(v) for v in value) + 8
    if isinstance(value, dict):
        return sum(
            payload_bytes(k) + payload_bytes(v) for k, v in value.items()
        ) + 8
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    return 8


@dataclass
class TaskStats:
    """Accounting for one map or reduce task."""

    task_id: str
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    compute_seconds: float = 0.0


@dataclass
class JobStats:
    """Accounting for one MapReduce job run."""

    name: str
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    shuffle_bytes: int = 0
    #: Tasks that failed at least once and succeeded on re-execution.
    retried_tasks: int = 0
    #: Stragglers re-executed speculatively (fresh result taken).
    speculative_tasks: int = 0

    @property
    def total_compute_seconds(self) -> float:
        return sum(t.compute_seconds for t in self.map_tasks) + sum(
            t.compute_seconds for t in self.reduce_tasks
        )


@dataclass(frozen=True)
class MapReduceJob:
    """A job specification.

    Attributes
    ----------
    name:
        Job label for reports.
    map_fn / reduce_fn:
        The user functions.  ``map_fn`` may be ``None`` for identity.
    map_tasks:
        Number of map tasks the input is split across (affects only
        the scheduling granularity the cluster model sees).
    """

    name: str
    map_fn: Optional[MapFn] = None
    reduce_fn: Optional[ReduceFn] = None
    map_tasks: int = 4


def _identity_map(key: Hashable, value: Any) -> Iterable[Record]:
    yield key, value


class LocalMapReduceEngine:
    """Execute MapReduce jobs in-process, recording task statistics.

    By default the engine is sequential — determinism matters more for
    a reproduction harness than real parallel speed, and the cluster
    model, not the host machine, decides the reported wall-clock.
    Passing ``n_workers > 1`` executes both the map and the reduce
    stages on the runtime's shared executor interface
    (:mod:`repro.runtime.executors`), a thread pool by default: the
    heavy tasks here are numpy/LAPACK-bound (SVDs, dense projections),
    which release the GIL, so threads yield real speedups without
    pickling the closures a process pool would require.  An explicit
    ``executor`` overrides that choice — any venue satisfying the
    :class:`~repro.runtime.executors.Executor` contract works.  Map
    results are concatenated in task order and reduce tasks complete
    in sorted key order, so output records and statistics ordering are
    byte-identical to the sequential engine (tests assert it).
    """

    def __init__(
        self,
        n_workers: int = 1,
        executor: Optional[Executor] = None,
        task_attempts: int = 1,
        straggler_seconds: Optional[float] = None,
    ):
        n_workers = int(n_workers)
        if n_workers < 1:
            raise MapReduceError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        task_attempts = int(task_attempts)
        if task_attempts < 1:
            raise MapReduceError(
                f"task_attempts must be >= 1, got {task_attempts}"
            )
        if straggler_seconds is not None and straggler_seconds <= 0:
            raise MapReduceError(
                f"straggler_seconds must be > 0, got {straggler_seconds}"
            )
        self.n_workers = n_workers
        #: Attempts per map/reduce task (1 = fail fast, Hadoop-style
        #: re-execution when > 1).
        self.task_attempts = task_attempts
        #: Tasks slower than this are speculatively re-executed once
        #: and the fresh copy's result is taken (``None`` disables).
        self.straggler_seconds = straggler_seconds
        self._stats_lock = threading.Lock()
        self._owns_executor = executor is None
        if executor is None:
            executor = (
                InlineExecutor() if n_workers == 1
                else ThreadExecutor(n_workers)
            )
        self.executor = executor

    def close(self) -> None:
        """Release the worker pool (only if the engine created it)."""
        if self._owns_executor:
            self.executor.shutdown()

    def run(
        self, job: MapReduceJob, records: Iterable[Record]
    ) -> Tuple[List[Record], JobStats]:
        """Run ``job`` over ``records``; returns (output records, stats)."""
        records = list(records)
        stats = JobStats(name=job.name)
        map_fn = job.map_fn or _identity_map

        # ----------------------------------------------------- map
        n_map_tasks = max(1, min(int(job.map_tasks), max(len(records), 1)))
        chunks = np.array_split(np.arange(len(records)), n_map_tasks)

        def run_map_task(
            task_index: int, chunk: np.ndarray
        ) -> Tuple[TaskStats, List[Record]]:
            task = TaskStats(task_id=f"map-{task_index}")
            emitted_records: List[Record] = []
            started = time.perf_counter()
            with _span(
                task.task_id, "mapreduce", job=job.name, stage="map",
                worker=threading.current_thread().name,
            ) as sp:
                # Per-task fault hook: raise/crash/delay fire here (a
                # delay lands inside the timer, so it shows up as a
                # straggler); a drop-output decision is deferred until
                # the work is done — the output, not the task, is lost.
                injector = get_injector()
                drop = None
                if injector.enabled:
                    decision = injector.fire("mapreduce.map", task.task_id)
                    if decision is not None and decision.kind == "drop-output":
                        drop = decision
                for record_index in chunk:
                    key, value = records[record_index]
                    task.records_in += 1
                    task.bytes_in += payload_bytes(value)
                    try:
                        emitted = list(map_fn(key, value))
                    except Exception as exc:
                        raise MapReduceError(
                            f"map task {task.task_id} of job {job.name!r} "
                            f"failed on key {key!r}: {exc}"
                        ) from exc
                    for out_key, out_value in emitted:
                        task.records_out += 1
                        task.bytes_out += payload_bytes(out_value)
                        emitted_records.append((out_key, out_value))
                if drop is not None:
                    raise FaultInjectionError(
                        "mapreduce.map",
                        task.task_id,
                        drop.spec.fault_id,
                        "map output dropped",
                    )
                sp.set(
                    records_in=task.records_in, records_out=task.records_out
                )
            task.compute_seconds = time.perf_counter() - started
            return task, emitted_records

        map_results = self._dispatch(
            [(index, chunk) for index, chunk in enumerate(chunks)],
            run_map_task,
            "mapreduce.map",
            stats,
        )
        intermediate: List[Record] = []
        for task, emitted_records in map_results:
            stats.map_tasks.append(task)
            intermediate.extend(emitted_records)

        # ----------------------------------------------------- shuffle
        with _span(
            "shuffle", "mapreduce", job=job.name, stage="shuffle",
        ) as shuffle_span:
            groups: Dict[Hashable, List[Any]] = {}
            for key, value in intermediate:
                groups.setdefault(key, []).append(value)
            stats.shuffle_bytes = sum(
                payload_bytes(v) for _k, v in intermediate
            )
            shuffle_span.set(
                shuffle_bytes=stats.shuffle_bytes, keys=len(groups)
            )
        metrics = get_metrics()
        metrics.counter("mapreduce.jobs").inc()
        metrics.counter("mapreduce.shuffle_bytes").inc(stats.shuffle_bytes)

        # ----------------------------------------------------- reduce
        output: List[Record] = []
        if job.reduce_fn is None:
            for key, values in groups.items():
                for value in values:
                    output.append((key, value))
            return output, stats

        def run_reduce_task(key) -> Tuple[TaskStats, List[Record]]:
            task = TaskStats(task_id=f"reduce-{key!r}")
            values = groups[key]
            task.records_in = len(values)
            task.bytes_in = sum(payload_bytes(v) for v in values)
            started = time.perf_counter()
            with _span(
                task.task_id, "mapreduce", job=job.name, stage="reduce",
                worker=threading.current_thread().name,
            ):
                injector = get_injector()
                if injector.enabled:
                    injector.fire("mapreduce.reduce", task.task_id)
                try:
                    emitted = list(job.reduce_fn(key, values))
                except Exception as exc:
                    raise MapReduceError(
                        f"reduce task for key {key!r} of job {job.name!r} "
                        f"failed: {exc}"
                    ) from exc
            task.compute_seconds = time.perf_counter() - started
            for _out_key, out_value in emitted:
                task.records_out += 1
                task.bytes_out += payload_bytes(out_value)
            return task, emitted

        ordered_keys = sorted(groups, key=repr)
        results = self._dispatch(
            [(key,) for key in ordered_keys],
            run_reduce_task,
            "mapreduce.reduce",
            stats,
        )
        for task, emitted in results:
            stats.reduce_tasks.append(task)
            output.extend(emitted)
        return output, stats

    # ------------------------------------------------------------------
    def _run_task(self, fn, args, site, stats):
        """One task with Hadoop-style fault tolerance: up to
        ``task_attempts`` executions on (injected or genuine) task
        failure, then one speculative re-execution if the surviving
        attempt ran longer than ``straggler_seconds``.  Tasks are
        deterministic, so the rerun's records are identical and taking
        the fresh copy never changes job output."""
        attempts = self.task_attempts
        for attempt in range(1, attempts + 1):
            try:
                task, emitted = fn(*args)
            except (MapReduceError, FaultInjectionError):
                if attempt >= attempts:
                    raise
                continue
            injector = get_injector()
            if attempt > 1:
                with self._stats_lock:
                    stats.retried_tasks += 1
                if injector.enabled:
                    injector.note_recovery(site, task.task_id)
            if (
                self.straggler_seconds is not None
                and task.compute_seconds > self.straggler_seconds
            ):
                task, emitted = fn(*args)
                with self._stats_lock:
                    stats.speculative_tasks += 1
                if injector.enabled:
                    injector.note_recovery(site, task.task_id)
            return task, emitted
        raise AssertionError("unreachable")  # pragma: no cover

    def _dispatch(self, arg_tuples, fn, site, stats):
        """Run ``fn(*args)`` for each tuple on the executor, returning
        results in submission order (concurrent execution, sequential
        collection — hence deterministic output/statistics ordering)."""
        def run_one(*args):
            return self._run_task(fn, args, site, stats)

        if len(arg_tuples) <= 1 or isinstance(self.executor, InlineExecutor):
            return [run_one(*args) for args in arg_tuples]
        futures = [self.executor.submit(run_one, *args) for args in arg_tuples]
        return [future.result() for future in futures]
