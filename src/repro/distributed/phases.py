"""The three D-M2TD MapReduce phases (paper Section VI-D).

Phase 1 — parallel sub-tensor decomposition: one reduce task per
sub-tensor computes its per-mode factor matrices (and singular
values, which M2TD-SELECT's energy comparison consumes).

Phase 2 — parallel JE-stitching: cells shuffle on their pivot
configuration; one reduce task per pivot configuration builds that
pivot's join (or zero-join) block.

Phase 3 — parallel core recovery: join blocks shuffle on the pivot
configuration again; each reduce task projects its block onto the
free-mode factor subspaces and weights it by the pivot factor rows;
the driver sums the per-pivot contributions into the core.

All three reduce functions are module-level callable classes built
from plain data (ranks, candidate arrays, factor matrices), so every
phase pickles cleanly and can be dispatched to external worker
processes by the supervised engine — not just run on threads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import MapReduceError
from ..sampling.partition import PFPartition
from ..tensor.sparse import SparseTensor
from ..tensor.svd import truncated_svd
from ..tensor.ttm import multi_ttm
from ..tensor.ops import outer
from .mapreduce import MapReduceJob, Record


# ----------------------------------------------------------------------
# phase 1: parallel sub-tensor decomposition
# ----------------------------------------------------------------------
class Phase1Reduce:
    """Decompose one sub-tensor: per-mode truncated SVDs.

    ``ranks_per_mode[kappa]`` holds the target rank for each mode of
    sub-tensor ``kappa``.
    """

    def __init__(self, ranks_per_mode: Dict[int, Tuple[int, ...]]):
        self.ranks_per_mode = ranks_per_mode

    def __call__(self, kappa, values) -> Iterable[Record]:
        (tensor,) = values
        if not isinstance(tensor, SparseTensor):
            raise MapReduceError("phase 1 expects SparseTensor payloads")
        ranks = self.ranks_per_mode[kappa]
        for mode, rank in enumerate(ranks):
            matricized = tensor.unfold_csr(mode)
            clipped = max(1, min(int(rank), min(matricized.shape)))
            u, s, _vt = truncated_svd(matricized, clipped)
            yield ("factor", (kappa, mode, u, s))


def phase1_job(ranks_per_mode: Dict[int, Tuple[int, ...]]) -> MapReduceJob:
    """Job decomposing each sub-tensor independently."""
    return MapReduceJob(
        name="phase1-sub-decompose",
        reduce_fn=Phase1Reduce(ranks_per_mode),
        map_tasks=2,
    )


def phase1_records(
    x1: SparseTensor, x2: SparseTensor
) -> List[Record]:
    return [(1, x1), (2, x2)]


# ----------------------------------------------------------------------
# phase 2: parallel JE-stitching
# ----------------------------------------------------------------------
def _split_flat(
    tensor: SparseTensor, partition: PFPartition, which: int
) -> Tuple[np.ndarray, np.ndarray]:
    k = partition.k
    pivot_flat = (
        np.ravel_multi_index(
            tuple(tensor.coords[:, :k].T), partition.pivot_shape
        )
        if tensor.nnz
        else np.empty(0, dtype=np.int64)
    )
    free_flat = (
        np.ravel_multi_index(
            tuple(tensor.coords[:, k:].T), partition.free_shape(which)
        )
        if tensor.nnz
        else np.empty(0, dtype=np.int64)
    )
    return pivot_flat, free_flat


def phase2_records(
    x1: SparseTensor, x2: SparseTensor, partition: PFPartition
) -> List[Record]:
    """One record per (sub-tensor, pivot configuration)."""
    records: List[Record] = []
    for which, tensor in ((1, x1), (2, x2)):
        pivot_flat, free_flat = _split_flat(tensor, partition, which)
        for pivot in np.unique(pivot_flat):
            mask = pivot_flat == pivot
            records.append(
                (
                    int(pivot),
                    (which, free_flat[mask], tensor.values[mask]),
                )
            )
    return records


class Phase2Reduce:
    """Build one join (or zero-join) block for one pivot
    configuration."""

    def __init__(
        self,
        join_kind: str,
        candidates1: Optional[np.ndarray] = None,
        candidates2: Optional[np.ndarray] = None,
    ):
        self.join_kind = join_kind
        self.candidates1 = candidates1
        self.candidates2 = candidates2

    def __call__(self, pivot, values) -> Iterable[Record]:
        join_kind = self.join_kind
        candidates1 = self.candidates1
        candidates2 = self.candidates2
        side1 = [(f, v) for which, f, v in values if which == 1]
        side2 = [(f, v) for which, f, v in values if which == 2]
        frees1 = (
            np.concatenate([f for f, _v in side1])
            if side1
            else np.empty(0, dtype=np.int64)
        )
        vals1 = (
            np.concatenate([v for _f, v in side1]) if side1 else np.empty(0)
        )
        frees2 = (
            np.concatenate([f for f, _v in side2])
            if side2
            else np.empty(0, dtype=np.int64)
        )
        vals2 = (
            np.concatenate([v for _f, v in side2]) if side2 else np.empty(0)
        )
        if join_kind == "join":
            if frees1.size == 0 or frees2.size == 0:
                return
            a = np.repeat(frees1, frees2.size)
            b = np.tile(frees2, frees1.size)
            v = 0.5 * (np.repeat(vals1, frees2.size) + np.tile(vals2, frees1.size))
            yield (pivot, (a, b, v))
            return
        # zero-join: pair every observed cell with every candidate on
        # the other side, completing the average where both exist.
        cand1 = candidates1 if candidates1 is not None else np.unique(frees1)
        cand2 = candidates2 if candidates2 is not None else np.unique(frees2)
        blocks_a, blocks_b, blocks_v = [], [], []
        if frees1.size and cand2.size:
            order2 = np.argsort(frees2)
            f2s, v2s = frees2[order2], vals2[order2]
            pos = np.searchsorted(f2s, cand2)
            hit = (
                (pos < f2s.size) & (f2s[pos.clip(max=max(f2s.size - 1, 0))] == cand2)
                if f2s.size
                else np.zeros(cand2.size, dtype=bool)
            )
            x2_at = np.zeros(cand2.size)
            if f2s.size:
                x2_at[hit] = v2s[pos[hit]]
            blocks_a.append(np.repeat(frees1, cand2.size))
            blocks_b.append(np.tile(cand2, frees1.size))
            blocks_v.append(
                0.5 * (np.repeat(vals1, cand2.size) + np.tile(x2_at, frees1.size))
            )
        if frees2.size and cand1.size:
            if frees1.size:
                order1 = np.argsort(frees1)
                f1s = frees1[order1]
                pos = np.searchsorted(f1s, cand1)
                observed = (pos < f1s.size) & (
                    f1s[pos.clip(max=f1s.size - 1)] == cand1
                )
            else:
                observed = np.zeros(cand1.size, dtype=bool)
            missing = cand1[~observed]
            if missing.size:
                blocks_a.append(np.tile(missing, frees2.size))
                blocks_b.append(np.repeat(frees2, missing.size))
                blocks_v.append(0.5 * np.repeat(vals2, missing.size))
        if blocks_v:
            yield (
                pivot,
                (
                    np.concatenate(blocks_a),
                    np.concatenate(blocks_b),
                    np.concatenate(blocks_v),
                ),
            )


def phase2_job(
    partition: PFPartition,
    join_kind: str = "join",
    candidates1: Optional[np.ndarray] = None,
    candidates2: Optional[np.ndarray] = None,
) -> MapReduceJob:
    """Job building one join block per pivot configuration.

    Emits ``(pivot, (free1_flat, free2_flat, values))`` records.
    """
    if join_kind not in ("join", "zero"):
        raise MapReduceError(f"unknown join kind {join_kind!r}")
    return MapReduceJob(
        name="phase2-je-stitch",
        reduce_fn=Phase2Reduce(join_kind, candidates1, candidates2),
        map_tasks=4,
    )


# ----------------------------------------------------------------------
# phase 3: parallel core recovery
# ----------------------------------------------------------------------
class Phase3Reduce:
    """Project one pivot's join block into core space.

    Densifies the block over the free sub-spaces, projects it onto the
    free-mode factor subspaces, and scales by the pivot factor rows;
    emits one partial core per pivot.  Carries only factor-matrix-sized
    state (the free/pivot shapes and the factor matrices themselves),
    which is exactly the payload the supervised engine ships per task.
    """

    def __init__(
        self,
        free_shape1: Tuple[int, ...],
        free_shape2: Tuple[int, ...],
        pivot_shape: Tuple[int, ...],
        pivot_factors: List[np.ndarray],
        s1_factors: List[np.ndarray],
        s2_factors: List[np.ndarray],
    ):
        self.free_shape1 = tuple(free_shape1)
        self.free_shape2 = tuple(free_shape2)
        self.pivot_shape = tuple(pivot_shape)
        self.pivot_factors = list(pivot_factors)
        self.s1_factors = list(s1_factors)
        self.s2_factors = list(s2_factors)

    def __call__(self, pivot, values) -> Iterable[Record]:
        block = np.zeros(self.free_shape1 + self.free_shape2)
        flat = block.reshape(
            int(np.prod(self.free_shape1)), int(np.prod(self.free_shape2))
        )
        for a, b, v in values:
            # duplicate (a, b) pairs across records average naturally
            # because phase 2 emits each pair at most once per pivot.
            flat[a, b] = v
        projected = multi_ttm(
            block, self.s1_factors + self.s2_factors, transpose=True
        )
        pivot_multi = np.unravel_index(int(pivot), self.pivot_shape)
        pivot_rows = [
            factor[index]
            for factor, index in zip(self.pivot_factors, pivot_multi)
        ]
        weight = pivot_rows[0] if len(pivot_rows) == 1 else outer(pivot_rows)
        yield ("core", np.multiply.outer(weight, projected))


def phase3_job(
    partition: PFPartition,
    pivot_factors: List[np.ndarray],
    s1_factors: List[np.ndarray],
    s2_factors: List[np.ndarray],
) -> MapReduceJob:
    """Job projecting each pivot's join block into core space."""
    return MapReduceJob(
        name="phase3-core-recovery",
        reduce_fn=Phase3Reduce(
            partition.free_shape(1),
            partition.free_shape(2),
            partition.pivot_shape,
            pivot_factors,
            s1_factors,
            s2_factors,
        ),
        map_tasks=4,
    )
