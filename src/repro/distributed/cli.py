"""Argparse glue for the supervised worker pool.

Mirrors :mod:`repro.faults.cli`::

    add_worker_args(parser)
    args = parser.parse_args(argv)
    apply_worker_args(args)   # before any engine is constructed
    ...

``--transport`` / ``--heartbeat-seconds`` are exported as the
``M2TD_TRANSPORT`` / ``M2TD_HEARTBEAT_SECONDS`` environment variables,
which every :class:`~repro.distributed.mapreduce.LocalMapReduceEngine`
constructed without an explicit ``transport`` consults — so one flag
moves an entire experiment run (engines are built deep inside table
code) onto supervised external worker processes.
"""

from __future__ import annotations

import argparse
import os

__all__ = ["add_worker_args", "apply_worker_args"]


def add_worker_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("worker pool")
    group.add_argument(
        "--transport",
        choices=("thread", "inline", "process"),
        help="task venue for MapReduce engines: 'thread' (default; "
        "in-process), or a supervised worker pool over the 'inline' "
        "or 'process' transport (heartbeats, leases, crash budget; "
        "see docs/distributed.md)",
    )
    group.add_argument(
        "--heartbeat-seconds",
        type=float,
        metavar="S",
        help="worker heartbeat interval for supervised transports "
        "(default 0.25; ignored without --transport inline/process)",
    )


def apply_worker_args(args: argparse.Namespace) -> None:
    """Export the parsed flags as the engine-consulted env vars.

    Call before constructing engines (or code that constructs them).
    Flags left unset leave the environment untouched, so an exported
    ``M2TD_TRANSPORT`` still wins when the flag is omitted.
    """
    transport = getattr(args, "transport", None)
    if transport is not None:
        os.environ["M2TD_TRANSPORT"] = transport
    heartbeat = getattr(args, "heartbeat_seconds", None)
    if heartbeat is not None:
        if heartbeat <= 0:
            raise SystemExit(
                f"--heartbeat-seconds must be > 0, got {heartbeat}"
            )
        os.environ["M2TD_HEARTBEAT_SECONDS"] = repr(heartbeat)
