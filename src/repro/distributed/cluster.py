"""The simulated cluster: replaying measured tasks on ``s`` servers.

This substitutes for the paper's 18-server Chameleon/Hadoop deployment
(see DESIGN.md).  Given the per-task compute times and shuffle volumes
a :class:`~repro.distributed.mapreduce.LocalMapReduceEngine` run
recorded, :class:`ClusterModel` answers "how long would this job have
taken on ``s`` servers?":

* tasks are assigned to servers with the classic LPT (longest
  processing time first) greedy — the makespan is the busiest server;
* every task also pays a fixed scheduling overhead;
* the shuffle moves its bytes over a shared network whose effective
  bandwidth grows sub-linearly with the server count.

The model reproduces exactly the qualitative behaviour Table III
reports: adding servers shortens phases, with diminishing returns as
per-task overheads and data communication start to dominate.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..exceptions import MapReduceError
from .mapreduce import JobStats


def lpt_makespan(durations: Sequence[float], n_servers: int) -> float:
    """Makespan of greedy longest-processing-time-first scheduling."""
    if n_servers < 1:
        raise MapReduceError(f"need at least 1 server, got {n_servers}")
    loads = [0.0] * min(n_servers, max(len(durations), 1))
    heapq.heapify(loads)
    for duration in sorted(durations, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + float(duration))
    return max(loads) if loads else 0.0


@dataclass(frozen=True)
class ClusterModel:
    """A cost model for a homogeneous cluster.

    Attributes
    ----------
    n_servers:
        Number of worker servers.
    task_overhead_seconds:
        Fixed cost charged per task (scheduling, JVM-ish startup).
    network_seconds_per_mb:
        Time to move one megabyte across the shuffle fabric with a
        single server.
    network_scaling:
        Exponent of the effective bandwidth gain with servers: the
        shuffle time divides by ``n_servers ** network_scaling``
        (1.0 = perfectly parallel network, 0.0 = fully serialized).
        The default 0.5 encodes the cross-traffic contention that
        gives Table III its diminishing returns.
    """

    n_servers: int
    task_overhead_seconds: float = 0.05
    network_seconds_per_mb: float = 0.02
    network_scaling: float = 0.5

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise MapReduceError(
                f"need at least 1 server, got {self.n_servers}"
            )

    def compute_time(self, durations: Sequence[float]) -> float:
        """Wall-clock of a task set on this cluster (incl. overheads)."""
        padded = [
            float(d) + self.task_overhead_seconds for d in durations
        ]
        return lpt_makespan(padded, self.n_servers)

    def shuffle_time(self, shuffle_bytes: int) -> float:
        """Wall-clock of moving the shuffle volume."""
        megabytes = shuffle_bytes / (1024.0 * 1024.0)
        effective = self.n_servers**self.network_scaling
        return megabytes * self.network_seconds_per_mb / effective

    def job_time(self, stats: JobStats) -> float:
        """Modelled wall-clock of one recorded MapReduce job."""
        map_time = self.compute_time(
            [t.compute_seconds for t in stats.map_tasks]
        )
        reduce_time = self.compute_time(
            [t.compute_seconds for t in stats.reduce_tasks]
        ) if stats.reduce_tasks else 0.0
        return map_time + self.shuffle_time(stats.shuffle_bytes) + reduce_time
