"""D-M2TD: the 3-phase distributed M2TD driver (paper Section VI-D,
Algorithm 6).

Runs the three MapReduce phases on the local engine, combines the
pivot factors per the chosen M2TD variant between phases 1 and 2, and
reports, for any :class:`~repro.distributed.cluster.ClusterModel`, the
wall-clock each phase would take — the reproduction of Table III.

``variant`` supports ``"avg"`` and ``"select"``; M2TD-CONCAT needs the
concatenated matricization SVD, which is not expressible in the
paper's phase-1 job (each reducer sees only its own sub-tensor), so it
is intentionally rejected here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import MapReduceError
from ..sampling.partition import PFPartition
from ..tensor.sparse import SparseTensor
from ..tensor.tucker import TuckerTensor
from ..core.m2td import M2TDResult, map_ranks_to_join
from ..core.row_select import average_factors, row_select
from .cluster import ClusterModel
from .mapreduce import JobStats, LocalMapReduceEngine
from .phases import (
    _split_flat,
    phase1_job,
    phase1_records,
    phase2_job,
    phase2_records,
    phase3_job,
)

PHASE_NAMES = ("phase1", "phase2", "phase3")


@dataclass
class DM2TDResult:
    """Distributed decomposition outcome plus per-phase accounting."""

    result: M2TDResult
    job_stats: Dict[str, JobStats] = field(default_factory=dict)

    def phase_times(self, cluster: ClusterModel) -> Dict[str, float]:
        """Modelled per-phase wall-clock on the given cluster."""
        return {
            phase: cluster.job_time(self.job_stats[phase])
            for phase in PHASE_NAMES
        }

    def total_time(self, cluster: ClusterModel) -> float:
        return sum(self.phase_times(cluster).values())


def _clip(rank: int, size: int) -> int:
    return max(1, min(int(rank), int(size)))


def distributed_m2td(
    x1: SparseTensor,
    x2: SparseTensor,
    partition: PFPartition,
    ranks: Sequence[int],
    variant: str = "select",
    join_kind: str = "join",
    engine: Optional[LocalMapReduceEngine] = None,
) -> DM2TDResult:
    """Run the 3-phase D-M2TD pipeline.

    Parameters mirror :func:`repro.core.m2td.m2td_decompose`; the
    output decomposition is numerically identical to the single-node
    path for the same inputs (tests assert this), only the execution
    is organised as MapReduce jobs with per-task accounting.
    """
    if variant not in ("avg", "select"):
        raise MapReduceError(
            f"D-M2TD supports variants 'avg' and 'select', got {variant!r}"
        )
    engine = engine or LocalMapReduceEngine()
    join_ranks = map_ranks_to_join(partition, ranks)
    k = partition.k
    f1 = len(partition.s1_free)
    f2 = len(partition.s2_free)
    job_stats: Dict[str, JobStats] = {}

    # ------------------------------------------------------- phase 1
    ranks1 = tuple(join_ranks[:k]) + tuple(join_ranks[k : k + f1])
    ranks2 = tuple(join_ranks[:k]) + tuple(join_ranks[k + f1 :])
    job1 = phase1_job({1: ranks1, 2: ranks2})
    out1, stats1 = engine.run(job1, phase1_records(x1, x2))
    job_stats["phase1"] = stats1
    factors_by_side: Dict[int, Dict[int, np.ndarray]] = {1: {}, 2: {}}
    svals_by_side: Dict[int, Dict[int, np.ndarray]] = {1: {}, 2: {}}
    for _key, (kappa, mode, u, s) in out1:
        factors_by_side[kappa][mode] = u
        svals_by_side[kappa][mode] = s

    # Combine pivot factors per variant (driver side; tiny matrices).
    pivot_factors: List[np.ndarray] = []
    for mode in range(k):
        u1 = factors_by_side[1][mode]
        u2 = factors_by_side[2][mode]
        width = min(u1.shape[1], u2.shape[1])
        u1, u2 = u1[:, :width], u2[:, :width]
        if variant == "avg":
            pivot_factors.append(average_factors(u1, u2))
        else:
            pivot_factors.append(
                row_select(
                    u1,
                    u2,
                    svals_by_side[1][mode][:width],
                    svals_by_side[2][mode][:width],
                )
            )
    s1_factors = [factors_by_side[1][k + i] for i in range(f1)]
    s2_factors = [factors_by_side[2][k + i] for i in range(f2)]

    # ------------------------------------------------------- phase 2
    # Zero-join candidate sets must be GLOBAL (the distinct free
    # configurations observed anywhere in each sub-ensemble); each
    # per-pivot reducer only sees its own group, so the driver
    # broadcasts them into the job.
    candidates1 = candidates2 = None
    if join_kind == "zero":
        candidates1 = np.unique(_split_flat(x1, partition, 1)[1])
        candidates2 = np.unique(_split_flat(x2, partition, 2)[1])
    job2 = phase2_job(
        partition,
        join_kind=join_kind,
        candidates1=candidates1,
        candidates2=candidates2,
    )
    blocks, stats2 = engine.run(job2, phase2_records(x1, x2, partition))
    job_stats["phase2"] = stats2
    join_nnz = int(sum(v.shape[0] for _pivot, (_a, _b, v) in blocks))

    # ------------------------------------------------------- phase 3
    job3 = phase3_job(partition, pivot_factors, s1_factors, s2_factors)
    partials, stats3 = engine.run(job3, blocks)
    job_stats["phase3"] = stats3
    core_shape = tuple(f.shape[1] for f in pivot_factors + s1_factors + s2_factors)
    core = np.zeros(core_shape)
    for _key, partial in partials:
        core += partial

    factors = pivot_factors + s1_factors + s2_factors
    result = M2TDResult(
        tucker=TuckerTensor(core, factors),
        partition=partition,
        variant=variant,
        join_kind=join_kind,
        join_nnz=join_nnz,
        phase_seconds={
            "sub_decompose": stats1.total_compute_seconds,
            "stitch": stats2.total_compute_seconds,
            "core": stats3.total_compute_seconds,
        },
    )
    return DM2TDResult(result=result, job_stats=job_stats)
