"""D-M2TD: the 3-phase distributed M2TD driver (paper Section VI-D,
Algorithm 6).

Runs the three MapReduce phases on the local engine, combines the
pivot factors per the chosen M2TD variant between phases 1 and 2, and
reports, for any :class:`~repro.distributed.cluster.ClusterModel`, the
wall-clock each phase would take — the reproduction of Table III.

``variant`` supports ``"avg"`` and ``"select"``; M2TD-CONCAT needs the
concatenated matricization SVD, which is not expressible in the
paper's phase-1 job (each reducer sees only its own sub-tensor), so it
is intentionally rejected here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import MapReduceError
from ..observability import span as _span
from ..runtime import Runtime, TaskGraph, output
from ..sampling.partition import PFPartition
from ..tensor.sparse import SparseTensor
from ..tensor.tucker import TuckerTensor
from ..core.m2td import M2TDResult, map_ranks_to_join
from ..core.row_select import average_factors, row_select
from .cluster import ClusterModel
from .mapreduce import JobStats, LocalMapReduceEngine
from .phases import (
    _split_flat,
    phase1_job,
    phase1_records,
    phase2_job,
    phase2_records,
    phase3_job,
)

PHASE_NAMES = ("phase1", "phase2", "phase3")


@dataclass
class DM2TDResult:
    """Distributed decomposition outcome plus per-phase accounting."""

    result: M2TDResult
    job_stats: Dict[str, JobStats] = field(default_factory=dict)

    def phase_times(self, cluster: ClusterModel) -> Dict[str, float]:
        """Modelled per-phase wall-clock on the given cluster."""
        return {
            phase: cluster.job_time(self.job_stats[phase])
            for phase in PHASE_NAMES
        }

    def total_time(self, cluster: ClusterModel) -> float:
        return sum(self.phase_times(cluster).values())


def _clip(rank: int, size: int) -> int:
    return max(1, min(int(rank), int(size)))


def dm2td_task_graph(
    x1: SparseTensor,
    x2: SparseTensor,
    partition: PFPartition,
    ranks: Sequence[int],
    variant: str = "select",
    join_kind: str = "join",
    engine: Optional[LocalMapReduceEngine] = None,
) -> TaskGraph:
    """The 3-phase D-M2TD pipeline as a runtime task graph.

    The dependency structure mirrors the data flow of Algorithm 6:
    phase 1 (sub-tensor decomposition) and phase 2 (JE-stitching) read
    only the raw sub-tensors and are **independent** — a multi-worker
    runtime overlaps them — while the pivot-factor combination hangs
    off phase 1 and phase 3 joins both branches.  Each task returns
    ``(payload, JobStats)`` so the driver can assemble the result and
    the cluster model replay.
    """
    if variant not in ("avg", "select"):
        raise MapReduceError(
            f"D-M2TD supports variants 'avg' and 'select', got {variant!r}"
        )
    engine = engine or LocalMapReduceEngine()
    join_ranks = map_ranks_to_join(partition, ranks)
    k = partition.k
    f1 = len(partition.s1_free)
    f2 = len(partition.s2_free)

    def run_phase1():
        with _span(
            "dm2td-phase1", "decompose", variant=variant,
            nnz1=x1.nnz, nnz2=x2.nnz,
        ):
            ranks1 = tuple(join_ranks[:k]) + tuple(join_ranks[k : k + f1])
            ranks2 = tuple(join_ranks[:k]) + tuple(join_ranks[k + f1 :])
            job1 = phase1_job({1: ranks1, 2: ranks2})
            return engine.run(job1, phase1_records(x1, x2))

    def combine_pivots(phase1_out):
        # Combine pivot factors per variant (driver side; tiny
        # matrices).
        with _span("dm2td-combine-pivots", "stitch-factor", variant=variant):
            return _combine_pivots(phase1_out)

    def _combine_pivots(phase1_out):
        out1, _stats1 = phase1_out
        factors_by_side: Dict[int, Dict[int, np.ndarray]] = {1: {}, 2: {}}
        svals_by_side: Dict[int, Dict[int, np.ndarray]] = {1: {}, 2: {}}
        for _key, (kappa, mode, u, s) in out1:
            factors_by_side[kappa][mode] = u
            svals_by_side[kappa][mode] = s
        pivot_factors: List[np.ndarray] = []
        for mode in range(k):
            u1 = factors_by_side[1][mode]
            u2 = factors_by_side[2][mode]
            width = min(u1.shape[1], u2.shape[1])
            u1, u2 = u1[:, :width], u2[:, :width]
            if variant == "avg":
                pivot_factors.append(average_factors(u1, u2))
            else:
                pivot_factors.append(
                    row_select(
                        u1,
                        u2,
                        svals_by_side[1][mode][:width],
                        svals_by_side[2][mode][:width],
                    )
                )
        s1_factors = [factors_by_side[1][k + i] for i in range(f1)]
        s2_factors = [factors_by_side[2][k + i] for i in range(f2)]
        return pivot_factors, s1_factors, s2_factors

    def run_phase2():
        # Zero-join candidate sets must be GLOBAL (the distinct free
        # configurations observed anywhere in each sub-ensemble); each
        # per-pivot reducer only sees its own group, so the driver
        # broadcasts them into the job.
        with _span("dm2td-phase2", "stitch", join_kind=join_kind):
            candidates1 = candidates2 = None
            if join_kind == "zero":
                candidates1 = np.unique(_split_flat(x1, partition, 1)[1])
                candidates2 = np.unique(_split_flat(x2, partition, 2)[1])
            job2 = phase2_job(
                partition,
                join_kind=join_kind,
                candidates1=candidates1,
                candidates2=candidates2,
            )
            return engine.run(job2, phase2_records(x1, x2, partition))

    def run_phase3(combined, phase2_out):
        with _span("dm2td-phase3", "decompose", variant=variant):
            pivot_factors, s1_factors, s2_factors = combined
            blocks, _stats2 = phase2_out
            job3 = phase3_job(
                partition, pivot_factors, s1_factors, s2_factors
            )
            return engine.run(job3, blocks)

    graph = TaskGraph()
    graph.add("phase1", run_phase1, affinity="thread")
    graph.add("combine-pivots", combine_pivots, output("phase1"))
    graph.add("phase2", run_phase2, affinity="thread")
    graph.add(
        "phase3", run_phase3, output("combine-pivots"), output("phase2"),
        affinity="thread",
    )
    return graph


def distributed_m2td(
    x1: SparseTensor,
    x2: SparseTensor,
    partition: PFPartition,
    ranks: Sequence[int],
    variant: str = "select",
    join_kind: str = "join",
    engine: Optional[LocalMapReduceEngine] = None,
    runtime: Optional[Runtime] = None,
) -> DM2TDResult:
    """Run the 3-phase D-M2TD pipeline.

    Parameters mirror :func:`repro.core.m2td.m2td_decompose`; the
    output decomposition is numerically identical to the single-node
    path for the same inputs (tests assert this), only the execution
    is organised as MapReduce jobs scheduled through a
    :class:`~repro.runtime.TaskGraph` with per-task accounting.  A
    multi-worker ``runtime`` overlaps the independent phases 1 and 2;
    without one the graph runs inline in topological order.
    """
    graph = dm2td_task_graph(
        x1, x2, partition, ranks,
        variant=variant, join_kind=join_kind, engine=engine,
    )
    if runtime is None:
        runtime = Runtime(workers=1)
        outcome = runtime.run(graph)
        runtime.shutdown()
    else:
        outcome = runtime.run(graph)
    _out1, stats1 = outcome["phase1"]
    blocks, stats2 = outcome["phase2"]
    partials, stats3 = outcome["phase3"]
    pivot_factors, s1_factors, s2_factors = outcome["combine-pivots"]
    job_stats: Dict[str, JobStats] = {
        "phase1": stats1,
        "phase2": stats2,
        "phase3": stats3,
    }
    join_nnz = int(sum(v.shape[0] for _pivot, (_a, _b, v) in blocks))
    core_shape = tuple(
        f.shape[1] for f in pivot_factors + s1_factors + s2_factors
    )
    core = np.zeros(core_shape)
    for _key, partial in partials:
        core += partial

    factors = pivot_factors + s1_factors + s2_factors
    result = M2TDResult(
        tucker=TuckerTensor(core, factors),
        partition=partition,
        variant=variant,
        join_kind=join_kind,
        join_nnz=join_nnz,
        phase_seconds={
            "sub_decompose": stats1.total_compute_seconds,
            "stitch": stats2.total_compute_seconds,
            "core": stats3.total_compute_seconds,
        },
    )
    return DM2TDResult(result=result, job_stats=job_stats)
