"""Transports: where workers live and how messages reach them.

A :class:`Transport` spawns :class:`WorkerHandle`\\ s and multiplexes
their inbound messages; the supervisor never touches a pipe or a
process object directly, so adding a venue (sockets are the designed
follow-up seam) means implementing exactly this contract:

* :class:`InlineTransport` — workers are objects in this process.
  Tasks execute synchronously on ``send``; heartbeats are synthesised
  on every poll.  Zero isolation, zero overhead — the venue for
  supervisor unit tests and for graceful degradation when the crash
  budget is gone.
* :class:`ProcessTransport` — one ``multiprocessing`` process per
  worker, a duplex pipe each, messages multiplexed with
  ``multiprocessing.connection.wait``.  A SIGKILLed child surfaces
  immediately as EOF on its pipe, independent of heartbeat cadence.

Both venues run the *same* task-execution body
(:func:`execute_task`), so a fault directive or error envelope behaves
identically wherever the task lands.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, List, Optional, Sequence

import multiprocessing

from ...exceptions import WorkerProtocolError, WorkerSpawnError
from .protocol import (
    ErrorEnvelope,
    HeartbeatMessage,
    HelloMessage,
    ResultMessage,
    ShutdownMessage,
    TaskMessage,
    WorkerConfig,
    checksum,
    flip_bytes,
)

__all__ = [
    "InlineTransport",
    "ProcessTransport",
    "Transport",
    "WorkerHandle",
    "execute_task",
    "make_transport",
]


def execute_task(
    message: TaskMessage, worker_id: str
) -> Optional[Any]:
    """Run one task message; returns the reply to send (or ``None``
    when a ``drop-output`` reply directive swallows it).

    This is the single task-execution body both venues share.  The
    task callable arrives either pickled (process transport) or live
    (inline transport); mapreduce-level fault directives ride *inside*
    the callable and fire in its own timed section, while
    ``worker.result`` reply directives are applied here, after the
    work: corrupt flips the pickled bytes (the checksum then fails in
    the supervisor), drop never sends, delay stalls the reply.

    When the message asks for telemetry (process venues with tracing
    or event logging on), the task runs under
    :func:`~repro.observability.distributed.capture` and its snapshot
    rides home on the reply with its own digest.  An
    ``observability.telemetry`` directive mangles only the snapshot —
    the result bytes and their digest are computed first and are
    never touched, so a telemetry fault can cost visibility but never
    an answer.
    """
    try:
        fn = message.payload
        if isinstance(fn, bytes):
            fn = pickle.loads(fn)
        telemetry_bytes: Optional[bytes] = None
        telemetry_digest = ""
        if message.collect_telemetry:
            from ...observability.distributed import capture

            with capture(
                message.trace_context, worker=worker_id
            ) as telemetry:
                value = fn()
            try:
                telemetry_bytes = telemetry.encode()
                telemetry_digest = checksum(telemetry_bytes)
            except Exception:  # noqa: BLE001 — visibility only
                telemetry_bytes, telemetry_digest = None, ""
            t_directive = message.telemetry_directive
            if t_directive is not None and telemetry_bytes is not None:
                if t_directive.kind == "corrupt":
                    telemetry_bytes = flip_bytes(telemetry_bytes)
                elif t_directive.kind == "delay":
                    time.sleep(t_directive.delay_seconds)
                else:
                    # drop-output (and anything unexpected): the
                    # snapshot vanishes; the task result is untouched.
                    telemetry_bytes, telemetry_digest = None, ""
        else:
            value = fn()
        directive = message.reply_directive
        try:
            payload = pickle.dumps(value)
        except Exception:  # noqa: BLE001 — inline replies may stay raw
            return ResultMessage(
                task_id=message.task_id, worker_id=worker_id,
                payload=value, raw=True,
                telemetry=telemetry_bytes,
                telemetry_digest=telemetry_digest,
            )
        digest = checksum(payload)
        if directive is not None:
            if directive.kind == "drop-output":
                return None
            if directive.kind == "delay":
                time.sleep(directive.delay_seconds)
            elif directive.kind == "corrupt":
                payload = flip_bytes(payload)
        return ResultMessage(
            task_id=message.task_id, worker_id=worker_id,
            payload=payload, digest=digest,
            telemetry=telemetry_bytes,
            telemetry_digest=telemetry_digest,
        )
    except BaseException as exc:  # noqa: BLE001 — envelope carries it
        return ErrorEnvelope.capture(message.task_id, worker_id, exc)


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point of an external worker process.

    A daemon heartbeat thread beats every ``heartbeat_seconds`` —
    independent of task work, so a busy worker stays visibly alive and
    a hung one goes visibly silent.  The main loop blocks on the pipe
    for task messages until shutdown or EOF (supervisor died).
    """
    send_lock = threading.Lock()

    def send(message) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):
            os._exit(1)

    stop = threading.Event()
    heartbeat_directive = config.heartbeat_directive

    def beat() -> None:
        directive = heartbeat_directive
        seq = 0
        while not stop.wait(config.heartbeat_seconds):
            if directive is not None:
                if directive.kind == "crash-worker":
                    os.kill(os.getpid(), signal.SIGKILL)
                if directive.kind == "delay":
                    stall = directive.delay_seconds
                    directive = None
                    time.sleep(stall)
            seq += 1
            send(HeartbeatMessage(worker_id=config.worker_id, seq=seq))

    send(HelloMessage(worker_id=config.worker_id, pid=os.getpid()))
    thread = threading.Thread(
        target=beat, name=f"{config.worker_id}-heartbeat", daemon=True
    )
    thread.start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if isinstance(message, ShutdownMessage):
                break
            if isinstance(message, TaskMessage):
                reply = execute_task(message, config.worker_id)
                if reply is not None:
                    send(reply)
    finally:
        stop.set()


class WorkerHandle(ABC):
    """One live (or recently deceased) worker, as the supervisor sees
    it."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.worker_id = config.worker_id

    @property
    def pid(self) -> Optional[int]:
        return None

    @abstractmethod
    def send(self, message) -> None:
        """Deliver a message; raises WorkerProtocolError if the worker
        is unreachable."""

    @abstractmethod
    def receive_all(self) -> List[Any]:
        """Drain every message currently available (non-blocking)."""

    @abstractmethod
    def alive(self) -> bool:
        ...

    @abstractmethod
    def kill(self) -> None:
        """Hard-stop the worker and release its resources."""

    def kill_hard(self) -> None:
        """SIGKILL where that is meaningful; plain kill otherwise."""
        self.kill()


class Transport(ABC):
    """Factory + multiplexer for one flavour of worker."""

    kind: str = "abstract"

    #: Whether task payloads must survive pickling to reach a worker.
    requires_pickle: bool = True

    @abstractmethod
    def spawn(self, config: WorkerConfig) -> WorkerHandle:
        ...

    @abstractmethod
    def wait(
        self, handles: Sequence[WorkerHandle], timeout: float
    ) -> List[WorkerHandle]:
        """Block up to ``timeout`` for handles with messages (or EOF)
        ready."""

    def shutdown(self) -> None:
        """Release transport-wide resources."""


# ----------------------------------------------------------------------
# inline transport
# ----------------------------------------------------------------------
class _InlineHandle(WorkerHandle):
    """An in-process worker: tasks run synchronously inside ``send``.

    Heartbeats are synthesised on every drain — unless an injected
    heartbeat directive silences them (``delay``) or kills the worker
    outright (``crash-worker``), which lets the supervisor's deadline
    machinery be exercised without real processes.
    """

    def __init__(self, config: WorkerConfig):
        super().__init__(config)
        self._inbox: List[Any] = [
            HelloMessage(worker_id=config.worker_id, pid=os.getpid())
        ]
        self._dead = False
        self._seq = 0
        self._silent_until = 0.0
        directive = config.heartbeat_directive
        if directive is not None:
            if directive.kind == "crash-worker":
                self._dead = True
            elif directive.kind == "delay":
                self._silent_until = (
                    time.monotonic() + directive.delay_seconds
                )

    def send(self, message) -> None:
        if self._dead:
            raise WorkerProtocolError(
                f"inline worker {self.worker_id!r} is dead"
            )
        if isinstance(message, ShutdownMessage):
            self._dead = True
            return
        if isinstance(message, TaskMessage):
            reply = execute_task(message, self.worker_id)
            if reply is not None:
                self._inbox.append(reply)

    def receive_all(self) -> List[Any]:
        if self._dead:
            return []
        messages, self._inbox = self._inbox, []
        if time.monotonic() >= self._silent_until:
            self._seq += 1
            messages.append(
                HeartbeatMessage(worker_id=self.worker_id, seq=self._seq)
            )
        return messages

    def alive(self) -> bool:
        return not self._dead

    def kill(self) -> None:
        self._dead = True
        self._inbox = []


class InlineTransport(Transport):
    kind = "inline"
    requires_pickle = False

    def spawn(self, config: WorkerConfig) -> WorkerHandle:
        return _InlineHandle(config)

    def wait(
        self, handles: Sequence[WorkerHandle], timeout: float
    ) -> List[WorkerHandle]:
        # Inline workers complete synchronously; anything alive may
        # have messages (at minimum a heartbeat), so never sleep.
        return [h for h in handles if h.alive()]


# ----------------------------------------------------------------------
# process transport
# ----------------------------------------------------------------------
class _ProcessHandle(WorkerHandle):
    def __init__(self, config: WorkerConfig, process, conn):
        super().__init__(config)
        self.process = process
        self.conn = conn
        self._broken = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def send(self, message) -> None:
        if self._broken:
            raise WorkerProtocolError(
                f"worker {self.worker_id!r} pipe is broken"
            )
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            self._broken = True
            raise WorkerProtocolError(
                f"worker {self.worker_id!r} unreachable: {exc}"
            ) from exc

    def receive_all(self) -> List[Any]:
        messages: List[Any] = []
        while not self._broken:
            try:
                if not self.conn.poll(0):
                    break
                messages.append(self.conn.recv())
            except (EOFError, OSError):
                # EOF: the process died (e.g. SIGKILL) — surface as a
                # broken handle; the supervisor treats it as a death.
                self._broken = True
        return messages

    def alive(self) -> bool:
        return not self._broken and self.process.is_alive()

    def kill(self) -> None:
        self._broken = True
        try:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=2.0)
        finally:
            try:
                self.conn.close()
            except OSError:
                pass

    def kill_hard(self) -> None:
        """A real ``kill -9``, bypassing any cleanup the child might
        run — exactly what the chaos suite's spawn-crash fault wants."""
        pid = self.process.pid
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, AttributeError):  # pragma: no cover — win
                self.process.kill()


class ProcessTransport(Transport):
    """One OS process per worker, duplex pipe each.

    ``start_method`` defaults to ``fork`` where available (fast,
    inherits loaded numpy) and falls back to ``spawn``.
    """

    kind = "process"
    requires_pickle = True

    def __init__(self, start_method: Optional[str] = None):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method

    def spawn(self, config: WorkerConfig) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, config),
            name=config.worker_id,
            daemon=True,
        )
        try:
            process.start()
        except OSError as exc:
            raise WorkerSpawnError(config.worker_id, str(exc)) from exc
        child_conn.close()
        return _ProcessHandle(config, process, parent_conn)

    def wait(
        self, handles: Sequence[WorkerHandle], timeout: float
    ) -> List[WorkerHandle]:
        by_conn = {
            h.conn: h
            for h in handles
            if isinstance(h, _ProcessHandle) and not h._broken
        }
        if not by_conn:
            if timeout > 0:
                time.sleep(min(timeout, 0.05))
            return []
        ready = mp_connection.wait(list(by_conn), timeout=max(timeout, 0))
        return [by_conn[conn] for conn in ready]


def make_transport(kind, start_method: Optional[str] = None) -> Transport:
    """Transport factory: a name (``"inline"``/``"process"``), a
    Transport instance (passed through), or a Transport subclass."""
    if isinstance(kind, Transport):
        return kind
    if isinstance(kind, type) and issubclass(kind, Transport):
        return kind()
    if kind == "inline":
        return InlineTransport()
    if kind == "process":
        return ProcessTransport(start_method=start_method)
    raise WorkerProtocolError(
        f"unknown transport {kind!r}; use 'inline' or 'process'"
    )
