"""Wire protocol of the worker layer: messages, envelopes, checksums.

Everything that crosses a transport is one of the small dataclasses
here, and every one of them is plain picklable data — no closures, no
live handles, no injector state.  Two design rules keep the protocol
crash-tolerant:

* **Replies are checksummed.**  A worker pickles its result, hashes
  the bytes, and sends both.  The supervisor never unpickles bytes
  whose digest does not match — a corrupted reply is detected *before*
  deserialisation can do damage, and handled like a worker failure.
* **Errors travel as envelopes, never as raw pickles alone.**  A
  worker-side exception is captured with its type name, message, and
  full traceback text *as strings* (always picklable), plus the
  pickled exception when the class cooperates and its fault provenance
  when it carries any.  A pickling quirk in an exotic exception class
  can therefore mask nothing: the supervisor either re-raises the
  original or a :class:`~repro.exceptions.RemoteTaskError` quoting the
  real worker traceback.
"""

from __future__ import annotations

import hashlib
import pickle
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ...exceptions import (
    CorruptReplyError,
    FaultInjectionError,
    RemoteTaskError,
    WorkerCrashError,
)
from ...faults.directive import FaultDirective

__all__ = [
    "ErrorEnvelope",
    "HeartbeatMessage",
    "HelloMessage",
    "ResultMessage",
    "ShutdownMessage",
    "TaskMessage",
    "WorkerConfig",
    "checksum",
    "flip_bytes",
]


def checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def flip_bytes(payload: bytes) -> bytes:
    """Bit-flip a few bytes — real corruption for the chaos suite, the
    same idiom the block store's injected disk rot uses."""
    if not payload:
        return payload
    damaged = bytearray(payload)
    for fraction in (0.4, 0.6, 0.8):
        position = min(len(damaged) - 1, int(len(damaged) * fraction))
        damaged[position] ^= 0xFF
    return bytes(damaged)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to run, shipped at spawn time.

    ``heartbeat_directive`` is the child-side half of a parent-decided
    ``worker.heartbeat`` fault: ``delay`` silences the beat loop for
    ``delay_seconds`` (a hang the supervisor must detect), and
    ``crash-worker`` makes the child SIGKILL itself on its first beat
    — a real dead process, possibly mid-task.
    """

    worker_id: str
    heartbeat_seconds: float = 0.25
    heartbeat_directive: Optional[FaultDirective] = None


@dataclass(frozen=True)
class HelloMessage:
    """First message a worker sends: it is alive and ready."""

    worker_id: str
    pid: int


@dataclass(frozen=True)
class HeartbeatMessage:
    worker_id: str
    seq: int


@dataclass(frozen=True)
class TaskMessage:
    """One leased task.

    ``payload`` is the pickled zero-argument callable for process
    transports, or the callable itself for the in-process transport
    (which never needs to pickle and so accepts closures).
    ``reply_directive`` is the child-side half of a parent-decided
    ``worker.result`` fault: corrupt, drop, or delay the reply.

    ``trace_context`` propagates the parent's trace id so worker-side
    spans stitch back under the dispatching span;
    ``collect_telemetry`` asks the child to capture its spans/metrics/
    events around the task (the supervisor sets it only on process
    venues, and only while tracing or event logging is on — the
    disabled path ships nothing and captures nothing).
    ``telemetry_directive`` is the child-side half of a parent-decided
    ``observability.telemetry`` fault: mangle the snapshot, never the
    result.
    """

    task_id: str
    payload: Any
    reply_directive: Optional[FaultDirective] = None
    trace_context: Optional[Any] = None
    collect_telemetry: bool = False
    telemetry_directive: Optional[FaultDirective] = None


@dataclass(frozen=True)
class ResultMessage:
    """A completed task's reply.

    ``payload`` holds pickled bytes plus their digest; the ``raw``
    flag marks an in-process reply whose value is carried directly
    (unpicklable results stay usable on the inline transport).

    ``telemetry`` carries the worker's serialized telemetry snapshot
    (JSON bytes) with its own digest, checksummed *separately* from
    the result: a mangled snapshot must never poison a good result,
    and a good snapshot must never launder a corrupt result.
    """

    task_id: str
    worker_id: str
    payload: Any
    digest: str = ""
    raw: bool = False
    telemetry: Optional[bytes] = field(default=None, repr=False)
    telemetry_digest: str = ""

    def value(self) -> Any:
        """Verify and deserialise; raises CorruptReplyError on any
        mismatch or undecodable payload."""
        if self.raw:
            return self.payload
        if checksum(self.payload) != self.digest:
            raise CorruptReplyError(
                self.worker_id, self.task_id, "checksum mismatch"
            )
        try:
            return pickle.loads(self.payload)
        except Exception as exc:  # noqa: BLE001 — any decode failure
            raise CorruptReplyError(
                self.worker_id, self.task_id, f"undecodable payload: {exc}"
            ) from exc

    def telemetry_snapshot(self) -> Optional[dict]:
        """Verify and decode the telemetry snapshot, or ``None`` when
        the reply carries none.  Raises ``ValueError`` on a digest
        mismatch or undecodable bytes — the caller degrades to
        supervisor-side-only observability, never a failed task."""
        if self.telemetry is None:
            return None
        if checksum(self.telemetry) != self.telemetry_digest:
            raise ValueError(
                f"telemetry snapshot for task {self.task_id!r} from "
                f"{self.worker_id!r}: checksum mismatch"
            )
        from ...observability.distributed import decode_snapshot

        return decode_snapshot(self.telemetry)


@dataclass(frozen=True)
class ShutdownMessage:
    pass


@dataclass(frozen=True)
class ErrorEnvelope:
    """A worker-side exception, made safe to transport.

    ``provenance`` carries ``(class, site, target, fault_id, message)``
    for injected faults; ``pickled`` is the exception itself when its
    class pickles cleanly (tried second, trusted only if it loads).
    """

    task_id: str
    worker_id: str
    type_name: str
    message: str
    traceback_text: str
    provenance: Optional[Tuple[str, str, str, str, str]] = None
    pickled: Optional[bytes] = field(default=None, repr=False)

    @classmethod
    def capture(
        cls, task_id: str, worker_id: str, exc: BaseException
    ) -> "ErrorEnvelope":
        provenance = None
        if isinstance(exc, FaultInjectionError):
            kind = (
                "crash" if isinstance(exc, WorkerCrashError) else "raise"
            )
            provenance = (
                kind, exc.site, exc.target, exc.fault_id, exc.fault_message
            )
        pickled = None
        try:
            pickled = pickle.dumps(exc)
        except Exception:  # noqa: BLE001 — strings below cover us
            pickled = None
        return cls(
            task_id=task_id,
            worker_id=worker_id,
            type_name=type(exc).__name__,
            message=str(exc),
            traceback_text="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            provenance=provenance,
            pickled=pickled,
        )

    def rebuild(self) -> BaseException:
        """Reconstruct the most faithful exception available.

        Preference order: the pickled original (full fidelity), a
        provenance-preserving :class:`FaultInjectionError` rebuild,
        then :class:`RemoteTaskError` carrying the raw strings.  The
        worker traceback text is attached as ``remote_traceback``
        either way.
        """
        error: Optional[BaseException] = None
        if self.pickled is not None:
            try:
                candidate = pickle.loads(self.pickled)
                if isinstance(candidate, BaseException):
                    error = candidate
            except Exception:  # noqa: BLE001 — fall through to strings
                error = None
        if error is None and self.provenance is not None:
            kind, site, target, fault_id, message = self.provenance
            klass = WorkerCrashError if kind == "crash" else (
                FaultInjectionError
            )
            error = klass(site, target, fault_id, message)
        if error is None:
            error = RemoteTaskError(
                self.type_name, self.message, self.traceback_text
            )
        try:
            error.remote_traceback = self.traceback_text
        except Exception:  # noqa: BLE001 — slots-only exceptions
            pass
        return error
