"""repro.distributed.workers — a crash-tolerant worker protocol.

The cross-process execution layer under D-M2TD.  Three pieces:

:mod:`~repro.distributed.workers.protocol`
    The wire format: hello/heartbeat/task/result/shutdown messages,
    checksummed replies, and the pickle-safe :class:`ErrorEnvelope`
    that preserves exception type, traceback text, and fault
    provenance across the process boundary.
:mod:`~repro.distributed.workers.transport`
    Where workers live: :class:`InlineTransport` (in-process, for unit
    tests and degradation) and :class:`ProcessTransport`
    (``multiprocessing`` pipes; a SIGKILLed child surfaces as pipe
    EOF).  Socket transports are a follow-up seam behind the same
    :class:`Transport` ABC.
:mod:`~repro.distributed.workers.supervisor`
    :class:`WorkerSupervisor` — heartbeats with deadline detection,
    task leases that requeue on silence, exponential-backoff respawn
    under a crash budget, poison-task quarantine, and metered
    degradation to inline execution when the budget is exhausted.
"""

from .protocol import (
    ErrorEnvelope,
    HeartbeatMessage,
    HelloMessage,
    ResultMessage,
    ShutdownMessage,
    TaskMessage,
    WorkerConfig,
    checksum,
    flip_bytes,
)
from .supervisor import TaskOutcome, WorkerSupervisor
from .transport import (
    InlineTransport,
    ProcessTransport,
    Transport,
    WorkerHandle,
    execute_task,
    make_transport,
)

__all__ = [
    "ErrorEnvelope",
    "HeartbeatMessage",
    "HelloMessage",
    "InlineTransport",
    "ProcessTransport",
    "ResultMessage",
    "ShutdownMessage",
    "TaskMessage",
    "TaskOutcome",
    "Transport",
    "WorkerConfig",
    "WorkerHandle",
    "WorkerSupervisor",
    "checksum",
    "execute_task",
    "flip_bytes",
    "make_transport",
]
