"""The worker supervisor: leases, heartbeats, respawns, degradation.

:class:`WorkerSupervisor` owns the robustness contract of cross-process
execution.  Tasks are *leased*, never fire-and-forgotten: a task whose
lease expires is requeued and its (presumed hung) worker replaced.
Workers beat a heartbeat; silence past the deadline is a death, and a
SIGKILLed process is caught even faster through pipe EOF.  Every
replacement consumes a *crash budget* — backed off exponentially with
decorrelation jitter so simultaneous respawns don't retry in lockstep
— and when the budget is gone the supervisor degrades to inline
in-process execution: metered (``worker.inline_fallbacks``), logged,
and never a hang or a silent wrong answer.

Failure taxonomy the supervisor distinguishes:

* **Worker failures** (process death, heartbeat silence, lease expiry,
  corrupt reply) are *supervisor-owned*: requeue the task, replace the
  worker, meter the recovery.  The caller never sees them unless the
  crash budget dies trying.
* **Task failures** (the task's own exception, arriving as an error
  envelope) are *caller-owned*: surfaced per-task in the returned
  :class:`TaskOutcome` so the MapReduce engine's existing attempt
  budget — not the supervisor — decides on retries.
* **Poison tasks** (``poison_lease_expiries`` expired leases on the
  same task) are quarantined off the worker pool and run once inline,
  which separates "this task kills workers" from "this task is simply
  wrong" — the inline run's result or exception is the verdict.

Results are keyed by submission index, so output order (and therefore
byte-identical D-M2TD) is independent of worker count and scheduling.
"""

from __future__ import annotations

import logging
import pickle
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...exceptions import (
    CorruptReplyError,
    CrashBudgetError,
    PoisonTaskError,
    WorkerProtocolError,
    WorkerSpawnError,
)
from ...faults.directive import directive_for
from ...faults.injector import get_injector
from ...observability import (
    Span,
    emit,
    get_event_log,
    get_metrics,
    get_tracer,
    span as _span,
)
from ...observability.distributed import current_trace_context, merge_snapshot
from ...runtime.retry import RetryPolicy
from .protocol import (
    ErrorEnvelope,
    HeartbeatMessage,
    HelloMessage,
    ResultMessage,
    ShutdownMessage,
    TaskMessage,
    WorkerConfig,
)
from .transport import Transport, WorkerHandle, make_transport

__all__ = ["TaskOutcome", "WorkerSupervisor"]

logger = logging.getLogger("repro.workers")

#: Default backoff for worker respawns: exponential with 50%
#: decorrelation jitter keyed by worker id, capped at 1s per sleep.
DEFAULT_RESPAWN_POLICY = RetryPolicy(
    max_attempts=1,  # unused here; the crash budget bounds respawns
    backoff_seconds=0.05,
    backoff_factor=2.0,
    max_backoff_seconds=1.0,
    jitter=0.5,
)


@dataclass
class TaskOutcome:
    """What happened to one submitted task."""

    task_id: str
    value: Any = None
    error: Optional[BaseException] = None
    worker_id: str = ""
    #: Supervisor-level requeues this task survived (lease expiries,
    #: worker deaths, corrupt replies) before completing.
    requeues: int = 0
    #: The task ran in the supervisor process (degraded mode,
    #: quarantine, or an unpicklable payload).
    ran_inline: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Entry:
    index: int
    task_id: str
    fn: Callable[[], Any]
    state: str = "pending"  # pending | running | done | failed
    value: Any = None
    error: Optional[BaseException] = None
    worker_id: str = ""
    requeues: int = 0
    expiries: int = 0
    ran_inline: bool = False
    heal_targets: Set[Tuple[str, str]] = field(default_factory=set)
    #: Dispatch bookkeeping for trace stitching: when the task last
    #: went out (perf_counter for the dispatch span, wall clock for
    #: clock-skew normalization of the child snapshot) and the decoded
    #: telemetry awaiting the post-batch merge.
    dispatched_perf: float = 0.0
    dispatched_unix: float = 0.0
    completed_perf: float = 0.0
    expects_telemetry: bool = False
    telemetry: Optional[dict] = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def outcome(self) -> TaskOutcome:
        return TaskOutcome(
            task_id=self.task_id, value=self.value, error=self.error,
            worker_id=self.worker_id, requeues=self.requeues,
            ran_inline=self.ran_inline,
        )


@dataclass
class _Slot:
    slot_id: int
    worker_id: str
    handle: Optional[WorkerHandle] = None
    state: str = "empty"  # empty | live | waiting | retired
    entry: Optional[_Entry] = None
    lease_deadline: float = 0.0
    last_beat: float = 0.0
    counted_misses: int = 0
    spawn_attempts: int = 0
    respawn_at: float = 0.0
    #: A fault/death happened; the next successful Hello heals it.
    pending_heal: bool = False


class WorkerSupervisor:
    """Supervise a fixed pool of workers over a pluggable transport.

    Parameters
    ----------
    transport:
        ``"inline"``, ``"process"``, or a :class:`Transport` instance.
    n_workers:
        Pool width.  Worker ids ``worker-0 .. worker-{n-1}`` are stable
        across respawns, so fault-plan targets keep matching the
        replacement.
    heartbeat_seconds / heartbeat_misses:
        Beat cadence and how many whole missed intervals are tolerated
        before a silent worker is declared dead.
    lease_seconds:
        Wall-clock budget per task assignment; an expired lease
        requeues the task and replaces its worker.  Defaults to
        ``max(20 * heartbeat_seconds, 5.0)``.
    poison_lease_expiries:
        Lease expiries on the *same* task before it is quarantined off
        the pool and resolved inline.
    crash_budget:
        Total worker replacements (respawns and failed spawn retries)
        the supervisor will pay for before degrading.
    respawn_policy:
        :class:`RetryPolicy` shaping respawn backoff; only its delay
        schedule is used, keyed per worker id for decorrelation.
    degrade_to_inline:
        On budget exhaustion, run the remaining work inline
        (metered + logged) instead of raising
        :class:`~repro.exceptions.CrashBudgetError`.
    """

    def __init__(
        self,
        transport="process",
        n_workers: int = 2,
        heartbeat_seconds: float = 0.25,
        heartbeat_misses: int = 4,
        lease_seconds: Optional[float] = None,
        poison_lease_expiries: int = 3,
        crash_budget: int = 3,
        respawn_policy: Optional[RetryPolicy] = None,
        degrade_to_inline: bool = True,
        start_method: Optional[str] = None,
    ):
        n_workers = int(n_workers)
        if n_workers < 1:
            raise WorkerProtocolError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if heartbeat_seconds <= 0:
            raise WorkerProtocolError(
                f"heartbeat_seconds must be > 0, got {heartbeat_seconds}"
            )
        if lease_seconds is not None and lease_seconds <= 0:
            raise WorkerProtocolError(
                f"lease_seconds must be > 0, got {lease_seconds}"
            )
        if poison_lease_expiries < 1:
            raise WorkerProtocolError(
                "poison_lease_expiries must be >= 1, got "
                f"{poison_lease_expiries}"
            )
        if crash_budget < 0:
            raise WorkerProtocolError(
                f"crash_budget must be >= 0, got {crash_budget}"
            )
        self.transport: Transport = make_transport(transport, start_method)
        self.n_workers = n_workers
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.heartbeat_misses = int(heartbeat_misses)
        self.lease_seconds = (
            float(lease_seconds)
            if lease_seconds is not None
            else max(20.0 * self.heartbeat_seconds, 5.0)
        )
        self.poison_lease_expiries = int(poison_lease_expiries)
        self.crash_budget = int(crash_budget)
        self.respawn_policy = respawn_policy or DEFAULT_RESPAWN_POLICY
        self.degrade_to_inline = bool(degrade_to_inline)
        self._slots = [
            _Slot(slot_id=i, worker_id=f"worker-{i}")
            for i in range(n_workers)
        ]
        self._respawns = 0
        self._degraded = False
        self._closed = False
        self._lock = threading.RLock()
        self._pending: deque = deque()

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the crash budget is exhausted and execution fell
        back to inline."""
        return self._degraded

    @property
    def respawns(self) -> int:
        return self._respawns

    def run_tasks(
        self, tasks: Sequence[Tuple[str, Callable[[], Any]]]
    ) -> List[TaskOutcome]:
        """Run ``(task_id, zero-arg callable)`` pairs; outcomes come
        back in submission order regardless of completion order.

        Worker-level failures are absorbed here (within the crash
        budget); task-level exceptions come back per-outcome for the
        caller's own retry policy.  Thread-safe but serialised — one
        batch owns the pool at a time.
        """
        entries = [
            _Entry(index=i, task_id=str(task_id), fn=fn)
            for i, (task_id, fn) in enumerate(tasks)
        ]
        if not entries:
            return []
        with self._lock:
            if self._closed:
                raise WorkerProtocolError(
                    "supervisor is shut down; no tasks accepted"
                )
            with _span(
                "supervisor-run", "worker",
                transport=self.transport.kind, tasks=len(entries),
            ) as sp:
                self._run_entries(entries)
                self._merge_telemetry(entries, sp)
                sp.set(
                    respawns=self._respawns,
                    degraded=self._degraded,
                )
        return [entry.outcome() for entry in entries]

    def shutdown(self) -> None:
        """Stop every worker and refuse further batches."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for slot in self._slots:
                if slot.handle is not None:
                    try:
                        slot.handle.send(ShutdownMessage())
                    except WorkerProtocolError:
                        pass
                    slot.handle.kill()
                    slot.handle = None
                slot.state = "retired"
            self.transport.shutdown()

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def _run_entries(self, entries: List[_Entry]) -> None:
        if self._degraded:
            for entry in entries:
                self._run_inline(entry, counter="worker.inline_fallbacks")
            return
        by_task: Dict[str, _Entry] = {e.task_id: e for e in entries}
        self._pending = deque(entries)
        self._ensure_started()
        while not all(e.finished for e in entries):
            if self._degraded:
                break
            now = time.monotonic()
            self._respawn_due(now)
            self._assign(now)
            if self._degraded:
                break
            live = [s for s in self._slots if s.state == "live"]
            if not live:
                # Nothing running and nothing live: either workers are
                # in respawn backoff (sleep until one is due) or the
                # pool is gone for good.
                waiting = [
                    s for s in self._slots if s.state == "waiting"
                ]
                if not waiting:
                    self._enter_degraded("no workers left")
                    break
                time.sleep(
                    max(
                        0.0,
                        min(s.respawn_at for s in waiting)
                        - time.monotonic(),
                    )
                )
                continue
            timeout = self._poll_timeout(now, live)
            ready = self.transport.wait(
                [s.handle for s in live if s.handle is not None], timeout
            )
            by_handle = {id(s.handle): s for s in live}
            now = time.monotonic()
            for handle in ready:
                slot = by_handle.get(id(handle))
                if slot is None or slot.handle is None:
                    continue
                for message in handle.receive_all():
                    self._on_message(slot, by_task, message, now)
            self._check_deadlines(time.monotonic())
        if self._degraded:
            for entry in entries:
                if not entry.finished:
                    entry.state = "pending"
                    self._run_inline(
                        entry, counter="worker.inline_fallbacks"
                    )
        if all(e.state == "done" for e in entries):
            # The batch completed despite any worker-keyed faults along
            # the way — that *is* the recovery, even when the pool
            # finished without waiting for a wounded slot to respawn
            # (or before an armed crash ever fired).  note_recovery is
            # a no-op unless a fault is actually pending for the key.
            injector = get_injector()
            if injector.enabled:
                for slot in self._slots:
                    injector.note_recovery("worker.spawn", slot.worker_id)
                    injector.note_recovery(
                        "worker.heartbeat", slot.worker_id
                    )
                    slot.pending_heal = False

    def _merge_telemetry(self, entries: List[_Entry], sp: Any) -> None:
        """Stitch shipped worker telemetry into the parent's trace,
        metrics, and event log, still inside the open batch span.

        Every externally dispatched task gets a ``dispatch:<task_id>``
        span under the batch span — even when its snapshot was dropped
        or corrupted, which is exactly the degraded
        "supervisor-side-only" view.  Child spans attach beneath the
        dispatch span, clock-skew-normalized onto this tracer's
        timeline; counters/histograms fold into the live registry with
        ``worker.<id>`` attribution; buffered child events replay
        tagged with their origin.
        """
        tracer = get_tracer()
        registry = get_metrics()
        events = get_event_log()
        parent_open = isinstance(sp, Span)
        for entry in entries:
            dispatch = None
            if (
                tracer.enabled
                and parent_open
                and entry.dispatched_perf
                and not entry.ran_inline
            ):
                dispatch = Span(
                    tracer,
                    f"dispatch:{entry.task_id}",
                    "worker",
                    {"worker": entry.worker_id, "requeues": entry.requeues},
                )
                dispatch.started = max(
                    0.0, entry.dispatched_perf - tracer.epoch
                )
                ended = entry.completed_perf or time.perf_counter()
                dispatch.wall_seconds = max(
                    0.0, ended - entry.dispatched_perf
                )
                dispatch.thread = threading.current_thread().name
                if entry.error is not None:
                    dispatch.error = type(entry.error).__name__
                sp.children.append(dispatch)
            if entry.telemetry:
                worker_id = entry.worker_id
                if worker_id.startswith("worker-"):
                    worker_id = worker_id[len("worker-"):]
                merge_snapshot(
                    entry.telemetry,
                    parent_span=dispatch,
                    tracer=tracer,
                    registry=registry,
                    events=events,
                    dispatched_unix=entry.dispatched_unix,
                    worker_id=worker_id,
                )
                entry.telemetry = None

    def _poll_timeout(self, now: float, live: List[_Slot]) -> float:
        deadlines = []
        for slot in live:
            deadlines.append(
                slot.last_beat
                + (slot.counted_misses + 2) * self.heartbeat_seconds
            )
            if slot.entry is not None:
                deadlines.append(slot.lease_deadline)
        for slot in self._slots:
            if slot.state == "waiting":
                deadlines.append(slot.respawn_at)
        horizon = min(deadlines) - now if deadlines else (
            self.heartbeat_seconds
        )
        return max(0.0, min(horizon, self.heartbeat_seconds))

    # ------------------------------------------------------------------
    # spawning and death
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        for slot in self._slots:
            if slot.state == "empty":
                self._try_spawn(slot)
                if self._degraded:
                    return

    def _try_spawn(self, slot: _Slot) -> bool:
        slot.spawn_attempts += 1
        worker_id = slot.worker_id
        injector = get_injector()
        kill_after_spawn = False
        with _span("worker-spawn", "worker", worker=worker_id):
            try:
                directive = directive_for(
                    injector, "worker.spawn", worker_id
                )
                if directive is not None:
                    if directive.kind == "raise":
                        raise WorkerSpawnError(
                            worker_id,
                            directive.message or "injected spawn failure",
                        )
                    if directive.kind == "delay":
                        time.sleep(directive.delay_seconds)
                    elif directive.kind == "crash-worker":
                        kill_after_spawn = True
                heartbeat_directive = directive_for(
                    injector, "worker.heartbeat", worker_id
                )
                config = WorkerConfig(
                    worker_id=worker_id,
                    heartbeat_seconds=self.heartbeat_seconds,
                    heartbeat_directive=heartbeat_directive,
                )
                handle = self.transport.spawn(config)
            except WorkerSpawnError as exc:
                logger.warning("spawn of %s failed: %s", worker_id, exc)
                self._after_worker_loss(slot, "spawn failed")
                return False
        now = time.monotonic()
        slot.handle = handle
        slot.state = "live"
        slot.last_beat = now
        slot.counted_misses = 0
        slot.entry = None
        emit(
            "worker.spawn",
            correlation_id=worker_id,
            pid=handle.pid,
            attempt=slot.spawn_attempts,
        )
        if kill_after_spawn:
            # A real kill -9 of the live worker: death is discovered
            # by the loop (pipe EOF / liveness), recovery by respawn.
            handle.kill_hard()
        return True

    def _respawn_due(self, now: float) -> None:
        for slot in self._slots:
            if slot.state == "waiting" and now >= slot.respawn_at:
                self._try_spawn(slot)

    def _handle_death(self, slot: _Slot, reason: str) -> None:
        logger.warning(
            "worker %s lost (%s); requeueing its lease", slot.worker_id,
            reason,
        )
        emit(
            "worker.death",
            correlation_id=slot.worker_id,
            reason=reason,
            task=slot.entry.task_id if slot.entry is not None else "",
        )
        entry = slot.entry
        slot.entry = None
        if entry is not None and entry.state == "running":
            entry.state = "pending"
            entry.requeues += 1
            entry.heal_targets.add(("worker.result", entry.task_id))
            self._pending.append(entry)
        if slot.handle is not None:
            slot.handle.kill()
            slot.handle = None
        slot.pending_heal = True
        self._after_worker_loss(slot, reason)

    def _after_worker_loss(self, slot: _Slot, reason: str) -> None:
        """Pay for a replacement (or degrade) and schedule the respawn
        with decorrelated backoff."""
        self._respawns += 1
        get_metrics().counter("worker.respawns").inc()
        if self._respawns > self.crash_budget:
            slot.state = "retired"
            self._enter_degraded(
                f"crash budget exhausted after {reason!r}"
            )
            return
        delay = self.respawn_policy.delay(
            slot.spawn_attempts + 1, key=slot.worker_id
        )
        slot.state = "waiting"
        slot.respawn_at = time.monotonic() + delay

    def _enter_degraded(self, reason: str) -> None:
        if not self.degrade_to_inline:
            self.shutdown_workers_only()
            raise CrashBudgetError(self._respawns, self.crash_budget)
        if not self._degraded:
            self._degraded = True
            get_metrics().gauge("worker.degraded").set(1)
            emit("worker.degraded", reason=reason)
            logger.warning(
                "degrading to inline execution (%s); remaining tasks "
                "run in-process and are metered on "
                "worker.inline_fallbacks", reason,
            )
        self.shutdown_workers_only()

    def shutdown_workers_only(self) -> None:
        """Kill the pool but keep accepting (inline) work."""
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.kill()
                slot.handle = None
            if slot.state in ("live", "waiting"):
                slot.state = "retired"

    # ------------------------------------------------------------------
    # dispatch and messages
    # ------------------------------------------------------------------
    def _assign(self, now: float) -> None:
        for slot in self._slots:
            if slot.state != "live" or slot.entry is not None:
                continue
            entry = self._next_pending()
            if entry is None:
                return
            self._dispatch(slot, entry, now)
            if self._degraded:
                return

    def _next_pending(self) -> Optional[_Entry]:
        while self._pending:
            entry = self._pending.popleft()
            if entry.state == "pending":
                return entry
        return None

    def _dispatch(self, slot: _Slot, entry: _Entry, now: float) -> None:
        metrics = get_metrics()
        injector = get_injector()
        reply_directive = directive_for(
            injector, "worker.result", entry.task_id
        )
        payload: Any = entry.fn
        if self.transport.requires_pickle:
            try:
                payload = pickle.dumps(entry.fn)
            except Exception as exc:  # noqa: BLE001 — any pickling error
                logger.warning(
                    "task %s is not picklable (%s); running inline",
                    entry.task_id, exc,
                )
                metrics.counter("worker.unpicklable_tasks").inc()
                self._run_inline(entry)
                return
            metrics.counter("worker.bytes_sent").inc(len(payload))
        # Telemetry only crosses a process boundary — the inline venue
        # records straight into the live tracer/metrics/event log — and
        # only while something is on to receive it, so the disabled
        # path captures and ships nothing.
        collect_telemetry = self.transport.requires_pickle and (
            get_tracer().enabled or get_event_log().enabled
        )
        telemetry_directive = (
            directive_for(injector, "observability.telemetry", entry.task_id)
            if collect_telemetry
            else None
        )
        message = TaskMessage(
            task_id=entry.task_id,
            payload=payload,
            reply_directive=reply_directive,
            trace_context=current_trace_context(f"dispatch:{entry.task_id}"),
            collect_telemetry=collect_telemetry,
            telemetry_directive=telemetry_directive,
        )
        try:
            slot.handle.send(message)
        except WorkerProtocolError:
            slot.entry = entry
            entry.state = "running"
            self._handle_death(slot, "send failed")
            return
        slot.entry = entry
        slot.lease_deadline = now + self.lease_seconds
        entry.state = "running"
        entry.worker_id = slot.worker_id
        entry.expects_telemetry = collect_telemetry
        entry.dispatched_perf = time.perf_counter()
        entry.dispatched_unix = time.time()
        metrics.counter("worker.tasks_dispatched").inc()
        emit(
            "worker.dispatch",
            correlation_id=entry.task_id,
            worker=slot.worker_id,
            requeues=entry.requeues,
        )

    def _on_message(
        self, slot: _Slot, by_task: Dict[str, _Entry], message, now: float
    ) -> None:
        metrics = get_metrics()
        injector = get_injector()
        # Any message is proof of liveness — a worker busy enough to
        # reply is not dead, whatever its beat thread is doing.
        slot.last_beat = now
        slot.counted_misses = 0
        if isinstance(message, HelloMessage):
            if slot.pending_heal and injector.enabled:
                # The slot died (or failed to spawn) and is back: the
                # worker-keyed faults that caused it are healed.
                injector.note_recovery("worker.spawn", slot.worker_id)
                injector.note_recovery("worker.heartbeat", slot.worker_id)
            slot.pending_heal = False
            return
        if isinstance(message, HeartbeatMessage):
            return
        if isinstance(message, ResultMessage):
            entry = by_task.get(message.task_id)
            if entry is None or entry.finished:
                return  # stale duplicate; first completion already won
            try:
                value = message.value()
            except CorruptReplyError as exc:
                logger.warning("%s; requeueing and replacing", exc)
                metrics.counter("worker.corrupt_replies").inc()
                if slot.entry is entry:
                    self._handle_death(slot, "corrupt reply")
                else:  # pragma: no cover — defensive
                    entry.state = "pending"
                    entry.requeues += 1
                    self._pending.append(entry)
                entry.heal_targets.add(("worker.result", entry.task_id))
                return
            if isinstance(message.payload, (bytes, bytearray)):
                metrics.counter("worker.bytes_received").inc(
                    len(message.payload)
                )
            entry.value = value
            entry.state = "done"
            entry.worker_id = message.worker_id
            entry.completed_perf = time.perf_counter()
            if entry.expects_telemetry:
                # A mangled or missing snapshot costs visibility only:
                # the task result above is already accepted; we meter
                # the loss and fall back to supervisor-side-only spans.
                try:
                    entry.telemetry = message.telemetry_snapshot()
                except ValueError as exc:
                    entry.telemetry = None
                    reason = str(exc)
                else:
                    reason = (
                        "snapshot missing from reply"
                        if entry.telemetry is None
                        else ""
                    )
                if entry.telemetry is None:
                    metrics.counter("worker.telemetry_dropped").inc()
                    emit(
                        "worker.telemetry_dropped",
                        correlation_id=entry.task_id,
                        worker=message.worker_id,
                        reason=reason,
                    )
                    if injector.enabled:
                        injector.note_recovery(
                            "observability.telemetry", entry.task_id
                        )
            if slot.entry is entry:
                slot.entry = None
            if injector.enabled:
                injector.note_recovery("worker.result", entry.task_id)
                for site, target in entry.heal_targets:
                    injector.note_recovery(site, target)
            return
        if isinstance(message, ErrorEnvelope):
            entry = by_task.get(message.task_id)
            if entry is None or entry.finished:
                return
            entry.error = message.rebuild()
            entry.state = "failed"
            entry.worker_id = message.worker_id
            entry.completed_perf = time.perf_counter()
            if slot.entry is entry:
                slot.entry = None
            return

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------
    def _check_deadlines(self, now: float) -> None:
        metrics = get_metrics()
        for slot in list(self._slots):
            if slot.state != "live" or slot.handle is None:
                continue
            if not slot.handle.alive():
                self._handle_death(slot, "process died")
                continue
            silent = now - slot.last_beat
            whole_missed = max(0, int(silent / self.heartbeat_seconds) - 1)
            if whole_missed > slot.counted_misses:
                metrics.counter("worker.heartbeat_misses").inc(
                    whole_missed - slot.counted_misses
                )
                slot.counted_misses = whole_missed
            if slot.counted_misses > self.heartbeat_misses:
                self._handle_death(slot, "heartbeat silence")
                continue
            if slot.entry is not None and now >= slot.lease_deadline:
                entry = slot.entry
                metrics.counter("worker.lease_expiries").inc()
                entry.expiries += 1
                logger.warning(
                    "lease on task %s (worker %s) expired (%d/%d)",
                    entry.task_id, slot.worker_id, entry.expiries,
                    self.poison_lease_expiries,
                )
                if entry.expiries >= self.poison_lease_expiries:
                    # Quarantine: the task keeps outliving its lease no
                    # matter which worker holds it — take it off the
                    # pool entirely and settle it inline.
                    slot.entry = None
                    metrics.counter("worker.poisoned").inc()
                    entry.heal_targets.add(
                        ("worker.result", entry.task_id)
                    )
                    self._run_inline(entry, quarantined=True)
                    self._handle_death(slot, "lease expired (poison)")
                else:
                    self._handle_death(slot, "lease expired")

    # ------------------------------------------------------------------
    # inline execution (degradation, quarantine, unpicklable tasks)
    # ------------------------------------------------------------------
    def _run_inline(
        self,
        entry: _Entry,
        counter: str = "worker.inline_tasks",
        quarantined: bool = False,
    ) -> None:
        get_metrics().counter(counter).inc()
        injector = get_injector()
        entry.ran_inline = True
        entry.worker_id = "inline"
        try:
            entry.value = entry.fn()
        except PoisonTaskError:
            raise  # pragma: no cover — defensive
        except BaseException as exc:  # noqa: BLE001 — outcome carries it
            entry.error = exc
            entry.state = "failed"
            return
        entry.state = "done"
        if injector.enabled:
            injector.note_recovery("worker.result", entry.task_id)
            for site, target in entry.heal_targets:
                injector.note_recovery(site, target)
        if quarantined:
            logger.warning(
                "quarantined task %s completed inline after %d expired "
                "lease(s)", entry.task_id, entry.expiries,
            )
