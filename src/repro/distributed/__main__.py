"""``python -m repro.distributed`` — a self-contained traced D-M2TD run.

Runs the canonical small D-M2TD problem (the same ensemble the test
suite pins) through the MapReduce engine on a chosen worker venue, with
the full observability surface one flag away::

    M2TD_TRANSPORT=process python -m repro.distributed \
        --workers 4 --transport process --trace trace.json \
        --metrics metrics.json --events events.jsonl

This is what the CI observability job runs: a live 4-worker pool whose
merged Chrome trace (one pid lane per worker process) is uploaded as
an artifact and whose metrics dump feeds ``repro.observability slo
--check``.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from ..faults.cli import add_fault_args, inject_faults
from ..observability import add_observability_args, get_metrics, observe, span
from .cli import add_worker_args, apply_worker_args


def _canonical_problem():
    """The test suite's canonical D-M2TD problem (see tests/conftest)."""
    from ..sampling import PFPartition
    from ..tensor import SparseTensor

    partition = PFPartition((4, 4, 4, 4, 4), (4,), (0, 1), (2, 3))
    generator = np.random.default_rng(0)
    x1 = SparseTensor.from_dense(
        generator.standard_normal(partition.sub_shape(1)) + 2,
        keep_zeros=True,
    )
    x2 = SparseTensor.from_dense(
        generator.standard_normal(partition.sub_shape(2)) + 2,
        keep_zeros=True,
    )
    return x1, x2, partition, [2] * 5


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.distributed",
        description="Run the canonical D-M2TD problem on a supervised "
        "worker pool, with tracing/metrics/events one flag away.",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker pool width (default 4)",
    )
    parser.add_argument(
        "--variant", default="select", choices=("avg", "concat", "select"),
        help="M2TD factor-stitching variant (default select)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help="run the decomposition N times (default 1)",
    )
    parser.add_argument(
        "--summary", metavar="PATH",
        help="write a JSON run summary (core norm, counters) to PATH; "
        "'-' prints it to stdout",
    )
    add_worker_args(parser)
    add_observability_args(parser)
    add_fault_args(parser)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    apply_worker_args(args)
    from .dm2td import distributed_m2td
    from .mapreduce import LocalMapReduceEngine

    x1, x2, partition, ranks = _canonical_problem()
    core_norm = 0.0
    with observe(
        args.trace, args.profile, args.metrics,
        getattr(args, "events", None),
    ), inject_faults(args.fault_plan, args.fault_seed):
        for repeat in range(max(1, args.repeats)):
            engine = LocalMapReduceEngine(n_workers=args.workers)
            try:
                with span("dm2td-demo", "experiment", repeat=repeat):
                    run = distributed_m2td(
                        x1, x2, partition, ranks,
                        variant=args.variant, engine=engine,
                    )
            finally:
                engine.close()
            core_norm = float(np.linalg.norm(run.result.tucker.core))
    registry = get_metrics()
    summary = {
        "workers": args.workers,
        "variant": args.variant,
        "core_norm": core_norm,
        "counters": {
            name: registry.as_dict()[name]["value"]
            for name in registry.names()
            if registry.as_dict()[name]["kind"] == "counter"
        },
    }
    if args.summary == "-":
        print(json.dumps(summary, indent=2, sort_keys=True))
    elif args.summary:
        with open(args.summary, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(
        f"D-M2TD ok: {args.workers} worker(s), core norm {core_norm:.6f}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
