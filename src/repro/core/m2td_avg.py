"""M2TD-AVG (paper Algorithm 2, Figure 7).

Pivot-mode factor matrices from the two sub-decompositions are
combined by element-wise averaging.  Cheapest variant; the averaged
columns are no longer singular vectors, which caps its accuracy and
motivates CONCAT and SELECT.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..sampling.partition import PFPartition
from .m2td import M2TDResult, TensorLike, m2td_decompose


def m2td_avg(
    x1: TensorLike,
    x2: TensorLike,
    partition: PFPartition,
    ranks: Sequence[int],
    join_kind: str = "join",
    lazy: bool = False,
    zero_join_candidates: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    method: str = "exact",
    keep_probability: float = 0.5,
    seed=None,
) -> M2TDResult:
    """Decompose the stitched ensemble with the AVG pivot combiner."""
    return m2td_decompose(
        x1,
        x2,
        partition,
        ranks,
        variant="avg",
        join_kind=join_kind,
        lazy=lazy,
        zero_join_candidates=zero_join_candidates,
        method=method,
        keep_probability=keep_probability,
        seed=seed,
    )
