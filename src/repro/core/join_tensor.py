"""Core recovery against the join tensor.

The costliest step of every M2TD variant (the paper's Phase 3) is

    G = J x_1 U^(1)T x_2 U^(2)T ... x_N U^(N)T.

Two implementations are provided:

* :func:`materialized_core` — paper-faithful: build the (dense) join
  tensor and run the multilinear product;
* :func:`lazy_core` — our ablation optimisation: when both
  sub-ensembles are *complete* over their sub-spaces the join tensor
  has the closed form ``J(p, a, b) = (X1(p, a) + X2(p, b)) / 2``, and
  the projection distributes:

      G = 1/2 [ (X1 proj) ⊗ colsum(U_b...) + (X2 proj) ⊗ colsum(U_a...) ]

  so the core is recoverable without ever materialising ``J`` —
  ``O(|X1| + |X2|)`` data touched instead of ``O(|X1| * E2)``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..exceptions import StitchError
from ..sampling.partition import PFPartition
from ..tensor.ops import outer
from ..tensor.ttm import multi_ttm


def materialized_core(
    join_dense: np.ndarray, factors: Sequence[np.ndarray]
) -> np.ndarray:
    """Project a (dense) join tensor onto the factor subspaces."""
    return multi_ttm(join_dense, list(factors), transpose=True)


def lazy_core(
    x1_dense: np.ndarray,
    x2_dense: np.ndarray,
    factors: Sequence[np.ndarray],
    partition: PFPartition,
) -> np.ndarray:
    """Closed-form core recovery for complete sub-ensembles.

    Parameters
    ----------
    x1_dense / x2_dense:
        Dense sub-ensemble tensors in sub-space mode order (pivots
        first).  Every cell must be an actual observation — the closed
        form is exact only for full cross-product sub-ensembles.
    factors:
        Join-order factor matrices ``(U_pivot..., U_s1free..., U_s2free...)``.
    partition:
        The PF-partition (supplies the mode split).

    Returns
    -------
    numpy.ndarray
        The core tensor, identical (to floating point) to
        ``materialized_core(join, factors)``.
    """
    k = partition.k
    f1 = len(partition.s1_free)
    f2 = len(partition.s2_free)
    if len(factors) != k + f1 + f2:
        raise StitchError(
            f"need {k + f1 + f2} factor matrices, got {len(factors)}"
        )
    if x1_dense.shape != partition.sub_shape(1):
        raise StitchError(
            f"x1 shape {x1_dense.shape} != sub-space {partition.sub_shape(1)}"
        )
    if x2_dense.shape != partition.sub_shape(2):
        raise StitchError(
            f"x2 shape {x2_dense.shape} != sub-space {partition.sub_shape(2)}"
        )
    pivot_factors = list(factors[:k])
    s1_factors = list(factors[k : k + f1])
    s2_factors = list(factors[k + f1 :])
    # Project each sub-ensemble onto its own modes' subspaces.
    c1 = multi_ttm(x1_dense, pivot_factors + s1_factors, transpose=True)
    c2 = multi_ttm(x2_dense, pivot_factors + s2_factors, transpose=True)
    # Column sums of the *other* side's factors supply the missing modes.
    colsum1 = [u.sum(axis=0) for u in s1_factors]
    colsum2 = [u.sum(axis=0) for u in s2_factors]
    term1 = np.multiply.outer(
        c1, outer(colsum2) if len(colsum2) > 1 else colsum2[0]
    )
    term2_raw = np.multiply.outer(
        c2, outer(colsum1) if len(colsum1) > 1 else colsum1[0]
    )
    # term2's layout is (pivot..., s2..., s1...); move the s1 block in
    # front of the s2 block to match join order (pivot..., s1..., s2...).
    axes = (
        list(range(k))
        + list(range(k + f2, k + f2 + f1))
        + list(range(k, k + f2))
    )
    term2 = np.transpose(term2_raw, axes)
    return 0.5 * (term1 + term2)


def dense_join_from_subs(
    x1_dense: np.ndarray, x2_dense: np.ndarray, partition: PFPartition
) -> np.ndarray:
    """Materialize the complete cross join densely (join mode order).

    ``J(p, a, b) = (X1(p, a) + X2(p, b)) / 2`` — used by tests to
    validate :func:`lazy_core` and by the paper-faithful pipeline at
    full sub-ensemble density.
    """
    k = partition.k
    f1 = len(partition.s1_free)
    f2 = len(partition.s2_free)
    pivot_shape = x1_dense.shape[:k]
    a_shape = x1_dense.shape[k:]
    b_shape = x2_dense.shape[k:]
    if x2_dense.shape[:k] != pivot_shape:
        raise StitchError("sub-ensembles disagree on pivot mode sizes")
    x1_expanded = x1_dense.reshape(pivot_shape + a_shape + (1,) * f2)
    x2_expanded = x2_dense.reshape(pivot_shape + (1,) * f1 + b_shape)
    return 0.5 * (x1_expanded + x2_expanded)


def factor_memory_footprint(factors: Sequence[np.ndarray]) -> int:
    """Bytes held by the factor matrices (reporting helper)."""
    return int(sum(np.asarray(f).nbytes for f in factors))


def join_memory_footprint(partition: PFPartition) -> int:
    """Bytes a dense join tensor would occupy — the quantity that made
    direct decomposition infeasible on the paper's 18-server cluster."""
    cells = int(np.prod(partition.join_shape))
    return cells * np.dtype(np.float64).itemsize


def stack_factors(
    pivot: List[np.ndarray], s1: List[np.ndarray], s2: List[np.ndarray]
) -> List[np.ndarray]:
    """Concatenate per-block factor lists into join order."""
    return list(pivot) + list(s1) + list(s2)
