"""Accuracy evaluation and the conventional-scheme baseline pipeline.

The paper's accuracy measure (Section VII-D):

    accuracy(X~, Y) = 1 - ||X~ - Y||_F / ||Y||_F

where ``X~`` is the reconstruction after sampling + decomposition and
``Y`` is the full-simulation-space ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ShapeError
from ..sampling.base import SampleSet
from ..tensor.sparse import SparseTensor
from ..tensor.tucker import TuckerTensor, clip_ranks, hosvd


def accuracy(approx: np.ndarray, truth: np.ndarray) -> float:
    """The paper's accuracy: ``1 - relative Frobenius error``.

    Values close to 1 are near-perfect; a reconstruction of all-zeros
    scores ~0 — which is exactly where the conventional sparse
    baselines land in Table II.
    """
    approx = np.asarray(approx, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if approx.shape != truth.shape:
        raise ShapeError(
            f"approx shape {approx.shape} != truth shape {truth.shape}"
        )
    denom = np.linalg.norm(truth.ravel())
    if denom == 0:
        raise ShapeError("ground-truth tensor has zero norm")
    return 1.0 - np.linalg.norm((approx - truth).ravel()) / denom


@dataclass
class BaselineResult:
    """Outcome of a conventional sample-then-decompose run."""

    tucker: TuckerTensor
    sample: SampleSet
    decompose_seconds: float

    def accuracy(self, truth: np.ndarray) -> float:
        return accuracy(self.tucker.reconstruct(), truth)


def decompose_sample(
    truth: np.ndarray,
    sample: SampleSet,
    ranks: Sequence[int],
) -> BaselineResult:
    """Run a conventional baseline: read the sampled cells from the
    ground truth, decompose the resulting sparse ensemble tensor with
    HOSVD, and time the decomposition.

    Ranks are clipped per mode where the (small, scaled-down) tensor
    cannot supply them.
    """
    truth = np.asarray(truth, dtype=np.float64)
    if truth.shape != sample.shape:
        raise ShapeError(
            f"truth shape {truth.shape} != sample shape {sample.shape}"
        )
    values = truth[tuple(sample.coords.T)]
    ensemble = SparseTensor(sample.shape, sample.coords, values)
    effective_ranks = clip_ranks(sample.shape, ranks)
    started = time.perf_counter()
    tucker = hosvd(ensemble, effective_ranks)
    elapsed = time.perf_counter() - started
    return BaselineResult(
        tucker=tucker, sample=sample, decompose_seconds=elapsed
    )
