"""The paper's contribution: JE-stitching and Multi-Task Tensor
Decomposition (M2TD), plus the end-to-end study pipeline.
"""

from .evaluation import BaselineResult, accuracy, decompose_sample
from .join_tensor import (
    dense_join_from_subs,
    join_memory_footprint,
    lazy_core,
    materialized_core,
)
from .m2td import M2TDResult, m2td_decompose, map_ranks_to_join
from .m2td_avg import m2td_avg
from .m2td_concat import m2td_concat
from .m2td_select import m2td_select
from .pipeline import EnsembleStudy, StudyResult
from .row_select import average_factors, row_select, row_select_source
from .stitch import (
    dense_to_original_order,
    join_tensor,
    to_original_order,
    zero_join_tensor,
)

__all__ = [
    "BaselineResult",
    "accuracy",
    "decompose_sample",
    "dense_join_from_subs",
    "join_memory_footprint",
    "lazy_core",
    "materialized_core",
    "M2TDResult",
    "m2td_decompose",
    "map_ranks_to_join",
    "m2td_avg",
    "m2td_concat",
    "m2td_select",
    "EnsembleStudy",
    "StudyResult",
    "average_factors",
    "row_select",
    "row_select_source",
    "dense_to_original_order",
    "join_tensor",
    "to_original_order",
    "zero_join_tensor",
]
