"""M2TD-SELECT (paper Algorithms 4 and 5, Figures 9 and 10(b)).

The paper's best variant: for each pivot mode, the combined factor
matrix takes each *row* from whichever sub-system represents that
entity with more energy (larger row 2-norm), preventing the weaker
row from acting as noise.  Its margin over AVG/CONCAT grows with the
target rank (Table II).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..sampling.partition import PFPartition
from .m2td import M2TDResult, TensorLike, m2td_decompose


def m2td_select(
    x1: TensorLike,
    x2: TensorLike,
    partition: PFPartition,
    ranks: Sequence[int],
    join_kind: str = "join",
    lazy: bool = False,
    zero_join_candidates: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    method: str = "exact",
    keep_probability: float = 0.5,
    seed=None,
) -> M2TDResult:
    """Decompose the stitched ensemble with the SELECT pivot combiner."""
    return m2td_decompose(
        x1,
        x2,
        partition,
        ranks,
        variant="select",
        join_kind=join_kind,
        lazy=lazy,
        zero_join_candidates=zero_join_candidates,
        method=method,
        keep_probability=keep_probability,
        seed=seed,
    )
