"""End-to-end ensemble studies: the library's primary high-level API.

An :class:`EnsembleStudy` owns one (system, resolution) ground truth
and exposes the two competing workflows of the paper:

* :meth:`EnsembleStudy.run_conventional` — sample the full space with
  a conventional scheme (Random/Grid/Slice) and HOSVD the sparse
  ensemble (Section IV);
* :meth:`EnsembleStudy.run_m2td` — PF-partition the space, sample two
  dense sub-ensembles, JE-stitch and decompose with an M2TD variant
  (Sections V-VI).

Both return a :class:`StudyResult` carrying the paper's reporting
quantities (accuracy, decomposition time, budget consumed).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SamplingError
from ..observability import span as _span
from ..runtime import Runtime
from ..sampling.base import Sampler
from ..sampling.budget import PartitionBudget, budget_for_fractions
from ..sampling.partition import PFPartition
from ..sampling.sub_ensemble import select_sub_ensembles
from ..simulation.ensemble import SimulationMeter, full_space_tensor
from ..simulation.observation import Observation, make_observation
from ..simulation.parameter_space import ParameterSpace
from ..simulation.systems import DynamicalSystem
from ..tensor.random import SeedLike, make_rng
from ..tensor.sparse import SparseTensor
from ..tensor.tucker import TuckerTensor
from .evaluation import decompose_sample
from .m2td import M2TDResult, m2td_decompose

logger = logging.getLogger(__name__)


@dataclass
class StudyResult:
    """One scheme's outcome on one study configuration."""

    scheme: str
    accuracy: float
    decompose_seconds: float
    cells: int
    runs: int
    density: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    join_nnz: int = 0
    m2td: Optional[M2TDResult] = None
    #: The fitted decomposition (conventional schemes); M2TD runs carry
    #: theirs inside ``m2td.tucker`` (join mode order).
    tucker: Optional["TuckerTensor"] = None

    def row(self) -> Dict[str, object]:
        """Flat dict for table reporting."""
        return {
            "scheme": self.scheme,
            "accuracy": self.accuracy,
            "seconds": self.decompose_seconds,
            "cells": self.cells,
            "runs": self.runs,
            "density": self.density,
        }


def _count_runs(coords: np.ndarray, time_mode: int) -> int:
    if coords.shape[0] == 0:
        return 0
    param_modes = [m for m in range(coords.shape[1]) if m != time_mode]
    return int(np.unique(coords[:, param_modes], axis=0).shape[0])


@dataclass
class EnsembleStudy:
    """Ground truth plus helpers for running competing schemes on it."""

    space: ParameterSpace
    observation: Observation
    truth: np.ndarray

    @classmethod
    def create(
        cls,
        system: DynamicalSystem,
        resolution: int,
        time_resolution: Optional[int] = None,
        true_params: Optional[Dict[str, float]] = None,
        chunk_size: int = 4096,
        runtime: Optional[Runtime] = None,
        meter: Optional[SimulationMeter] = None,
    ) -> "EnsembleStudy":
        """Build the study: discretize, observe, simulate the full space.

        This is the expensive step (``resolution ** n_params``
        batched simulation runs) and is shared by every scheme
        evaluated on the study.  With a ``runtime``, construction runs
        as a content-addressed graph task: a repeated study over the
        same (system, resolution, time_resolution, true_params) reuses
        the cached tensor — and with the runtime's ``cache_dir`` set,
        reuse survives across processes — so the ``meter`` is charged
        zero runs on the second build.
        """
        space = ParameterSpace(
            system, resolution, time_resolution=time_resolution
        )
        observation = make_observation(space, true_params=true_params)
        logger.info(
            "building ground truth for %s: %d simulation runs over %s",
            system.name,
            space.n_simulations_full,
            space.shape,
        )

        def build() -> np.ndarray:
            # Only reached on a cache miss (or without a runtime), so
            # the meter sees exactly the integrator work performed.
            return full_space_tensor(
                space, observation, chunk_size=chunk_size, meter=meter
            )

        if runtime is None:
            truth = build()
        else:
            truth = runtime.call(
                f"ground-truth:{system.name}:r{resolution}",
                build,
                cache_scope="ground-truth",
                cache_key=cls._truth_cache_key(space, true_params),
                # closure over space/observation: thread or inline only
                affinity="thread" if runtime.workers > 1 else "inline",
            )
        return cls(space=space, observation=observation, truth=truth)

    @staticmethod
    def _truth_cache_key(
        space: ParameterSpace, true_params: Optional[Dict[str, float]]
    ) -> Tuple:
        """Content key for the ground-truth tensor.

        ``chunk_size`` is deliberately excluded: chunking changes the
        batching, not the tensor.  Parameter ranges are included so
        two systems sharing a name but differing in grids never
        collide.
        """
        system = space.system
        param_defs = tuple(
            (p.name, float(p.low), float(p.high), float(p.default))
            for p in system.parameters
        )
        return (
            system.name,
            tuple(space.shape),
            int(space.time_resolution),
            float(system.t_end),
            int(system.n_steps),
            param_defs,
            tuple(sorted((true_params or {}).items())),
        )

    # ------------------------------------------------------------------
    # conventional schemes
    # ------------------------------------------------------------------
    def run_conventional(
        self,
        sampler: Sampler,
        budget_cells: int,
        ranks: Sequence[int],
    ) -> StudyResult:
        """Sample-then-decompose with a Section IV baseline scheme."""
        with _span(
            "conventional-sample", "sample",
            sampler=sampler.name, budget_cells=budget_cells,
        ):
            sample = sampler.sample(self.space.shape, budget_cells)
        baseline = decompose_sample(self.truth, sample, ranks)
        return StudyResult(
            scheme=sampler.name,
            accuracy=baseline.accuracy(self.truth),
            decompose_seconds=baseline.decompose_seconds,
            cells=sample.n_cells,
            runs=sample.n_runs(self.space.time_mode),
            density=sample.density,
            tucker=baseline.tucker,
        )

    # ------------------------------------------------------------------
    # partition-stitch + M2TD
    # ------------------------------------------------------------------
    def default_partition(self, pivot: str = "t", **kwargs) -> PFPartition:
        """The study's PF-partition for a named pivot mode."""
        return PFPartition.for_space(self.space, pivot=pivot, **kwargs)

    def sub_tensor_from_coords(
        self, partition: PFPartition, which: int, sub_coords: np.ndarray
    ) -> SparseTensor:
        """Sub-ensemble tensor with values read from the ground truth."""
        full_coords = partition.embed_coords(which, sub_coords)
        values = self.truth[tuple(full_coords.T)]
        return SparseTensor(partition.sub_shape(which), sub_coords, values)

    def sample_sub_ensembles(
        self,
        partition: PFPartition,
        budget: PartitionBudget,
        sub_sampling: str = "cross",
        seed: SeedLike = None,
    ) -> Tuple[SparseTensor, SparseTensor, int, int]:
        """Materialize both sub-ensemble tensors.

        ``sub_sampling="cross"`` is the structured protocol of Section
        V-B (shared pivot configs x free configs); ``"random"`` draws
        the same number of cells uniformly within each sub-space — the
        low-budget regime of Table V where zero-join earns its keep.

        Returns ``(x1, x2, cells, runs)``.
        """
        if sub_sampling == "cross":
            selection = select_sub_ensembles(partition, budget, seed=seed)
            coords1 = selection.sub_coords(1)
            coords2 = selection.sub_coords(2)
        elif sub_sampling == "random":
            rng = make_rng(seed)
            coords1 = self._random_sub_coords(
                partition, 1, budget.n_pivot * budget.n_free1, rng
            )
            coords2 = self._random_sub_coords(
                partition, 2, budget.n_pivot * budget.n_free2, rng
            )
        else:
            raise SamplingError(
                f"sub_sampling must be 'cross' or 'random', got {sub_sampling!r}"
            )
        x1 = self.sub_tensor_from_coords(partition, 1, coords1)
        x2 = self.sub_tensor_from_coords(partition, 2, coords2)
        full = np.vstack(
            [
                partition.embed_coords(1, coords1),
                partition.embed_coords(2, coords2),
            ]
        )
        cells = coords1.shape[0] + coords2.shape[0]
        runs = _count_runs(full, self.space.time_mode)
        return x1, x2, cells, runs

    @staticmethod
    def _random_sub_coords(
        partition: PFPartition,
        which: int,
        n_cells: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        shape = partition.sub_shape(which)
        size = int(np.prod(shape))
        n_cells = min(n_cells, size)
        flat = rng.choice(size, size=n_cells, replace=False)
        return np.stack(np.unravel_index(flat, shape), axis=1)

    def run_m2td(
        self,
        ranks: Sequence[int],
        variant: str = "select",
        pivot: str = "t",
        pivot_fraction: float = 1.0,
        free_fraction: float = 1.0,
        join_kind: str = "join",
        lazy: bool = False,
        sub_sampling: str = "cross",
        partition: Optional[PFPartition] = None,
        seed: SeedLike = None,
        method: str = "exact",
        keep_probability: float = 0.5,
    ) -> StudyResult:
        """Full partition-stitch + M2TD workflow.

        The effective simulation budget is
        ``2 * P * E = 2 * pivot_fraction * free_fraction`` of the two
        sub-spaces; pass the result's ``cells`` to a conventional
        scheme for a budget-matched comparison.

        ``method``/``keep_probability`` select the decomposition
        kernel (exact, MACH-sketched, or Gram); the sampling ``seed``
        doubles as the sketch seed so a sketched run is reproducible
        from the same configuration.
        """
        if partition is None:
            partition = self.default_partition(pivot=pivot)
        budget = budget_for_fractions(
            partition, pivot_fraction=pivot_fraction, free_fraction=free_fraction
        )
        with _span(
            "sample-sub-ensembles", "sample",
            pivot=pivot, sub_sampling=sub_sampling,
        ) as sample_span:
            x1, x2, cells, runs = self.sample_sub_ensembles(
                partition, budget, sub_sampling=sub_sampling, seed=seed
            )
            sample_span.set(cells=cells, runs=runs)
        started = time.perf_counter()
        result = m2td_decompose(
            x1,
            x2,
            partition,
            ranks,
            variant=variant,
            join_kind=join_kind,
            lazy=lazy,
            method=method,
            keep_probability=keep_probability,
            seed=seed,
        )
        elapsed = time.perf_counter() - started
        logger.debug(
            "M2TD-%s: %d cells, join nnz %d, %.3fs",
            variant.upper(),
            cells,
            result.join_nnz,
            elapsed,
        )
        return StudyResult(
            scheme=f"M2TD-{variant.upper()}",
            accuracy=result.accuracy(self.truth),
            decompose_seconds=elapsed,
            cells=cells,
            runs=runs,
            density=cells / self.truth.size,
            phase_seconds=dict(result.phase_seconds),
            join_nnz=result.join_nnz,
            m2td=result,
        )

    def matched_budget(
        self,
        pivot: str = "t",
        pivot_fraction: float = 1.0,
        free_fraction: float = 1.0,
        partition: Optional[PFPartition] = None,
    ) -> int:
        """Cell budget the M2TD configuration consumes — what the
        conventional baselines receive for a fair comparison."""
        if partition is None:
            partition = self.default_partition(pivot=pivot)
        budget = budget_for_fractions(
            partition, pivot_fraction=pivot_fraction, free_fraction=free_fraction
        )
        return budget.cells
