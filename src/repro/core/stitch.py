"""JE-stitching: join and zero-join of PF-partitioned sub-ensembles
(paper Section V-C).

Both stitches combine two sub-ensemble tensors ``X1`` and ``X2``
(given in *sub-space* coordinates, pivot modes first) into the join
tensor ``J`` whose modes are ``pivot + S1-free + S2-free``:

* **join** pairs every observed ``X1(p, a)`` with every observed
  ``X2(p, b)`` sharing the pivot configuration ``p`` and stores their
  average at ``J(p, a, b)``;
* **zero-join** additionally pairs a one-sided observation with every
  *candidate* configuration of the other side, treating the missing
  value as 0 — boosting effective density when per-pivot observations
  are partial (Section V-C2).  Candidate sets default to the distinct
  free configurations observed anywhere in the other sub-ensemble.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import StitchError
from ..observability import get_metrics, span as _span
from ..sampling.partition import PFPartition
from ..tensor.sparse import SparseTensor


def _flatten(coords: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Row-wise flat encoding of multi-indices (C order)."""
    if coords.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    return np.ravel_multi_index(tuple(coords.T), shape)


def _unflatten(flat: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    return np.stack(np.unravel_index(flat, shape), axis=1)


def _split_sub_coords(
    tensor: SparseTensor, partition: PFPartition, which: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a sub-ensemble's coords into (pivot flat, free flat)."""
    expected = partition.sub_shape(which)
    if tensor.shape != expected:
        raise StitchError(
            f"sub-ensemble {which} has shape {tensor.shape}, partition "
            f"expects {expected}"
        )
    k = partition.k
    pivot_flat = _flatten(tensor.coords[:, :k], partition.pivot_shape)
    free_flat = _flatten(tensor.coords[:, k:], partition.free_shape(which))
    return pivot_flat, free_flat


def _group_by_pivot(
    pivot_flat: np.ndarray, free_flat: np.ndarray, values: np.ndarray
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """``{pivot: (free indices, values)}`` with free indices sorted."""
    groups: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    order = np.argsort(pivot_flat, kind="stable")
    pivot_sorted = pivot_flat[order]
    free_sorted = free_flat[order]
    values_sorted = values[order]
    boundaries = np.flatnonzero(np.diff(pivot_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [pivot_sorted.shape[0]]])
    for start, end in zip(starts, ends):
        if start == end:
            continue
        pivot = int(pivot_sorted[start])
        frees = free_sorted[start:end]
        vals = values_sorted[start:end]
        inner = np.argsort(frees, kind="stable")
        groups[pivot] = (frees[inner], vals[inner])
    return groups


def _assemble(
    partition: PFPartition,
    pivot_parts: list,
    free1_parts: list,
    free2_parts: list,
    value_parts: list,
) -> SparseTensor:
    """Stack per-pivot blocks into the join tensor (join mode order).

    Blocks arrive pivot-major with per-pivot free indices sorted and no
    duplicate cells, so the combined flat key is strictly increasing
    for the plain join already, and needs only a single stable argsort
    for the zero-join — either way the tensor can be built through
    :meth:`SparseTensor.from_canonical`, skipping the constructor's
    full lexsort + dedup pass (the dominant cost of ``m2td.*``
    workloads).  Should a duplicate ever appear, the sorted key is no
    longer strictly increasing and the full averaging constructor takes
    over, byte-identical to the historical behavior.
    """
    join_shape = partition.join_shape
    if not value_parts:
        return SparseTensor(join_shape)
    pivots = np.concatenate(pivot_parts)
    free1 = np.concatenate(free1_parts)
    free2 = np.concatenate(free2_parts)
    values = np.concatenate(value_parts)
    n_free1 = int(np.prod(partition.free_shape(1)))
    n_free2 = int(np.prod(partition.free_shape(2)))
    flat = (pivots * n_free1 + free1) * n_free2 + free2
    if flat.shape[0] > 1 and not (np.diff(flat) > 0).all():
        # Same permutation a C-order lexsort of the coords would give:
        # the flat key encodes the join coordinate uniquely, and the
        # stable sort preserves input order on (would-be) ties.
        order = np.argsort(flat, kind="stable")
        flat = flat[order]
        pivots, free1, free2 = pivots[order], free1[order], free2[order]
        values = values[order]
    coords = np.hstack(
        [
            _unflatten(pivots, partition.pivot_shape),
            _unflatten(free1, partition.free_shape(1)),
            _unflatten(free2, partition.free_shape(2)),
        ]
    )
    if flat.shape[0] > 1 and not (np.diff(flat) > 0).all():
        return SparseTensor(join_shape, coords, values)
    return SparseTensor.from_canonical(join_shape, coords, values)


def join_tensor(
    x1: SparseTensor, x2: SparseTensor, partition: PFPartition
) -> SparseTensor:
    """Join-based stitching (Section V-C1).

    Returns the join tensor in *join mode order* (pivots, S1 free,
    S2 free); use :func:`to_original_order` to permute it back to the
    system's native mode order.
    """
    with _span(
        "join-tensor", "stitch", nnz1=x1.nnz, nnz2=x2.nnz,
        join_shape=partition.join_shape,
    ) as sp:
        p1, f1 = _split_sub_coords(x1, partition, 1)
        p2, f2 = _split_sub_coords(x2, partition, 2)
        groups1 = _group_by_pivot(p1, f1, x1.values)
        groups2 = _group_by_pivot(p2, f2, x2.values)
        pivot_parts, free1_parts, free2_parts, value_parts = [], [], [], []
        for pivot, (frees1, vals1) in groups1.items():
            other = groups2.get(pivot)
            if other is None:
                continue
            frees2, vals2 = other
            n1, n2 = frees1.shape[0], frees2.shape[0]
            pivot_parts.append(np.full(n1 * n2, pivot, dtype=np.int64))
            free1_parts.append(np.repeat(frees1, n2))
            free2_parts.append(np.tile(frees2, n1))
            value_parts.append(
                0.5 * (np.repeat(vals1, n2) + np.tile(vals2, n1))
            )
        join = _assemble(
            partition, pivot_parts, free1_parts, free2_parts, value_parts
        )
        sp.set(join_nnz=join.nnz)
        metrics = get_metrics()
        metrics.counter("stitch.joins").inc()
        metrics.counter("stitch.join_nnz").inc(join.nnz)
        return join


def zero_join_tensor(
    x1: SparseTensor,
    x2: SparseTensor,
    partition: PFPartition,
    candidates1: Optional[np.ndarray] = None,
    candidates2: Optional[np.ndarray] = None,
) -> SparseTensor:
    """Zero-join stitching (Section V-C2).

    Parameters
    ----------
    x1, x2:
        Sub-ensemble tensors in sub-space coordinates.
    partition:
        The PF-partition.
    candidates1 / candidates2:
        Free-configuration index arrays each one-sided observation of
        the *other* side is paired with; default: the distinct free
        configurations observed anywhere in that sub-ensemble.

    For a pivot configuration ``p``: matched pairs average as in the
    plain join; an ``X1`` observation with no matching ``X2`` cell
    contributes ``x1 / 2`` at every candidate ``b``; symmetrically for
    ``X2``.
    """
    with _span(
        "zero-join-tensor", "stitch", nnz1=x1.nnz, nnz2=x2.nnz,
        join_shape=partition.join_shape,
    ) as sp:
        join = _zero_join(x1, x2, partition, candidates1, candidates2)
        sp.set(join_nnz=join.nnz)
        metrics = get_metrics()
        metrics.counter("stitch.joins").inc()
        metrics.counter("stitch.join_nnz").inc(join.nnz)
        return join


def _zero_join(
    x1: SparseTensor,
    x2: SparseTensor,
    partition: PFPartition,
    candidates1: Optional[np.ndarray],
    candidates2: Optional[np.ndarray],
) -> SparseTensor:
    p1, f1 = _split_sub_coords(x1, partition, 1)
    p2, f2 = _split_sub_coords(x2, partition, 2)
    groups1 = _group_by_pivot(p1, f1, x1.values)
    groups2 = _group_by_pivot(p2, f2, x2.values)
    if candidates1 is None:
        cand1 = np.unique(f1)
    else:
        cand1 = np.unique(_flatten(
            np.asarray(candidates1, dtype=np.int64), partition.free_shape(1)
        ))
    if candidates2 is None:
        cand2 = np.unique(f2)
    else:
        cand2 = np.unique(_flatten(
            np.asarray(candidates2, dtype=np.int64), partition.free_shape(2)
        ))
    pivot_parts, free1_parts, free2_parts, value_parts = [], [], [], []
    all_pivots = sorted(set(groups1) | set(groups2))
    empty = (np.empty(0, dtype=np.int64), np.empty(0))
    for pivot in all_pivots:
        frees1, vals1 = groups1.get(pivot, empty)
        frees2, vals2 = groups2.get(pivot, empty)
        n1 = frees1.shape[0]
        n2 = frees2.shape[0]
        # X1 observations paired with every candidate b; where X2 also
        # observed b the average is completed below.
        if n1 and cand2.size:
            pivot_parts.append(
                np.full(n1 * cand2.size, pivot, dtype=np.int64)
            )
            free1_parts.append(np.repeat(frees1, cand2.size))
            free2_parts.append(np.tile(cand2, n1))
            # Look up X2 values at the candidate positions (0 if absent).
            positions = np.searchsorted(frees2, cand2)
            hit = (
                (positions < n2) & (frees2[positions.clip(max=max(n2 - 1, 0))] == cand2)
                if n2
                else np.zeros(cand2.size, dtype=bool)
            )
            x2_at_cand = np.zeros(cand2.size)
            if n2:
                x2_at_cand[hit] = vals2[positions[hit]]
            value_parts.append(
                0.5 * (np.repeat(vals1, cand2.size) + np.tile(x2_at_cand, n1))
            )
        # X2 observations with no X1 partner, paired with candidates a.
        if n2 and cand1.size:
            if n1:
                positions = np.searchsorted(frees1, cand1)
                a_observed = (
                    positions < n1
                ) & (frees1[positions.clip(max=n1 - 1)] == cand1)
            else:
                a_observed = np.zeros(cand1.size, dtype=bool)
            missing_a = cand1[~a_observed]
            if missing_a.size:
                pivot_parts.append(
                    np.full(n2 * missing_a.size, pivot, dtype=np.int64)
                )
                free1_parts.append(np.tile(missing_a, n2))
                free2_parts.append(np.repeat(frees2, missing_a.size))
                value_parts.append(0.5 * np.repeat(vals2, missing_a.size))
    return _assemble(partition, pivot_parts, free1_parts, free2_parts, value_parts)


def to_original_order(
    join: SparseTensor, partition: PFPartition
) -> SparseTensor:
    """Permute a join-ordered tensor back to the original mode order."""
    return join.transpose(partition.join_to_original)


def dense_to_original_order(
    join_dense: np.ndarray, partition: PFPartition
) -> np.ndarray:
    """Dense counterpart of :func:`to_original_order`."""
    return np.transpose(join_dense, partition.join_to_original)
