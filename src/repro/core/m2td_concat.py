"""M2TD-CONCAT (paper Algorithm 3, Figure 8).

For each pivot mode, the two sub-tensor matricizations are
concatenated row-by-row (the pivot domain is shared, so the rows
align) and the factor matrix is the leading left singular vectors of
the combined matricization — guaranteeing actual singular vectors
where AVG only has averages of them.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..sampling.partition import PFPartition
from .m2td import M2TDResult, TensorLike, m2td_decompose


def m2td_concat(
    x1: TensorLike,
    x2: TensorLike,
    partition: PFPartition,
    ranks: Sequence[int],
    join_kind: str = "join",
    lazy: bool = False,
    zero_join_candidates: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    method: str = "exact",
    keep_probability: float = 0.5,
    seed=None,
) -> M2TDResult:
    """Decompose the stitched ensemble with the CONCAT pivot combiner."""
    return m2td_decompose(
        x1,
        x2,
        partition,
        ranks,
        variant="concat",
        join_kind=join_kind,
        lazy=lazy,
        zero_join_candidates=zero_join_candidates,
        method=method,
        keep_probability=keep_probability,
        seed=seed,
    )
