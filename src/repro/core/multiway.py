"""Multiway partition-stitch: more than two sub-systems.

The paper partitions a system into exactly *two* sub-systems
(Section V); its construction generalizes naturally — and this module
implements the generalization as an extension experiment:

* an :class:`MWPartition` splits the non-pivot modes into ``m``
  *groups*; sub-system ``i`` varies the pivots plus group ``i`` and
  freezes everything else at fixing constants;
* each sub-ensemble costs ``P * E_i`` cells, so the total budget is
  ``P * sum(E_i)`` while the multiway join carries
  ``P * prod(E_i)`` effective entries — deeper partitioning
  (larger ``m``) buys exponentially more effective density per cell,
  at the price of more frozen parameters per sub-system;
* M2TD extends mode-wise: the pivot factor matrices of all ``m``
  sub-decompositions are combined (average, or row-wise energy
  selection over ``m`` candidates), each group's factor comes from its
  own sub-tensor, and the core is recovered against the multiway join
  tensor ``J(p, a_1, ..., a_m) = mean_i X_i(p, a_i)``.

For ``m = 2`` everything here agrees with the two-way path (tests
assert it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import PartitionError, StitchError
from ..sampling.partition import PFPartition
from ..simulation.parameter_space import ParameterSpace
from ..tensor.svd import truncated_svd, leading_left_singular_vectors
from ..tensor.ttm import multi_ttm
from ..tensor.tucker import TuckerTensor
from ..tensor.unfold import unfold
from .row_select import align_columns


@dataclass(frozen=True)
class MWPartition:
    """A pivoted/fixed split of the modes into ``m >= 2`` groups.

    Attributes
    ----------
    shape:
        Full-space tensor shape.
    pivot_modes:
        Original indices of the shared pivot modes.
    free_groups:
        One tuple of original mode indices per sub-system.
    fixed_indices:
        Fixing-constant index per frozen mode (defaults to middle).
    """

    shape: Tuple[int, ...]
    pivot_modes: Tuple[int, ...]
    free_groups: Tuple[Tuple[int, ...], ...]
    fixed_indices: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        pivots = tuple(int(m) for m in self.pivot_modes)
        groups = tuple(tuple(int(m) for m in g) for g in self.free_groups)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "pivot_modes", pivots)
        object.__setattr__(self, "free_groups", groups)
        if len(groups) < 2:
            raise PartitionError("multiway partition needs >= 2 groups")
        if not pivots:
            raise PartitionError("at least one pivot mode is required")
        flat = list(pivots) + [m for g in groups for m in g]
        if sorted(flat) != list(range(len(shape))):
            raise PartitionError(
                "pivots + groups must partition all modes exactly once"
            )
        if any(not g for g in groups):
            raise PartitionError("every group needs at least one mode")
        fixed = {int(m): int(i) for m, i in self.fixed_indices.items()}
        for group in groups:
            for mode in group:
                fixed.setdefault(mode, shape[mode] // 2)
                if not 0 <= fixed[mode] < shape[mode]:
                    raise PartitionError(
                        f"fixing index {fixed[mode]} out of range for "
                        f"mode {mode}"
                    )
        object.__setattr__(self, "fixed_indices", fixed)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of sub-systems."""
        return len(self.free_groups)

    @property
    def k(self) -> int:
        return len(self.pivot_modes)

    @property
    def n_modes(self) -> int:
        return len(self.shape)

    def sub_modes(self, index: int) -> Tuple[int, ...]:
        """Mode ids of sub-system ``index`` (0-based), pivots first."""
        return self.pivot_modes + self.free_groups[index]

    def sub_shape(self, index: int) -> Tuple[int, ...]:
        return tuple(self.shape[m] for m in self.sub_modes(index))

    @property
    def join_modes(self) -> Tuple[int, ...]:
        return self.pivot_modes + tuple(
            m for g in self.free_groups for m in g
        )

    @property
    def join_to_original(self) -> Tuple[int, ...]:
        lookup = {mode: axis for axis, mode in enumerate(self.join_modes)}
        return tuple(lookup[mode] for mode in range(self.n_modes))

    def frozen_modes(self, index: int) -> Tuple[int, ...]:
        return tuple(
            m
            for g_index, g in enumerate(self.free_groups)
            if g_index != index
            for m in g
        )

    def extract_sub_tensor(self, index: int, full: np.ndarray) -> np.ndarray:
        """Slice sub-system ``index``'s complete sub-tensor out of the
        ground truth (frozen modes pinned, modes in sub order)."""
        full = np.asarray(full)
        if full.shape != self.shape:
            raise PartitionError(
                f"full tensor shape {full.shape} != partition shape "
                f"{self.shape}"
            )
        slicer: List = [slice(None)] * self.n_modes
        for mode in self.frozen_modes(index):
            slicer[mode] = self.fixed_indices[mode]
        sliced = full[tuple(slicer)]
        remaining = [
            m for m in range(self.n_modes)
            if m not in self.frozen_modes(index)
        ]
        order = [remaining.index(m) for m in self.sub_modes(index)]
        return np.transpose(sliced, order)

    def as_pf_partition(self) -> PFPartition:
        """The equivalent two-way partition (only for ``m == 2``)."""
        if self.m != 2:
            raise PartitionError(
                f"as_pf_partition needs m == 2, have m == {self.m}"
            )
        return PFPartition(
            shape=self.shape,
            pivot_modes=self.pivot_modes,
            s1_free=self.free_groups[0],
            s2_free=self.free_groups[1],
            fixed_indices=dict(self.fixed_indices),
        )

    @classmethod
    def for_space(
        cls,
        space: ParameterSpace,
        pivot="t",
        groups: Optional[Sequence[Sequence[str]]] = None,
    ) -> "MWPartition":
        """Build from mode names; default groups are singletons (the
        deepest partitioning)."""
        pivot_names = (pivot,) if isinstance(pivot, str) else tuple(pivot)
        pivot_modes = tuple(space.mode_index(n) for n in pivot_names)
        remaining = [
            m for m in range(space.n_modes) if m not in pivot_modes
        ]
        if groups is None:
            group_modes = tuple((m,) for m in remaining)
        else:
            group_modes = tuple(
                tuple(space.mode_index(n) for n in g) for g in groups
            )
        fixed: Dict[int, int] = {}
        for group in group_modes:
            for mode in group:
                if mode == space.time_mode:
                    fixed[mode] = space.time_resolution // 2
                else:
                    grid = space.grid(mode)
                    default = space.system.parameters[mode].default
                    fixed[mode] = int(np.abs(grid - default).argmin())
        return cls(
            shape=space.shape,
            pivot_modes=pivot_modes,
            free_groups=group_modes,
            fixed_indices=fixed,
        )


def multiway_join_dense(
    subs: Sequence[np.ndarray], partition: MWPartition
) -> np.ndarray:
    """Dense multiway join: ``J(p, a_1..a_m) = mean_i X_i(p, a_i)``.

    Requires complete (dense) sub-tensors in sub-mode order.
    """
    if len(subs) != partition.m:
        raise StitchError(
            f"need {partition.m} sub-tensors, got {len(subs)}"
        )
    k = partition.k
    pivot_shape = tuple(partition.shape[m] for m in partition.pivot_modes)
    group_shapes = [
        tuple(partition.shape[m] for m in g) for g in partition.free_groups
    ]
    total = None
    for index, sub in enumerate(subs):
        sub = np.asarray(sub, dtype=np.float64)
        expected = partition.sub_shape(index)
        if sub.shape != expected:
            raise StitchError(
                f"sub-tensor {index} has shape {sub.shape}, expected "
                f"{expected}"
            )
        # reshape to broadcast over the other groups' axes
        new_shape = list(pivot_shape)
        for g_index, g_shape in enumerate(group_shapes):
            if g_index == index:
                new_shape.extend(g_shape)
            else:
                new_shape.extend([1] * len(g_shape))
        term = sub.reshape(new_shape)
        total = term if total is None else total + term
    return total / partition.m


def _combine_pivot_factors(
    factor_list: List[np.ndarray],
    sval_list: List[np.ndarray],
    variant: str,
) -> np.ndarray:
    """Combine ``m`` pivot-mode factor matrices.

    ``avg`` averages all (sign-aligned to the first); ``select`` takes
    each row from the sub-decomposition with the largest spectral row
    energy.
    """
    reference = factor_list[0]
    aligned = [reference] + [
        align_columns(reference, u) for u in factor_list[1:]
    ]
    if variant == "avg":
        return np.mean(aligned, axis=0)
    energies = np.stack(
        [
            np.linalg.norm(u * s[None, :], axis=1)
            for u, s in zip(aligned, sval_list)
        ]
    )  # (m, rows)
    winners = energies.argmax(axis=0)
    rows = np.arange(reference.shape[0])
    stacked = np.stack(aligned)  # (m, rows, cols)
    return stacked[winners, rows, :]


@dataclass
class MultiwayResult:
    """Outcome of a multiway M2TD decomposition."""

    tucker: TuckerTensor
    partition: MWPartition
    variant: str
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def reconstruct_original(self) -> np.ndarray:
        return np.transpose(
            self.tucker.reconstruct(), self.partition.join_to_original
        )

    def accuracy(self, truth: np.ndarray) -> float:
        truth = np.asarray(truth)
        denom = np.linalg.norm(truth.ravel())
        if denom == 0:
            raise StitchError("ground-truth tensor has zero norm")
        approx = self.reconstruct_original()
        return 1.0 - np.linalg.norm((approx - truth).ravel()) / denom


def m2td_multiway(
    subs: Sequence[np.ndarray],
    partition: MWPartition,
    ranks: Sequence[int],
    variant: str = "select",
) -> MultiwayResult:
    """M2TD over ``m`` complete sub-ensembles.

    Parameters
    ----------
    subs:
        Dense sub-tensors, one per group, in sub-mode order (pivots
        first).
    partition:
        The multiway partition.
    ranks:
        Target rank per original mode (clipped per matricization).
    variant:
        ``"avg"`` or ``"select"`` (CONCAT would need all
        matricizations concatenated; supported via ``"concat"``).
    """
    if variant not in ("avg", "concat", "select"):
        raise StitchError(f"unknown multiway variant {variant!r}")
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != partition.n_modes:
        raise StitchError(
            f"need one rank per mode ({partition.n_modes}), got {len(ranks)}"
        )
    dense_subs = [np.asarray(s, dtype=np.float64) for s in subs]
    k = partition.k

    started = time.perf_counter()
    factors: List[np.ndarray] = []
    # pivot modes: combine over all sub-decompositions
    for axis in range(k):
        rank = ranks[partition.join_modes[axis]]
        if variant == "concat":
            combined = np.hstack(
                [unfold(sub, axis) for sub in dense_subs]
            )
            clipped = max(1, min(rank, min(combined.shape)))
            factors.append(
                leading_left_singular_vectors(combined, clipped)
            )
            continue
        factor_list, sval_list = [], []
        for sub in dense_subs:
            matricized = unfold(sub, axis)
            clipped = max(1, min(rank, min(matricized.shape)))
            u, s, _vt = truncated_svd(matricized, clipped)
            factor_list.append(u)
            sval_list.append(s)
        width = min(u.shape[1] for u in factor_list)
        factor_list = [u[:, :width] for u in factor_list]
        sval_list = [s[:width] for s in sval_list]
        factors.append(
            _combine_pivot_factors(factor_list, sval_list, variant)
        )
    # group modes: from their own sub-tensor
    for index, group in enumerate(partition.free_groups):
        sub = dense_subs[index]
        for offset in range(len(group)):
            axis = k + offset
            rank = ranks[group[offset]]
            matricized = unfold(sub, axis)
            clipped = max(1, min(rank, min(matricized.shape)))
            factors.append(
                leading_left_singular_vectors(matricized, clipped)
            )
    sub_decompose_seconds = time.perf_counter() - started

    started = time.perf_counter()
    joined = multiway_join_dense(dense_subs, partition)
    stitch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    core = multi_ttm(joined, factors, transpose=True)
    core_seconds = time.perf_counter() - started

    return MultiwayResult(
        tucker=TuckerTensor(core, factors),
        partition=partition,
        variant=variant,
        phase_seconds={
            "sub_decompose": sub_decompose_seconds,
            "stitch": stitch_seconds,
            "core": core_seconds,
        },
    )


def multiway_budget_cells(partition: MWPartition) -> int:
    """Cells consumed by complete multiway sub-ensembles:
    ``P * sum_i E_i``."""
    pivot_cells = int(
        np.prod([partition.shape[m] for m in partition.pivot_modes])
    )
    return pivot_cells * int(
        sum(
            np.prod([partition.shape[m] for m in g])
            for g in partition.free_groups
        )
    )


def multiway_study(
    truth: np.ndarray,
    partition: MWPartition,
    ranks: Sequence[int],
    variant: str = "select",
) -> Tuple[MultiwayResult, int]:
    """Run the full multiway pipeline against a ground-truth tensor.

    Sub-ensembles are the *complete* sub-spaces (the analogue of
    ``P = E = 100%``); returns the result and the cell budget consumed.
    """
    subs = [
        partition.extract_sub_tensor(index, truth)
        for index in range(partition.m)
    ]
    result = m2td_multiway(subs, partition, ranks, variant=variant)
    return result, multiway_budget_cells(partition)
