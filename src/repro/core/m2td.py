"""The Multi-Task Tensor Decomposition engine (paper Section VI).

All three variants share one skeleton (Algorithms 2-4):

1. matricize each sub-ensemble tensor along each of its modes;
2. for each shared *pivot* mode, derive factor matrices from both
   sub-tensors and combine them (this is where the variants differ:
   AVG averages, CONCAT concatenates matricizations before the SVD,
   SELECT keeps the higher-energy row per entity);
3. for each free mode, take the factor matrix from the sub-tensor that
   owns the mode;
4. build the join tensor and recover the core
   ``G = J x_1 U^(1)T ... x_N U^(N)T``.

:func:`m2td_decompose` implements the skeleton; the variant modules
(:mod:`repro.core.m2td_avg` etc.) provide the public entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sps

from ..exceptions import RankError, StitchError
from ..observability import span as _span
from ..sampling.partition import PFPartition
from ..tensor.sparse import SparseTensor
from ..tensor.svd import (
    gram_left_singular_vectors,
    gram_singular_pairs,
    leading_left_singular_vectors,
    truncated_svd,
)
from ..tensor.tucker import TuckerTensor, check_method, sketched_input
from ..tensor.unfold import unfold
from .join_tensor import lazy_core, materialized_core
from .row_select import average_factors, procrustes_align, row_select
from .stitch import dense_to_original_order, join_tensor, zero_join_tensor

TensorLike = Union[np.ndarray, SparseTensor]

#: Pivot combiner operating on factor matrices (AVG, SELECT).
FactorCombiner = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class M2TDResult:
    """Outcome of one M2TD decomposition.

    Attributes
    ----------
    tucker:
        The join-tensor decomposition, factors in *join* mode order.
    partition:
        The PF-partition that produced it.
    variant:
        ``"avg"``, ``"concat"`` or ``"select"``.
    join_kind:
        ``"join"`` or ``"zero"`` (``"lazy"`` marks the closed-form
        core recovery on complete sub-ensembles).
    join_nnz:
        Stored entries of the stitched join tensor (its effective
        density numerator); 0 when the lazy path skipped
        materialisation.
    method:
        Kernel method that was requested: ``"exact"``, ``"sketched"``
        or ``"gram"``.
    phase_seconds:
        Wall-clock split mirroring D-M2TD's phases:
        ``sub_decompose`` / ``stitch`` / ``core``.
    """

    tucker: TuckerTensor
    partition: PFPartition
    variant: str
    join_kind: str
    join_nnz: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    method: str = "exact"

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def reconstruct_original(self) -> np.ndarray:
        """Dense reconstruction permuted to the system's mode order."""
        return dense_to_original_order(
            self.tucker.reconstruct(), self.partition
        )

    def accuracy(self, truth: np.ndarray) -> float:
        """Paper Section VII-D accuracy against the full-space tensor."""
        truth = np.asarray(truth)
        approx = self.reconstruct_original()
        denom = np.linalg.norm(truth.ravel())
        if denom == 0:
            raise StitchError("ground-truth tensor has zero norm")
        return 1.0 - np.linalg.norm((approx - truth).ravel()) / denom


def _matricize(tensor: TensorLike, mode: int):
    if isinstance(tensor, SparseTensor):
        return tensor.unfold_csr(mode)
    return unfold(np.asarray(tensor), mode)


def _concat_matricizations(m1, m2):
    if sps.issparse(m1) or sps.issparse(m2):
        return sps.hstack(
            [sps.csr_matrix(m1), sps.csr_matrix(m2)], format="csr"
        )
    return np.hstack([np.asarray(m1), np.asarray(m2)])


def _clip_rank(rank: int, shape: Tuple[int, int]) -> int:
    return max(1, min(int(rank), min(int(shape[0]), int(shape[1]))))


def _matrix_gram(matrix) -> np.ndarray:
    """``X X^T`` of a matricization, sparse-aware (never densifies X)."""
    if sps.issparse(matrix):
        return np.asarray((matrix @ matrix.T).todense(), dtype=np.float64)
    dense = np.asarray(matrix, dtype=np.float64)
    return dense @ dense.T


def _factor_pair(matrix, rank: int, method: str):
    """``(U, s)`` of a matricization — SVD by default, Gram-eigh under
    ``method="gram"`` (same subspaces to ~1e-10, no dense unfolding)."""
    rank = _clip_rank(rank, matrix.shape)
    if method == "gram":
        return gram_singular_pairs(_matrix_gram(matrix), rank)
    u, s, _vt = truncated_svd(matrix, rank)
    return u, s


def _leading_factor(matrix, rank: int, method: str) -> np.ndarray:
    rank = _clip_rank(rank, matrix.shape)
    if method == "gram":
        return gram_left_singular_vectors(_matrix_gram(matrix), rank)
    return leading_left_singular_vectors(matrix, rank)


def map_ranks_to_join(
    partition: PFPartition, ranks: Sequence[int]
) -> Tuple[int, ...]:
    """Reorder per-original-mode ranks into join mode order."""
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != partition.n_modes:
        raise RankError(
            f"need one rank per mode ({partition.n_modes}), got {len(ranks)}"
        )
    if any(r < 1 for r in ranks):
        raise RankError(f"ranks must be >= 1, got {ranks}")
    return tuple(ranks[m] for m in partition.join_modes)


def _sub_dense(tensor: TensorLike) -> np.ndarray:
    if isinstance(tensor, SparseTensor):
        return tensor.to_dense()
    return np.asarray(tensor, dtype=np.float64)


def m2td_decompose(
    x1: TensorLike,
    x2: TensorLike,
    partition: PFPartition,
    ranks: Sequence[int],
    variant: str = "select",
    join_kind: str = "join",
    lazy: bool = False,
    zero_join_candidates: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    alignment: str = "sign",
    method: str = "exact",
    keep_probability: float = 0.5,
    seed=None,
) -> M2TDResult:
    """Run M2TD on two PF-partitioned sub-ensemble tensors.

    Parameters
    ----------
    x1, x2:
        Sub-ensemble tensors in sub-space mode order (pivots first) —
        dense arrays or :class:`SparseTensor`.
    partition:
        The PF-partition relating them to the full space.
    ranks:
        Target rank per *original* mode (length ``N``); ranks are
        clipped per matricization where a small mode cannot supply
        them.
    variant:
        ``"avg"`` | ``"concat"`` | ``"select"`` (Algorithms 2, 3, 4).
    join_kind:
        ``"join"`` (Section V-C1) or ``"zero"`` (Section V-C2).
    lazy:
        Use the closed-form core recovery (requires dense/complete
        sub-ensembles and ``join_kind="join"``).
    zero_join_candidates:
        Optional explicit candidate free-config arrays for zero-join.
    alignment:
        How the second sub-decomposition's pivot factors are aligned to
        the first before combining: ``"sign"`` (per-column sign flips,
        the default) or ``"procrustes"`` (full orthogonal rotation) —
        an implementation variant the paper leaves unspecified; see
        the row-energy ablation bench for the trade-off.
    method:
        Kernel method for the sub-decompositions: ``"exact"``
        (default), ``"sketched"`` (both sub-ensembles are MACH-
        sketched at ``keep_probability`` before *everything* — factor
        extraction and stitching alike; 1.0 short-circuits to exact,
        an empty sketch falls back to exact), or ``"gram"`` (factor
        subspaces from mode Gram matrices, never densifying a sparse
        matricization).
    keep_probability / seed:
        Only used by ``method="sketched"``; ``x2`` is sketched with
        ``seed + 1`` so the two sub-ensembles draw independent masks.

    Returns
    -------
    M2TDResult
    """
    if variant not in ("avg", "concat", "select"):
        raise StitchError(f"unknown M2TD variant {variant!r}")
    if join_kind not in ("join", "zero"):
        raise StitchError(f"unknown join kind {join_kind!r}")
    if lazy and join_kind != "join":
        raise StitchError("lazy core recovery requires join_kind='join'")
    if alignment not in ("sign", "procrustes"):
        raise StitchError(f"unknown alignment {alignment!r}")
    requested_method = method = check_method(method)
    if method == "sketched":
        x1 = sketched_input(x1, keep_probability, seed)
        # Integer seeds get an independent mask for the second
        # sub-ensemble; Generator/None seeds already advance on reuse.
        second = int(seed) + 1 if isinstance(seed, (int, np.integer)) else seed
        x2 = sketched_input(x2, keep_probability, second)
        # Downstream phases run the exact kernels on the sketches.
        method = "exact"
    join_ranks = map_ranks_to_join(partition, ranks)
    k = partition.k
    f1 = len(partition.s1_free)

    # ------------------------------------------------------- phase 1
    started = time.perf_counter()
    factors: List[Optional[np.ndarray]] = [None] * partition.n_modes
    for axis in range(k):
        with _span(
            "pivot-factor", "stitch-factor", mode=axis, variant=variant
        ):
            m1 = _matricize(x1, axis)
            m2 = _matricize(x2, axis)
            rank = join_ranks[axis]
            if variant == "concat":
                combined = _concat_matricizations(m1, m2)
                factors[axis] = _leading_factor(combined, rank, method)
            else:
                u1, s1 = _factor_pair(m1, rank, method)
                u2, s2 = _factor_pair(m2, rank, method)
                width = min(u1.shape[1], u2.shape[1])
                u1, u2 = u1[:, :width], u2[:, :width]
                s1, s2 = s1[:width], s2[:width]
                if alignment == "procrustes":
                    u2 = procrustes_align(u1, u2)
                if variant == "avg":
                    factors[axis] = average_factors(u1, u2)
                else:
                    factors[axis] = row_select(u1, u2, s1, s2)
    with _span("free-factors", "decompose", variant=variant):
        for offset in range(f1):
            axis = k + offset
            factors[axis] = _leading_factor(
                _matricize(x1, axis), join_ranks[axis], method
            )
        for offset in range(len(partition.s2_free)):
            axis = k + f1 + offset
            factors[axis] = _leading_factor(
                _matricize(x2, k + offset), join_ranks[axis], method
            )
    sub_decompose_seconds = time.perf_counter() - started

    # ------------------------------------------------------- phase 2
    started = time.perf_counter()
    join_nnz = 0
    join_dense: Optional[np.ndarray] = None
    with _span(
        "m2td-stitch", "stitch",
        join_kind="lazy" if lazy else join_kind, variant=variant,
    ) as stitch_span:
        if lazy:
            x1_dense = _sub_dense(x1)
            x2_dense = _sub_dense(x2)
        else:
            sparse1 = (
                x1
                if isinstance(x1, SparseTensor)
                else SparseTensor.from_dense(np.asarray(x1), keep_zeros=True)
            )
            sparse2 = (
                x2
                if isinstance(x2, SparseTensor)
                else SparseTensor.from_dense(np.asarray(x2), keep_zeros=True)
            )
            if join_kind == "join":
                join = join_tensor(sparse1, sparse2, partition)
            else:
                candidates1, candidates2 = zero_join_candidates or (None, None)
                join = zero_join_tensor(
                    sparse1, sparse2, partition, candidates1, candidates2
                )
            join_nnz = join.nnz
            stitch_span.set(join_nnz=join_nnz)
            join_dense = join.to_dense()
    stitch_seconds = time.perf_counter() - started

    # ------------------------------------------------------- phase 3
    started = time.perf_counter()
    with _span("m2td-core", "decompose", lazy=lazy, variant=variant):
        factor_list = [np.asarray(f) for f in factors]
        if lazy:
            core = lazy_core(x1_dense, x2_dense, factor_list, partition)
        else:
            core = materialized_core(join_dense, factor_list)
    core_seconds = time.perf_counter() - started

    return M2TDResult(
        tucker=TuckerTensor(core, factor_list),
        partition=partition,
        variant=variant,
        join_kind="lazy" if lazy else join_kind,
        join_nnz=join_nnz,
        method=requested_method,
        phase_seconds={
            "sub_decompose": sub_decompose_seconds,
            "stitch": stitch_seconds,
            "core": core_seconds,
        },
    )
