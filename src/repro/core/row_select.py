"""ROW_SELECT (paper Algorithm 5) and the factor combiners used for
pivot modes by the three M2TD variants.

Each combiner answers the same question: given the two factor matrices
``U1`` and ``U2`` that sub-systems 1 and 2 independently derived for a
*shared* pivot mode, produce the single factor matrix the join-tensor
decomposition will use for that mode.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError


def _check_pair(u1: np.ndarray, u2: np.ndarray) -> None:
    if u1.ndim != 2 or u2.ndim != 2:
        raise ShapeError("factor matrices must be 2-D")
    if u1.shape != u2.shape:
        raise ShapeError(
            f"pivot factor matrices must share a shape, got {u1.shape} "
            f"and {u2.shape}"
        )


def align_columns(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """Sign-align ``u2``'s columns to ``u1``'s.

    Left singular vectors are only defined up to sign; the per-matrix
    deterministic convention of :mod:`repro.tensor.svd` can still pick
    opposite signs for the two sub-decompositions of a shared pivot
    mode.  Both AVG (averaging) and SELECT (row mixing) silently
    degrade when corresponding columns point opposite ways, so the
    combiners align ``u2`` by the sign of each column correlation
    first.  Zero-correlation columns are left untouched.
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = np.array(u2, dtype=np.float64, copy=True)
    _check_pair(u1, u2)
    correlation = np.einsum("ij,ij->j", u1, u2)
    u2[:, correlation < 0] *= -1.0
    return u2


def procrustes_align(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """Orthogonally rotate ``u2``'s columns onto ``u1``'s.

    Solves the orthogonal Procrustes problem
    ``min_R ||u1 - u2 R||_F`` over rotations ``R`` and returns
    ``u2 @ R``.  A stronger alternative to :func:`align_columns` when
    the two sub-decompositions order or mix their singular vectors
    differently (close singular values): rotation makes the bases
    maximally comparable row-by-row while preserving the spanned
    subspace.  Exposed through ``m2td_decompose(alignment=...)``; the
    default stays the lighter sign alignment (see
    ``benchmarks/bench_ablation_row_energy.py`` for the trade-off).
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = np.asarray(u2, dtype=np.float64)
    _check_pair(u1, u2)
    w, _s, vt = np.linalg.svd(u2.T @ u1)
    return u2 @ (w @ vt)


def average_factors(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """M2TD-AVG's combiner: the element-wise average (Figure 10(a)).

    The average of two orthonormal bases is generally not orthonormal —
    the weakness M2TD-CONCAT and M2TD-SELECT each address differently.
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = align_columns(u1, u2)
    return 0.5 * (u1 + u2)


def row_select(
    u1: np.ndarray,
    u2: np.ndarray,
    singular_values1: np.ndarray = None,
    singular_values2: np.ndarray = None,
) -> np.ndarray:
    """M2TD-SELECT's combiner (Algorithm 5, Figure 10(b)).

    For each row ``i`` (an entity of the pivot domain), keep the row
    with the larger 2-norm *energy* — the sub-system that represents
    that entity more strongly — instead of letting the weaker row act
    as noise on the stronger one.

    When the singular values of the two sub-decompositions are given,
    row energies are measured on ``U @ diag(s)`` — the entity's actual
    spectral energy in its sub-ensemble — rather than on the
    orthonormal ``U`` alone, whose row norms are mere leverage scores
    and carry no information about how strongly each sub-system
    expresses the entity.  The selected rows themselves are always
    copied from the orthonormal matrices.
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = align_columns(u1, u2)
    if singular_values1 is not None and singular_values2 is not None:
        s1 = np.asarray(singular_values1, dtype=np.float64).ravel()
        s2 = np.asarray(singular_values2, dtype=np.float64).ravel()
        if s1.shape[0] != u1.shape[1] or s2.shape[0] != u2.shape[1]:
            raise ShapeError(
                "singular value vectors must match factor column counts"
            )
        energy1 = np.linalg.norm(u1 * s1[None, :], axis=1)
        energy2 = np.linalg.norm(u2 * s2[None, :], axis=1)
    else:
        energy1 = np.linalg.norm(u1, axis=1)
        energy2 = np.linalg.norm(u2, axis=1)
    take_first = energy1 >= energy2
    return np.where(take_first[:, None], u1, u2)


def row_select_source(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """Which sub-system each row was taken from (1 or 2).

    Diagnostic companion to :func:`row_select`, used by tests and the
    pivot-choice analysis.
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = np.asarray(u2, dtype=np.float64)
    _check_pair(u1, u2)
    energy1 = np.linalg.norm(u1, axis=1)
    energy2 = np.linalg.norm(u2, axis=1)
    return np.where(energy1 >= energy2, 1, 2)
