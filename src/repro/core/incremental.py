"""Time-incremental M2TD: grow the ensembles one pivot slab at a time.

A running study keeps simulating: every new batch of time samples
appends one slab to each sub-ensemble along the shared pivot (time)
mode.  Refitting all factor matrices from scratch after every batch
repeats work; this module maintains each matricization's truncated SVD
incrementally (:mod:`repro.tensor.incremental_svd`):

* the pivot-mode matricizations gain *rows* (one per new time sample)
  — updated with :func:`append_rows`;
* every free-mode matricization gains *columns* (the new slab's
  fibers) — updated with :func:`append_cols`; column order differs
  from a batch unfolding, but left singular vectors are invariant to
  column permutations, so the factors agree.

Core recovery still touches the accumulated join tensor (the paper's
dominant phase 3 — no free lunch there), so the incremental savings
live exactly where D-M2TD's phase 1 lives.

Single shared pivot mode (``k = 1``, the paper's evaluated setting).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError, StitchError
from ..tensor.incremental_svd import append_cols, append_rows
from ..tensor.svd import truncated_svd
from ..tensor.ttm import multi_ttm
from ..tensor.tucker import TuckerTensor
from ..tensor.unfold import unfold
from .row_select import average_factors, row_select


def _clip(rank: int, shape: Tuple[int, int]) -> int:
    return max(1, min(int(rank), min(shape)))


class _IncrementalSubTensor:
    """One growing sub-ensemble: data plus per-mode SVD triples."""

    def __init__(self, block: np.ndarray, ranks: Sequence[int]):
        block = np.asarray(block, dtype=np.float64)
        if block.ndim < 2:
            raise ShapeError("sub-tensors need at least 2 modes")
        self.data = block
        self.ranks = tuple(int(r) for r in ranks)
        if len(self.ranks) != block.ndim:
            raise ShapeError(
                f"need one rank per mode ({block.ndim}), got "
                f"{len(self.ranks)}"
            )
        self.triples: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for mode in range(block.ndim):
            matricized = unfold(block, mode)
            self.triples.append(
                truncated_svd(matricized, _clip(self.ranks[mode], matricized.shape))
            )

    def append_slab(self, slab: np.ndarray) -> None:
        """Fold a new pivot slab ``(c, *free_shape)`` into the state."""
        slab = np.asarray(slab, dtype=np.float64)
        if slab.shape[1:] != self.data.shape[1:]:
            raise ShapeError(
                f"slab free shape {slab.shape[1:]} != sub-tensor free "
                f"shape {self.data.shape[1:]}"
            )
        # pivot mode: new rows
        u, s, vt = self.triples[0]
        rows = unfold(slab, 0)
        self.triples[0] = append_rows(
            u, s, vt, rows,
            _clip(
                self.ranks[0],
                (self.data.shape[0] + slab.shape[0], rows.shape[1]),
            ),
        )
        # free modes: new columns
        for mode in range(1, self.data.ndim):
            u, s, vt = self.triples[mode]
            cols = unfold(slab, mode)
            self.triples[mode] = append_cols(
                u, s, vt, cols,
                _clip(self.ranks[mode], (cols.shape[0], vt.shape[1] + cols.shape[1])),
            )
        self.data = np.concatenate([self.data, slab], axis=0)

    def factor(self, mode: int) -> np.ndarray:
        return self.triples[mode][0]

    def singular_values(self, mode: int) -> np.ndarray:
        return self.triples[mode][1]


@dataclass
class IncrementalSnapshot:
    """Decomposition state after an append."""

    tucker: TuckerTensor
    t_size: int
    factor_update_seconds: float
    core_seconds: float


class IncrementalM2TD:
    """Streaming M2TD over a growing shared time (pivot) mode.

    Parameters
    ----------
    x1_block / x2_block:
        Initial dense sub-tensors, pivot mode first, e.g. shapes
        ``(T0, A1, A2)`` and ``(T0, B1, B2)``.
    ranks:
        Target ranks in join order ``(pivot, free1..., free2...)``.
    variant:
        ``"avg"`` or ``"select"`` pivot combination.
    """

    def __init__(
        self,
        x1_block: np.ndarray,
        x2_block: np.ndarray,
        ranks: Sequence[int],
        variant: str = "select",
    ):
        if variant not in ("avg", "select"):
            raise StitchError(
                f"incremental M2TD supports 'avg'/'select', got {variant!r}"
            )
        x1_block = np.asarray(x1_block, dtype=np.float64)
        x2_block = np.asarray(x2_block, dtype=np.float64)
        if x1_block.shape[0] != x2_block.shape[0]:
            raise ShapeError(
                "sub-tensors must share the pivot (first) mode size"
            )
        self.variant = variant
        ranks = tuple(int(r) for r in ranks)
        f1 = x1_block.ndim - 1
        f2 = x2_block.ndim - 1
        if len(ranks) != 1 + f1 + f2:
            raise ShapeError(
                f"need {1 + f1 + f2} ranks (pivot + free1 + free2), got "
                f"{len(ranks)}"
            )
        self._ranks = ranks
        self._sub1 = _IncrementalSubTensor(
            x1_block, (ranks[0],) + ranks[1 : 1 + f1]
        )
        self._sub2 = _IncrementalSubTensor(
            x2_block, (ranks[0],) + ranks[1 + f1 :]
        )
        self._f1 = f1
        self._f2 = f2

    # ------------------------------------------------------------------
    @property
    def t_size(self) -> int:
        return self._sub1.data.shape[0]

    def append(self, x1_slab: np.ndarray, x2_slab: np.ndarray) -> None:
        """Fold new pivot slabs into both sub-ensembles."""
        x1_slab = np.atleast_2d(np.asarray(x1_slab, dtype=np.float64))
        x2_slab = np.atleast_2d(np.asarray(x2_slab, dtype=np.float64))
        if x1_slab.shape[0] != x2_slab.shape[0]:
            raise ShapeError("slabs must share the pivot extent")
        self._sub1.append_slab(x1_slab)
        self._sub2.append_slab(x2_slab)

    def factors(self) -> List[np.ndarray]:
        """Current join-order factor matrices."""
        u1 = self._sub1.factor(0)
        u2 = self._sub2.factor(0)
        width = min(u1.shape[1], u2.shape[1])
        u1, u2 = u1[:, :width], u2[:, :width]
        if self.variant == "avg":
            pivot = average_factors(u1, u2)
        else:
            pivot = row_select(
                u1,
                u2,
                self._sub1.singular_values(0)[:width],
                self._sub2.singular_values(0)[:width],
            )
        return (
            [pivot]
            + [self._sub1.factor(m) for m in range(1, self._f1 + 1)]
            + [self._sub2.factor(m) for m in range(1, self._f2 + 1)]
        )

    def decompose(self) -> IncrementalSnapshot:
        """Produce the current join-tensor Tucker decomposition."""
        started = time.perf_counter()
        factors = self.factors()
        factor_seconds = time.perf_counter() - started
        started = time.perf_counter()
        x1 = self._sub1.data
        x2 = self._sub2.data
        t = x1.shape[0]
        joined = 0.5 * (
            x1.reshape(x1.shape + (1,) * self._f2)
            + x2.reshape((t,) + (1,) * self._f1 + x2.shape[1:])
        )
        core = multi_ttm(joined, factors, transpose=True)
        core_seconds = time.perf_counter() - started
        return IncrementalSnapshot(
            tucker=TuckerTensor(core, factors),
            t_size=t,
            factor_update_seconds=factor_seconds,
            core_seconds=core_seconds,
        )


def batch_reference(
    x1: np.ndarray,
    x2: np.ndarray,
    ranks: Sequence[int],
    variant: str = "select",
) -> TuckerTensor:
    """Fresh (non-incremental) fit of the same state, for comparison."""
    state = IncrementalM2TD(x1, x2, ranks, variant=variant)
    return state.decompose().tucker
