"""Automatic Tucker rank selection by spectral-energy thresholds.

The paper sweeps fixed target ranks (5/10/20); a practitioner usually
wants the ranks chosen from the data.  The standard HOSVD-style rule
is implemented here: per mode, keep the smallest number of leading
singular values whose cumulative squared energy reaches a threshold of
that matricization's total energy.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..exceptions import RankError, ShapeError
from .sparse import SparseTensor
from .svd import truncated_svd
from .unfold import unfold

TensorLike = Union[np.ndarray, SparseTensor]


def energy_rank_of_matrix(matrix, threshold: float, max_rank: int = None) -> int:
    """Smallest rank whose singular values hold ``threshold`` of the
    squared Frobenius energy of ``matrix``."""
    if not 0.0 < threshold <= 1.0:
        raise RankError(f"threshold must be in (0, 1], got {threshold}")
    limit = min(matrix.shape)
    if max_rank is not None:
        limit = min(limit, int(max_rank))
    if limit < 1:
        raise ShapeError("matrix has no singular values")
    _u, s, _vt = truncated_svd(matrix, limit)
    energies = s**2
    total = energies.sum()
    if total == 0:
        return 1
    cumulative = np.cumsum(energies) / total
    return int(np.searchsorted(cumulative, threshold - 1e-12) + 1)


def energy_threshold_ranks(
    tensor: TensorLike,
    threshold: float = 0.9,
    max_rank: int = None,
) -> Tuple[int, ...]:
    """Per-mode Tucker ranks capturing ``threshold`` of each
    matricization's energy.

    Parameters
    ----------
    tensor:
        Dense ndarray or :class:`SparseTensor`.
    threshold:
        Fraction of per-mode spectral energy to retain, in (0, 1].
    max_rank:
        Optional cap applied to every mode.
    """
    ranks = []
    for mode in range(len(tensor.shape)):
        if isinstance(tensor, SparseTensor):
            matricized = tensor.unfold_csr(mode)
        else:
            matricized = unfold(np.asarray(tensor), mode)
        ranks.append(
            energy_rank_of_matrix(matricized, threshold, max_rank=max_rank)
        )
    return tuple(ranks)


def describe_rank_profile(
    tensor: TensorLike, thresholds: Sequence[float] = (0.5, 0.9, 0.99)
) -> dict:
    """Rank-vs-energy profile: ``{threshold: ranks}`` (reporting aid)."""
    return {
        float(t): energy_threshold_ranks(tensor, t) for t in thresholds
    }
