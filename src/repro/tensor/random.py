"""Seeded random tensor generators for tests and benchmarks."""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..exceptions import RankError, ShapeError
from .sparse import SparseTensor
from .ttm import multi_ttm

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalize a seed or generator into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_dense(shape: Sequence[int], seed: SeedLike = None) -> np.ndarray:
    """Standard-normal dense tensor."""
    shape = tuple(int(s) for s in shape)
    if any(s <= 0 for s in shape):
        raise ShapeError(f"all mode sizes must be positive, got {shape}")
    return make_rng(seed).standard_normal(shape)


def random_low_rank(
    shape: Sequence[int],
    ranks: Sequence[int],
    noise: float = 0.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """A dense tensor with exact multilinear rank ``ranks`` plus
    optional Gaussian noise — the canonical recovery test input.
    """
    shape = tuple(int(s) for s in shape)
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != len(shape):
        raise RankError("need one rank per mode")
    for size, rank in zip(shape, ranks):
        if not 1 <= rank <= size:
            raise RankError(f"rank {rank} invalid for mode of size {size}")
    rng = make_rng(seed)
    core = rng.standard_normal(ranks)
    factors = []
    for size, rank in zip(shape, ranks):
        raw = rng.standard_normal((size, rank))
        q, _r = np.linalg.qr(raw)
        factors.append(q[:, :rank])
    tensor = multi_ttm(core, factors)
    if noise > 0:
        tensor = tensor + noise * rng.standard_normal(shape)
    return tensor


def random_sparse(
    shape: Sequence[int],
    density: float,
    seed: SeedLike = None,
    value_scale: float = 1.0,
) -> SparseTensor:
    """A sparse tensor with approximately ``density`` of cells stored.

    Cells are drawn without replacement from the flattened index space;
    values are standard normal times ``value_scale``.
    """
    shape = tuple(int(s) for s in shape)
    if not 0.0 < density <= 1.0:
        raise ShapeError(f"density must be in (0, 1], got {density}")
    rng = make_rng(seed)
    size = int(np.prod(shape))
    nnz = max(1, int(round(density * size)))
    flat = rng.choice(size, size=nnz, replace=False)
    coords = np.stack(np.unravel_index(flat, shape), axis=1)
    values = value_scale * rng.standard_normal(nnz)
    return SparseTensor(shape, coords, values)


def random_orthonormal(
    rows: int, cols: int, seed: SeedLike = None
) -> np.ndarray:
    """A ``rows x cols`` matrix with orthonormal columns."""
    if cols > rows:
        raise ShapeError(
            f"cannot build {cols} orthonormal columns in dimension {rows}"
        )
    rng = make_rng(seed)
    q, _r = np.linalg.qr(rng.standard_normal((rows, cols)))
    return q[:, :cols]


def spawn_seeds(seed: SeedLike, count: int) -> Tuple[int, ...]:
    """Derive ``count`` independent child seeds from one parent seed."""
    sequence = np.random.SeedSequence(
        seed if isinstance(seed, (int, type(None))) else None
    )
    return tuple(int(s.generate_state(1)[0]) for s in sequence.spawn(count))
