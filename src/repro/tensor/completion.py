"""EM-style Tucker completion for tensors with missing entries.

The paper's conventional baselines decompose the sparse ensemble
tensor treating *null* cells as zeros.  A classic stronger treatment
is expectation-maximization imputation: alternate between (E) filling
the missing cells from the current low-rank reconstruction and (M)
re-fitting the Tucker model on the completed tensor.  This module
implements that baseline so the harness can ask whether completion —
rather than better sampling — could rescue the conventional schemes
(extension experiment; spoiler: at ensemble sparsity levels it
cannot, which strengthens the paper's case for partition-stitch
sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import RankError, ShapeError
from .sparse import SparseTensor
from .tucker import TuckerTensor, hosvd, validate_ranks


@dataclass
class CompletionResult:
    """Outcome of EM-Tucker completion."""

    tucker: TuckerTensor
    completed: np.ndarray
    n_iterations: int
    converged: bool

    def reconstruct(self) -> np.ndarray:
        return self.tucker.reconstruct()


def em_tucker(
    observed: SparseTensor,
    ranks: Sequence[int],
    n_iter: int = 25,
    tol: float = 1e-6,
) -> CompletionResult:
    """Tucker completion by EM imputation.

    Parameters
    ----------
    observed:
        The sparse tensor of observed cells (explicit zeros count as
        observations; nulls are the cells to impute).
    ranks:
        Tucker rank per mode.
    n_iter:
        Maximum EM sweeps.
    tol:
        Stop when the imputed values' relative change falls below this.

    Returns
    -------
    CompletionResult
        Final model, the completed dense tensor, and convergence info.
    """
    if not isinstance(observed, SparseTensor):
        raise ShapeError("em_tucker expects a SparseTensor of observations")
    ranks = validate_ranks(observed.shape, ranks)
    if observed.nnz == 0:
        raise RankError("cannot complete a tensor with no observations")
    mask = np.zeros(observed.shape, dtype=bool)
    mask[tuple(observed.coords.T)] = True
    values = observed.values
    completed = np.zeros(observed.shape, dtype=np.float64)
    completed[mask] = values
    # Initialize the missing cells at the observed mean (better than 0
    # for all-positive distance data).
    missing = ~mask
    completed[missing] = values.mean()
    previous_missing = completed[missing].copy()
    converged = False
    iterations = 0
    tucker = hosvd(completed, ranks)
    for iterations in range(1, max(1, int(n_iter)) + 1):
        tucker = hosvd(completed, ranks)
        reconstruction = tucker.reconstruct()
        completed[missing] = reconstruction[missing]
        completed[mask] = values  # observed cells are pinned
        current_missing = completed[missing]
        denom = np.linalg.norm(previous_missing)
        change = np.linalg.norm(current_missing - previous_missing)
        previous_missing = current_missing.copy()
        if denom > 0 and change / denom < tol:
            converged = True
            break
    return CompletionResult(
        tucker=tucker,
        completed=completed,
        n_iterations=iterations,
        converged=converged,
    )


def completion_accuracy(
    result: CompletionResult, truth: np.ndarray
) -> float:
    """The paper's accuracy measure for the *completed* tensor."""
    truth = np.asarray(truth, dtype=np.float64)
    if truth.shape != result.completed.shape:
        raise ShapeError(
            f"truth shape {truth.shape} != completion shape "
            f"{result.completed.shape}"
        )
    denom = np.linalg.norm(truth.ravel())
    if denom == 0:
        raise ShapeError("ground-truth tensor has zero norm")
    diff = np.linalg.norm((result.completed - truth).ravel())
    return 1.0 - diff / denom
