"""Elementary multilinear operations: Kronecker, Khatri-Rao, outer
products, and norm/inner-product helpers shared across the library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ShapeError


def kron(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right."""
    if not matrices:
        raise ShapeError("kron needs at least one matrix")
    result = np.asarray(matrices[0])
    for matrix in matrices[1:]:
        result = np.kron(result, np.asarray(matrix))
    return result


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Khatri-Rao product.

    All matrices must share the same number of columns ``R``; the
    result has ``prod(rows)`` rows and ``R`` columns, with the *first*
    matrix's row index varying slowest (standard CP convention).
    """
    if not matrices:
        raise ShapeError("khatri_rao needs at least one matrix")
    arrays = [np.asarray(m) for m in matrices]
    for matrix in arrays:
        if matrix.ndim != 2:
            raise ShapeError("khatri_rao operands must be matrices")
    n_cols = arrays[0].shape[1]
    for matrix in arrays:
        if matrix.shape[1] != n_cols:
            raise ShapeError(
                "khatri_rao operands must share the same column count"
            )
    result = arrays[0]
    for matrix in arrays[1:]:
        # (I, R) ⊙ (J, R) -> (I*J, R): broadcast then reshape.
        result = (result[:, None, :] * matrix[None, :, :]).reshape(
            -1, n_cols
        )
    return result


def outer(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Outer product of N vectors, producing an N-mode rank-1 tensor."""
    if not vectors:
        raise ShapeError("outer needs at least one vector")
    result = np.asarray(vectors[0]).ravel()
    for vector in vectors[1:]:
        result = np.multiply.outer(result, np.asarray(vector).ravel())
    return result


def frobenius_norm(tensor: np.ndarray) -> float:
    """Frobenius norm of a dense tensor."""
    return float(np.linalg.norm(np.asarray(tensor).ravel()))


def inner(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius inner product of two equally shaped tensors."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ShapeError(f"inner product needs equal shapes, {a.shape} vs {b.shape}")
    return float(np.dot(a.ravel(), b.ravel()))


def relative_error(approx: np.ndarray, reference: np.ndarray) -> float:
    """``||approx - reference||_F / ||reference||_F``.

    Returns ``inf`` when the reference is the zero tensor but the
    approximation is not, and ``0`` when both are zero.
    """
    approx = np.asarray(approx, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if approx.shape != reference.shape:
        raise ShapeError(
            f"relative_error needs equal shapes, {approx.shape} vs {reference.shape}"
        )
    ref_norm = frobenius_norm(reference)
    diff_norm = frobenius_norm(approx - reference)
    if ref_norm == 0.0:
        return 0.0 if diff_norm == 0.0 else float("inf")
    return diff_norm / ref_norm
