"""Gram-matrix Tucker kernels: factor subspaces without densification.

For a mode-``k`` matricization :math:`X_{(k)}` the left singular
vectors are the eigenvectors of the Gram matrix
:math:`G_k = X_{(k)} X_{(k)}^T` — an ``(I_k, I_k)`` matrix that can be
accumulated directly from sparse coordinates.  For the very sparse,
very wide matricizations ensemble tensors produce, this sidesteps both
the dense unfolding (``I_k`` × ``prod(other modes)``) and the unused
right-singular-vector work of a full SVD.

The contract these kernels are tested against: on a
:class:`~repro.tensor.sparse.SparseTensor` input the
``tensor.dense_unfolds`` counter stays at **zero** — no dense unfolding
of the input is ever materialized.  Intermediate *projected* tensors
(already truncated to rank ``r`` on at least one mode) are dense, as in
any ST-HOSVD; the guard is about the full-size input, which is the part
that does not fit at scale.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..observability import span as _span
from .sparse import SparseTensor
from .svd import gram_left_singular_vectors
from .ttm import multi_ttm, ttm
from .tucker import TuckerTensor, validate_ranks
from .unfold import check_mode, fold, unfold

TensorLike = Union[np.ndarray, SparseTensor]


def mode_gram(tensor: TensorLike, mode: int) -> np.ndarray:
    """The mode-``mode`` Gram matrix ``G = X_(mode) X_(mode)^T``.

    Sparse inputs accumulate the product in CSR without ever forming
    the dense unfolding; dense inputs use the ordinary matricization.
    The result is always a small dense ``(I_mode, I_mode)`` symmetric
    matrix.
    """
    if isinstance(tensor, SparseTensor):
        mode = check_mode(tensor.ndim, mode)
        csr = tensor.unfold_csr(mode)
        return np.asarray((csr @ csr.T).todense(), dtype=np.float64)
    matrix = unfold(np.asarray(tensor, dtype=np.float64), mode)
    return matrix @ matrix.T


def sparse_ttm(tensor: SparseTensor, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` product of a sparse tensor with a dense matrix.

    Contracts the CSR matricization directly (``matrix @ X_(mode)``)
    and folds the dense result — the sparse input itself is never
    densified.  The output is dense by construction: one contracted
    mode is enough to fill in the null cells.
    """
    mode = check_mode(tensor.ndim, mode)
    matrix = np.asarray(matrix, dtype=np.float64)
    result_shape = list(tensor.shape)
    result_shape[mode] = matrix.shape[0]
    with _span("sparse-ttm", "tensor-op", shape=tensor.shape, mode=mode,
               rows=matrix.shape[0]):
        product = np.asarray(matrix @ tensor.unfold_csr(mode))
        return fold(product, mode, tuple(result_shape))


def sparse_project(
    tensor: SparseTensor, factors: Sequence[np.ndarray]
) -> np.ndarray:
    """Core recovery ``X ×_1 U1^T ×_2 ... ×_N UN^T`` from sparse coords.

    The first contraction runs sparse (:func:`sparse_ttm`); its output
    is already rank-truncated on mode 0 and small, so the remaining
    modes use the ordinary dense product chain.
    """
    dense = sparse_ttm(tensor, np.asarray(factors[0]).T, 0)
    return multi_ttm(dense, list(factors), transpose=True, skip=[0])


def gram_hosvd(tensor: TensorLike, ranks: Sequence[int]) -> TuckerTensor:
    """HOSVD with every factor taken from a mode Gram matrix.

    Identical subspaces to :func:`repro.tensor.tucker.hosvd` up to the
    usual ``eps * kappa^2`` eigenvector perturbation; the property
    suite pins agreement at 1e-8 against the dense route.
    """
    shape = tensor.shape
    ranks = validate_ranks(shape, ranks)
    is_sparse = isinstance(tensor, SparseTensor)
    if is_sparse:
        tensor.compile()
    with _span("gram-hosvd", "decompose", shape=shape, ranks=ranks,
               sparse=is_sparse):
        factors = [
            gram_left_singular_vectors(mode_gram(tensor, mode), rank)
            for mode, rank in enumerate(ranks)
        ]
        if is_sparse:
            core = sparse_project(tensor, factors)
        else:
            core = multi_ttm(
                np.asarray(tensor, dtype=np.float64), factors, transpose=True
            )
        return TuckerTensor(core, factors)


def gram_st_hosvd(tensor: TensorLike, ranks: Sequence[int]) -> TuckerTensor:
    """Sequentially truncated HOSVD via Gram matrices.

    Mode 0 of a sparse input is handled entirely in sparse arithmetic
    (Gram accumulation + sparse TTM); the projected tensor — already
    truncated to ``r_0`` on its first mode — continues through the
    standard sequential loop with Gram-based factor extraction.  A
    sparse input is never densified (``tensor.dense_unfolds`` stays 0).
    """
    shape = tensor.shape
    ranks = validate_ranks(shape, ranks)
    is_sparse = isinstance(tensor, SparseTensor)
    with _span("gram-st-hosvd", "decompose", shape=shape, ranks=ranks,
               sparse=is_sparse):
        factors: List[np.ndarray] = []
        if is_sparse:
            tensor.compile()
            n_cols = tensor.size // shape[0]
            effective = min(ranks[0], shape[0], n_cols)
            factor = gram_left_singular_vectors(mode_gram(tensor, 0), effective)
            factors.append(factor)
            current = sparse_ttm(tensor, factor.T, 0)
            start = 1
        else:
            current = np.asarray(tensor, dtype=np.float64)
            start = 0
        for mode in range(start, current.ndim):
            matricized = unfold(current, mode)
            effective = min(ranks[mode], min(matricized.shape))
            factor = gram_left_singular_vectors(
                matricized @ matricized.T, effective
            )
            factors.append(factor)
            current = ttm(current, factor.T, mode)
        return TuckerTensor(current, factors)
