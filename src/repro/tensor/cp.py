"""CP (CANDECOMP/PARAFAC) decomposition via alternating least squares.

The paper's algorithms are Tucker-based, but CP is the other canonical
decomposition it discusses (Section II-B, [11]) and serves as an extra
baseline for the tensor substrate.  The implementation is a standard
ALS with deterministic HOSVD-style initialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from ..exceptions import RankError, ShapeError
from .ops import khatri_rao, relative_error
from .sparse import SparseTensor
from .svd import leading_left_singular_vectors
from .unfold import unfold

TensorLike = Union[np.ndarray, SparseTensor]


@dataclass
class CPTensor:
    """A CP decomposition ``sum_r weights[r] * a_r ∘ b_r ∘ ...``."""

    weights: np.ndarray
    factors: List[np.ndarray]

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64).ravel()
        self.factors = [np.asarray(f, dtype=np.float64) for f in self.factors]
        if not self.factors:
            raise ShapeError("CPTensor needs at least one factor matrix")
        rank = self.weights.shape[0]
        for mode, factor in enumerate(self.factors):
            if factor.ndim != 2 or factor.shape[1] != rank:
                raise ShapeError(
                    f"factor {mode} must have {rank} columns, got "
                    f"{factor.shape}"
                )

    @property
    def rank(self) -> int:
        return int(self.weights.shape[0])

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(f.shape[0] for f in self.factors)

    def reconstruct(self) -> np.ndarray:
        """Densely recompose the rank-R model."""
        # Mode-0 unfolding columns iterate modes 1..N-1 with mode 1
        # varying fastest, so mode 1 must be the LAST Khatri-Rao operand.
        full = (
            khatri_rao(list(reversed(self.factors[1:])))
            if len(self.factors) > 1
            else np.ones((1, self.rank))
        )
        mode0 = self.factors[0] * self.weights[None, :]
        matrix = mode0 @ full.T
        if len(self.factors) == 1:
            return mode0.ravel()
        return matrix.reshape(self.shape, order="F")

    def relative_error(self, reference: np.ndarray) -> float:
        return relative_error(self.reconstruct(), np.asarray(reference))


def _as_dense(tensor: TensorLike) -> np.ndarray:
    if isinstance(tensor, SparseTensor):
        return tensor.to_dense()
    return np.asarray(tensor, dtype=np.float64)


def cp_als(
    tensor: TensorLike,
    rank: int,
    n_iter: int = 50,
    tol: float = 1e-8,
    ridge: float = 1e-12,
) -> CPTensor:
    """Fit a rank-``rank`` CP model by alternating least squares.

    Parameters
    ----------
    tensor:
        Dense ndarray or :class:`SparseTensor`.
    rank:
        Number of rank-1 components.
    n_iter:
        Maximum ALS sweeps.
    tol:
        Stop when the relative change in fit falls below this.
    ridge:
        Tiny Tikhonov term keeping the normal equations well posed
        when factors become collinear.
    """
    rank = int(rank)
    if rank < 1:
        raise RankError(f"CP rank must be >= 1, got {rank}")
    dense = _as_dense(tensor)
    if dense.ndim < 2:
        raise ShapeError("cp_als needs a tensor with at least 2 modes")
    factors = []
    for mode in range(dense.ndim):
        matricized = unfold(dense, mode)
        mode_rank = min(rank, min(matricized.shape))
        basis = leading_left_singular_vectors(matricized, mode_rank)
        if mode_rank < rank:
            # Pad with deterministic unit columns when the mode is too
            # small to supply `rank` singular vectors.
            pad = np.zeros((basis.shape[0], rank - mode_rank))
            extra = np.arange(rank - mode_rank)
            pad[extra % basis.shape[0], extra] = 1.0
            basis = np.hstack([basis, pad])
        factors.append(basis)
    weights = np.ones(rank)
    norm = np.linalg.norm(dense)
    previous_fit = -np.inf
    eye = np.eye(rank)
    for _sweep in range(max(1, int(n_iter))):
        for mode in range(dense.ndim):
            others = [factors[m] for m in range(dense.ndim) if m != mode]
            # Khatri-Rao over the *other* modes, ordered to match the
            # Fortran-order unfolding convention (first other mode
            # varies fastest -> it must be the LAST kr operand).
            kr = khatri_rao(list(reversed(others)))
            gram = np.ones((rank, rank))
            for other in others:
                gram *= other.T @ other
            rhs = unfold(dense, mode) @ kr
            solution = np.linalg.solve(gram + ridge * eye, rhs.T).T
            scales = np.linalg.norm(solution, axis=0)
            scales[scales == 0] = 1.0
            factors[mode] = solution / scales
            weights = scales
        model = CPTensor(weights, factors)
        fit = np.linalg.norm(model.reconstruct() - dense)
        if norm > 0 and abs(previous_fit - fit) / norm < tol:
            previous_fit = fit
            break
        previous_fit = fit
    return CPTensor(weights, factors)
