"""Coordinate-format (COO) sparse tensors.

Simulation ensembles are inherently sparse (Section III-D of the
paper): of the :math:`I_1 \\times \\cdots \\times I_N` potential
simulations only the budgeted :math:`B` cells carry values, the rest
are *null*.  :class:`SparseTensor` stores exactly the executed cells as
an ``(nnz, N)`` integer coordinate array plus an ``(nnz,)`` value
array.

A deliberate modelling point: a stored value of ``0.0`` is *not* the
same as an absent cell.  An absent cell means "simulation never run",
while an explicit zero means "simulation ran and its output was 0".
Zero-join stitching (Section V-C2) relies on this distinction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

import numpy as np
import scipy.sparse as sps

from ..exceptions import ModeError, ShapeError
from .unfold import check_mode


class SparseTensor:
    """An N-mode sparse tensor in coordinate format.

    Parameters
    ----------
    shape:
        Tensor shape ``(I_1, ..., I_N)``.
    coords:
        Integer array-like of shape ``(nnz, N)``; one row per stored cell.
    values:
        Float array-like of shape ``(nnz,)``.

    Duplicate coordinates are combined by *averaging* (the natural
    semantics for repeated simulations of the same configuration).
    """

    __slots__ = ("shape", "coords", "values")

    def __init__(self, shape: Tuple[int, ...], coords=None, values=None):
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ShapeError(f"all mode sizes must be positive, got {self.shape}")
        if coords is None:
            coords = np.empty((0, len(self.shape)), dtype=np.int64)
        if values is None:
            values = np.empty((0,), dtype=np.float64)
        coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
        values = np.asarray(values, dtype=np.float64).ravel()
        if coords.size == 0:
            coords = coords.reshape((0, len(self.shape)))
        if coords.shape[1] != len(self.shape):
            raise ShapeError(
                f"coords have {coords.shape[1]} columns, tensor has "
                f"{len(self.shape)} modes"
            )
        if coords.shape[0] != values.shape[0]:
            raise ShapeError(
                f"{coords.shape[0]} coordinates but {values.shape[0]} values"
            )
        if coords.size:
            upper = np.asarray(self.shape, dtype=np.int64)
            if (coords < 0).any() or (coords >= upper).any():
                raise ShapeError("coordinate out of bounds for tensor shape")
        self.coords, self.values = self._combine_duplicates(coords, values)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _combine_duplicates(coords: np.ndarray, values: np.ndarray):
        """Average values sharing the same coordinate; sort rows."""
        if coords.shape[0] == 0:
            return coords, values
        order = np.lexsort(coords.T[::-1])
        coords = coords[order]
        values = values[order]
        keep = np.ones(coords.shape[0], dtype=bool)
        keep[1:] = (coords[1:] != coords[:-1]).any(axis=1)
        if keep.all():
            return coords, values
        group_ids = np.cumsum(keep) - 1
        n_groups = group_ids[-1] + 1
        sums = np.zeros(n_groups)
        counts = np.zeros(n_groups)
        np.add.at(sums, group_ids, values)
        np.add.at(counts, group_ids, 1.0)
        return coords[keep], sums / counts

    @classmethod
    def from_dict(
        cls, shape: Tuple[int, ...], cells: Dict[tuple, float]
    ) -> "SparseTensor":
        """Build from a ``{multi_index: value}`` mapping."""
        if not cells:
            return cls(shape)
        coords = np.array(list(cells.keys()), dtype=np.int64)
        values = np.array(list(cells.values()), dtype=np.float64)
        return cls(shape, coords, values)

    @classmethod
    def from_dense(cls, dense: np.ndarray, keep_zeros: bool = False) -> "SparseTensor":
        """Build from a dense array, dropping exact zeros by default."""
        dense = np.asarray(dense, dtype=np.float64)
        if keep_zeros:
            coords = np.argwhere(np.ones_like(dense, dtype=bool))
            values = dense.ravel(order="C")
            # argwhere is C-ordered, so values align with C-raveled dense.
            return cls(dense.shape, coords, values)
        mask = dense != 0
        coords = np.argwhere(mask)
        values = dense[mask]
        return cls(dense.shape, coords, values)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (the paper's ensemble density)."""
        return self.nnz / self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseTensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.coords, other.coords)
            and np.allclose(self.values, other.values)
        )

    def __hash__(self):  # tensors are mutable-ish containers
        raise TypeError("SparseTensor is unhashable")

    def items(self) -> Iterator[Tuple[tuple, float]]:
        """Iterate over ``(multi_index, value)`` pairs."""
        for row, value in zip(self.coords, self.values):
            yield tuple(int(i) for i in row), float(value)

    def get(self, multi_index: Iterable[int], default: float = 0.0) -> float:
        """Value at ``multi_index``, or ``default`` if the cell is null.

        This is a point lookup intended for tests and small tensors;
        bulk consumers should use :meth:`to_dense` or the unfoldings.
        """
        target = np.asarray(tuple(multi_index), dtype=np.int64)
        if target.shape != (self.ndim,):
            raise ShapeError(
                f"index length {target.shape} != tensor order {self.ndim}"
            )
        matches = (self.coords == target).all(axis=1)
        hit = np.flatnonzero(matches)
        if hit.size == 0:
            return default
        return float(self.values[hit[0]])

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (null cells become 0.0)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            dense[tuple(self.coords.T)] = self.values
        return dense

    def unfold_csr(self, mode: int) -> sps.csr_matrix:
        """Mode-``mode`` matricization as a scipy CSR matrix.

        Shares the Fortran-order column convention of
        :func:`repro.tensor.unfold.unfold`, so sparse and dense code
        paths produce identical factor matrices.
        """
        mode = check_mode(self.ndim, mode)
        rows = self.coords[:, mode]
        cols = np.zeros(self.nnz, dtype=np.int64)
        stride = 1
        for axis, size in enumerate(self.shape):
            if axis == mode:
                continue
            cols += self.coords[:, axis] * stride
            stride *= size
        n_cols = self.size // self.shape[mode]
        return sps.csr_matrix(
            (self.values, (rows, cols)), shape=(self.shape[mode], n_cols)
        )

    def frobenius_norm(self) -> float:
        """Frobenius norm over stored cells (null cells contribute 0)."""
        return float(np.linalg.norm(self.values))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def transpose(self, permutation: Iterable[int]) -> "SparseTensor":
        """Permute modes; ``permutation[i]`` is the source mode of new mode ``i``."""
        permutation = tuple(int(p) for p in permutation)
        if sorted(permutation) != list(range(self.ndim)):
            raise ModeError(
                f"{permutation} is not a permutation of 0..{self.ndim - 1}"
            )
        new_shape = tuple(self.shape[p] for p in permutation)
        new_coords = (
            self.coords[:, permutation]
            if self.nnz
            else self.coords.reshape((0, self.ndim))
        )
        return SparseTensor(new_shape, new_coords, self.values.copy())

    def scale(self, factor: float) -> "SparseTensor":
        """Return a copy with every stored value multiplied by ``factor``."""
        return SparseTensor(self.shape, self.coords.copy(), self.values * factor)

    def slice_mode(self, mode: int, index: int) -> "SparseTensor":
        """Fix ``mode`` at ``index`` and drop it, returning an (N-1)-mode tensor."""
        mode = check_mode(self.ndim, mode)
        if not 0 <= index < self.shape[mode]:
            raise ModeError(f"index {index} out of range for mode {mode}")
        if self.ndim == 1:
            raise ShapeError("cannot drop the only mode of a 1-mode tensor")
        mask = self.coords[:, mode] == index
        kept_axes = [a for a in range(self.ndim) if a != mode]
        new_shape = tuple(self.shape[a] for a in kept_axes)
        new_coords = self.coords[mask][:, kept_axes]
        return SparseTensor(new_shape, new_coords, self.values[mask])
