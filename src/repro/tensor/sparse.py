"""Coordinate-format (COO) sparse tensors.

Simulation ensembles are inherently sparse (Section III-D of the
paper): of the :math:`I_1 \\times \\cdots \\times I_N` potential
simulations only the budgeted :math:`B` cells carry values, the rest
are *null*.  :class:`SparseTensor` stores exactly the executed cells as
an ``(nnz, N)`` integer coordinate array plus an ``(nnz,)`` value
array.

A deliberate modelling point: a stored value of ``0.0`` is *not* the
same as an absent cell.  An absent cell means "simulation never run",
while an explicit zero means "simulation ran and its output was 0".
Zero-join stitching (Section V-C2) relies on this distinction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sps

from ..exceptions import ModeError, ShapeError
from ..observability import get_metrics
from .unfold import check_mode


class CompiledLayout:
    """Sorted mode-major index arrays + memoized per-mode unfoldings.

    Built by :meth:`SparseTensor.compile`.  For each mode the layout
    holds the entry permutation that sorts coordinates mode-major
    (``(row, column)`` of that mode's matricization) plus the CSR
    structure arrays, so repeated ``unfold_csr`` calls — e.g. HOOI
    sweeps re-matricizing the same tensor every iteration — skip both
    the column arithmetic and scipy's COO→CSR canonicalization.  Cache
    hits are metered as ``tensor.unfold_cache_hits``.
    """

    __slots__ = ("mode_order", "mode_indices", "mode_indptr", "csr")

    def __init__(self):
        self.mode_order: Dict[int, np.ndarray] = {}
        self.mode_indices: Dict[int, np.ndarray] = {}
        self.mode_indptr: Dict[int, np.ndarray] = {}
        self.csr: Dict[int, sps.csr_matrix] = {}


class SparseTensor:
    """An N-mode sparse tensor in coordinate format.

    Parameters
    ----------
    shape:
        Tensor shape ``(I_1, ..., I_N)``.
    coords:
        Integer array-like of shape ``(nnz, N)``; one row per stored cell.
    values:
        Float array-like of shape ``(nnz,)``.

    Duplicate coordinates are combined by *averaging* (the natural
    semantics for repeated simulations of the same configuration).
    """

    __slots__ = ("shape", "coords", "values", "_layout")

    def __init__(self, shape: Tuple[int, ...], coords=None, values=None):
        self._layout: Optional[CompiledLayout] = None
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ShapeError(f"all mode sizes must be positive, got {self.shape}")
        if coords is None:
            coords = np.empty((0, len(self.shape)), dtype=np.int64)
        if values is None:
            values = np.empty((0,), dtype=np.float64)
        coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
        values = np.asarray(values, dtype=np.float64).ravel()
        if coords.size == 0:
            coords = coords.reshape((0, len(self.shape)))
        if coords.shape[1] != len(self.shape):
            raise ShapeError(
                f"coords have {coords.shape[1]} columns, tensor has "
                f"{len(self.shape)} modes"
            )
        if coords.shape[0] != values.shape[0]:
            raise ShapeError(
                f"{coords.shape[0]} coordinates but {values.shape[0]} values"
            )
        if coords.size:
            upper = np.asarray(self.shape, dtype=np.int64)
            if (coords < 0).any() or (coords >= upper).any():
                raise ShapeError("coordinate out of bounds for tensor shape")
        self.coords, self.values = self._combine_duplicates(coords, values)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _combine_duplicates(coords: np.ndarray, values: np.ndarray):
        """Average values sharing the same coordinate; sort rows."""
        if coords.shape[0] == 0:
            return coords, values
        order = np.lexsort(coords.T[::-1])
        coords = coords[order]
        values = values[order]
        keep = np.ones(coords.shape[0], dtype=bool)
        keep[1:] = (coords[1:] != coords[:-1]).any(axis=1)
        if keep.all():
            return coords, values
        group_ids = np.cumsum(keep) - 1
        n_groups = group_ids[-1] + 1
        sums = np.zeros(n_groups)
        counts = np.zeros(n_groups)
        np.add.at(sums, group_ids, values)
        np.add.at(counts, group_ids, 1.0)
        return coords[keep], sums / counts

    @classmethod
    def from_dict(
        cls, shape: Tuple[int, ...], cells: Dict[tuple, float]
    ) -> "SparseTensor":
        """Build from a ``{multi_index: value}`` mapping."""
        if not cells:
            return cls(shape)
        coords = np.array(list(cells.keys()), dtype=np.int64)
        values = np.array(list(cells.values()), dtype=np.float64)
        return cls(shape, coords, values)

    @classmethod
    def from_dense(cls, dense: np.ndarray, keep_zeros: bool = False) -> "SparseTensor":
        """Build from a dense array, dropping exact zeros by default."""
        dense = np.asarray(dense, dtype=np.float64)
        if keep_zeros:
            coords = np.argwhere(np.ones_like(dense, dtype=bool))
            values = dense.ravel(order="C")
            # argwhere is C-ordered, so values align with C-raveled dense.
            return cls(dense.shape, coords, values)
        mask = dense != 0
        coords = np.argwhere(mask)
        values = dense[mask]
        return cls(dense.shape, coords, values)

    @classmethod
    def from_canonical(
        cls, shape: Tuple[int, ...], coords: np.ndarray, values: np.ndarray
    ) -> "SparseTensor":
        """Build from coords already in canonical form, skipping dedup.

        Canonical means what :meth:`__init__` would produce: unique
        rows in C-order lexicographic order.  The invariant is checked
        in O(nnz) (a strictly increasing flat encoding, which also
        bounds-checks via :func:`numpy.ravel_multi_index`); inputs that
        fail it fall back to the full constructor, so this is always
        safe — just fast when the producer (e.g. JE-stitch assembly)
        already emits sorted unique cells.
        """
        shape = tuple(int(s) for s in shape)
        coords = np.asarray(coords, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64).ravel()
        if coords.ndim != 2 or coords.shape[0] != values.shape[0]:
            return cls(shape, coords, values)
        if coords.shape[0] == 0:
            return cls(shape)
        try:
            flat = np.ravel_multi_index(tuple(coords.T), shape)
        except ValueError:
            return cls(shape, coords, values)
        if coords.shape[0] > 1 and not (np.diff(flat) > 0).all():
            return cls(shape, coords, values)
        tensor = cls.__new__(cls)
        tensor.shape = shape
        tensor.coords = coords
        tensor.values = values
        tensor._layout = None
        return tensor

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def density(self) -> float:
        """Fraction of cells that are stored (the paper's ensemble density)."""
        return self.nnz / self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseTensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.coords, other.coords)
            and np.allclose(self.values, other.values)
        )

    def __hash__(self):  # tensors are mutable-ish containers
        raise TypeError("SparseTensor is unhashable")

    def items(self) -> Iterator[Tuple[tuple, float]]:
        """Iterate over ``(multi_index, value)`` pairs."""
        for row, value in zip(self.coords, self.values):
            yield tuple(int(i) for i in row), float(value)

    def get(self, multi_index: Iterable[int], default: float = 0.0) -> float:
        """Value at ``multi_index``, or ``default`` if the cell is null.

        This is a point lookup intended for tests and small tensors;
        bulk consumers should use :meth:`to_dense` or the unfoldings.
        """
        target = np.asarray(tuple(multi_index), dtype=np.int64)
        if target.shape != (self.ndim,):
            raise ShapeError(
                f"index length {target.shape} != tensor order {self.ndim}"
            )
        matches = (self.coords == target).all(axis=1)
        hit = np.flatnonzero(matches)
        if hit.size == 0:
            return default
        return float(self.values[hit[0]])

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (null cells become 0.0).

        Metered as ``tensor.dense_unfolds`` — the counter the Gram /
        compiled-layout kernels pin at zero to prove a sparse input was
        never densified on their watch.
        """
        get_metrics().counter("tensor.dense_unfolds").inc()
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            dense[tuple(self.coords.T)] = self.values
        return dense

    # ------------------------------------------------------------------
    # compiled layout
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> bool:
        """Whether :meth:`compile` has attached a layout."""
        return self._layout is not None

    def compile(self) -> "SparseTensor":
        """Attach a :class:`CompiledLayout` and return ``self``.

        Idempotent and purely an acceleration structure: coords and
        values are untouched, and every ``unfold_csr``/TTM result is
        exactly what the uncompiled tensor produces — the property
        suite asserts bit-identity.  Worth it whenever the same tensor
        is matricized more than once per mode (HOOI sweeps, repeated
        Gram accumulations).
        """
        if self._layout is None:
            self._layout = CompiledLayout()
        return self

    def _mode_structure(self, mode: int):
        """``(indptr, indices, order)`` of the mode-``mode`` CSR
        matricization: entries sorted mode-major (row, then column)."""
        layout = self._layout
        if layout is not None and mode in layout.mode_order:
            return (
                layout.mode_indptr[mode],
                layout.mode_indices[mode],
                layout.mode_order[mode],
            )
        rows = self.coords[:, mode]
        cols = np.zeros(self.nnz, dtype=np.int64)
        stride = 1
        for axis, size in enumerate(self.shape):
            if axis == mode:
                continue
            cols += self.coords[:, axis] * stride
            stride *= size
        order = np.lexsort((cols, rows))
        indices = cols[order]
        counts = np.bincount(rows, minlength=self.shape[mode])
        indptr = np.zeros(self.shape[mode] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if layout is not None:
            layout.mode_indptr[mode] = indptr
            layout.mode_indices[mode] = indices
            layout.mode_order[mode] = order
        return indptr, indices, order

    def unfold_csr(self, mode: int) -> sps.csr_matrix:
        """Mode-``mode`` matricization as a scipy CSR matrix.

        Shares the Fortran-order column convention of
        :func:`repro.tensor.unfold.unfold`, so sparse and dense code
        paths produce identical factor matrices.  On a compiled tensor
        the result is memoized per mode; repeat calls are cache hits
        (metered as ``tensor.unfold_cache_hits``).
        """
        mode = check_mode(self.ndim, mode)
        layout = self._layout
        if layout is not None and mode in layout.csr:
            get_metrics().counter("tensor.unfold_cache_hits").inc()
            return layout.csr[mode]
        indptr, indices, order = self._mode_structure(mode)
        n_cols = self.size // self.shape[mode]
        matrix = sps.csr_matrix(
            (self.values[order], indices, indptr),
            shape=(self.shape[mode], n_cols),
        )
        if layout is not None:
            layout.csr[mode] = matrix
        return matrix

    def frobenius_norm(self) -> float:
        """Frobenius norm over stored cells (null cells contribute 0)."""
        return float(np.linalg.norm(self.values))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def transpose(self, permutation: Iterable[int]) -> "SparseTensor":
        """Permute modes; ``permutation[i]`` is the source mode of new mode ``i``."""
        permutation = tuple(int(p) for p in permutation)
        if sorted(permutation) != list(range(self.ndim)):
            raise ModeError(
                f"{permutation} is not a permutation of 0..{self.ndim - 1}"
            )
        new_shape = tuple(self.shape[p] for p in permutation)
        new_coords = (
            self.coords[:, permutation]
            if self.nnz
            else self.coords.reshape((0, self.ndim))
        )
        return SparseTensor(new_shape, new_coords, self.values.copy())

    def scale(self, factor: float) -> "SparseTensor":
        """Return a copy with every stored value multiplied by ``factor``."""
        return SparseTensor(self.shape, self.coords.copy(), self.values * factor)

    def slice_mode(self, mode: int, index: int) -> "SparseTensor":
        """Fix ``mode`` at ``index`` and drop it, returning an (N-1)-mode tensor."""
        mode = check_mode(self.ndim, mode)
        if not 0 <= index < self.shape[mode]:
            raise ModeError(f"index {index} out of range for mode {mode}")
        if self.ndim == 1:
            raise ShapeError("cannot drop the only mode of a 1-mode tensor")
        mask = self.coords[:, mode] == index
        kept_axes = [a for a in range(self.ndim) if a != mode]
        new_shape = tuple(self.shape[a] for a in kept_axes)
        new_coords = self.coords[mask][:, kept_axes]
        return SparseTensor(new_shape, new_coords, self.values[mask])
