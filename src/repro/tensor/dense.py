"""Dense-tensor convenience helpers.

Dense tensors in this library are plain ``numpy.ndarray`` objects; the
functions here add the handful of operations the rest of the code
needs beyond raw numpy (mode statistics, normalization, masking
against a sparse observation pattern).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ShapeError
from .sparse import SparseTensor
from .unfold import check_mode


def as_tensor(data, ndim: int = None) -> np.ndarray:
    """Coerce to a float64 ndarray, optionally checking the mode count."""
    tensor = np.asarray(data, dtype=np.float64)
    if ndim is not None and tensor.ndim != ndim:
        raise ShapeError(f"expected a {ndim}-mode tensor, got {tensor.ndim}")
    return tensor


def mode_means(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mean over all modes except ``mode`` — one value per mode index."""
    tensor = as_tensor(tensor)
    mode = check_mode(tensor.ndim, mode)
    axes = tuple(a for a in range(tensor.ndim) if a != mode)
    return tensor.mean(axis=axes)


def normalize(tensor: np.ndarray) -> np.ndarray:
    """Scale to unit Frobenius norm (zero tensors pass through)."""
    tensor = as_tensor(tensor)
    norm = np.linalg.norm(tensor.ravel())
    if norm == 0:
        return tensor.copy()
    return tensor / norm


def mask_like(dense: np.ndarray, pattern: SparseTensor) -> SparseTensor:
    """Sample ``dense`` at the stored coordinates of ``pattern``.

    This is how experiment code turns the ground-truth full-space
    tensor ``Y`` into the sparse ensemble tensor ``X`` for a chosen
    sample set: same coordinates, values read from ``Y``.
    """
    dense = as_tensor(dense)
    if dense.shape != pattern.shape:
        raise ShapeError(
            f"dense shape {dense.shape} != pattern shape {pattern.shape}"
        )
    if pattern.nnz == 0:
        return SparseTensor(pattern.shape)
    values = dense[tuple(pattern.coords.T)]
    return SparseTensor(pattern.shape, pattern.coords.copy(), values)


def pad_to_shape(tensor: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Zero-pad a tensor up to ``shape`` (each mode can only grow)."""
    tensor = as_tensor(tensor)
    shape = tuple(int(s) for s in shape)
    if len(shape) != tensor.ndim:
        raise ShapeError("pad_to_shape cannot change the number of modes")
    for current, target in zip(tensor.shape, shape):
        if target < current:
            raise ShapeError(
                f"target shape {shape} smaller than tensor shape {tensor.shape}"
            )
    padded = np.zeros(shape, dtype=np.float64)
    padded[tuple(slice(0, s) for s in tensor.shape)] = tensor
    return padded
