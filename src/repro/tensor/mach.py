"""MACH: randomized Tucker decomposition by entry subsampling.

Tsourakakis's MACH (paper reference [31]) speeds up Tucker
decomposition of a large tensor by keeping each entry independently
with probability ``p`` (scaled by ``1/p``) and decomposing the sparse
sketch; concentration arguments bound the spectral error.  The paper
cites it as a scalable-decomposition alternative; here it backs the
opt-in ``method="sketched"`` fast path of the Tucker kernels and the
M2TD variants, with :func:`sketch_curve` recording the
accuracy-vs-speed trade-off at each rung of
:data:`KEEP_PROBABILITY_SCHEDULE`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Union

import numpy as np

from ..exceptions import ShapeError, SketchError
from ..observability import get_metrics, span as _span
from .random import SeedLike, make_rng
from .sparse import SparseTensor
from .tucker import TuckerTensor, hosvd, validate_ranks

TensorLike = Union[np.ndarray, SparseTensor]

#: The keep-probability ladder the bench harness and
#: :func:`sketch_curve` sweep: from "practically exact" down to the
#: aggressive end where MACH's concentration bounds start to fray for
#: small ensembles.  1.0 is deliberately included — the kernels
#: short-circuit it to the exact path, so the curve always has an
#: exact anchor point.
KEEP_PROBABILITY_SCHEDULE: Sequence[float] = (1.0, 0.75, 0.5, 0.25, 0.1)


def sparsify(
    tensor: TensorLike, keep_probability: float, seed: SeedLike = None
) -> SparseTensor:
    """Keep each entry with probability ``p``, scaling survivors by
    ``1/p`` (an unbiased sketch of the input).

    Raises
    ------
    SketchError
        If the input had stored entries but the sketch dropped every
        one of them — an empty sketch has no computable factor
        subspaces, and feeding it onward would surface as a confusing
        rank failure deep inside HOSVD.  Callers that prefer graceful
        degradation catch this and fall back to the exact kernel
        (``method="sketched"`` dispatch does exactly that).
    """
    if not 0.0 < keep_probability <= 1.0:
        raise ShapeError(
            f"keep_probability must be in (0, 1], got {keep_probability}"
        )
    rng = make_rng(seed)
    with _span("sparsify", "sketch", shape=tensor.shape,
               keep_probability=keep_probability):
        if isinstance(tensor, SparseTensor):
            had_entries = tensor.nnz > 0
            keep = rng.random(tensor.nnz) < keep_probability
            sketch = SparseTensor(
                tensor.shape,
                tensor.coords[keep],
                tensor.values[keep] / keep_probability,
            )
        else:
            dense = np.asarray(tensor, dtype=np.float64)
            had_entries = dense.size > 0
            keep = rng.random(dense.shape) < keep_probability
            coords = np.argwhere(keep)
            values = dense[keep] / keep_probability
            sketch = SparseTensor(dense.shape, coords, values)
        if had_entries and sketch.nnz == 0:
            raise SketchError(
                f"sketch at keep_probability={keep_probability} dropped "
                "every entry; raise keep_probability or change the seed"
            )
        get_metrics().counter("tensor.sketches").inc()
        return sketch


def suggested_keep_probability(tensor: TensorLike) -> float:
    """MACH's guidance ``p = Omega(log n / sqrt(n))`` on the largest
    mode, clamped into the schedule's range.

    A heuristic, not a guarantee — use :func:`sketch_curve` to check
    the accuracy actually achieved on a given ensemble.
    """
    n = max(int(s) for s in tensor.shape)
    if n <= 1:
        return 1.0
    p = float(np.log(n) / np.sqrt(n))
    return float(min(1.0, max(min(KEEP_PROBABILITY_SCHEDULE), p)))


def mach_tucker(
    tensor: TensorLike,
    ranks: Sequence[int],
    keep_probability: float = 0.1,
    seed: SeedLike = None,
) -> TuckerTensor:
    """MACH: sparsify, then HOSVD the sketch.

    Parameters
    ----------
    tensor:
        Input tensor (dense or sparse).
    ranks:
        Tucker rank per mode.
    keep_probability:
        Sampling rate ``p``; MACH's guarantees want
        ``p = Omega(log n / sqrt(n))`` per mode, but any value in
        ``(0, 1]`` runs.
    seed:
        Seed for the Bernoulli sampling.

    Raises
    ------
    SketchError
        If the sketch dropped every stored entry (see :func:`sparsify`).
    """
    ranks = validate_ranks(tensor.shape, ranks)
    sketch = sparsify(tensor, keep_probability, seed=seed)
    return hosvd(sketch, ranks)


def mach_error_vs_exact(
    tensor: np.ndarray,
    ranks: Sequence[int],
    keep_probability: float,
    seed: SeedLike = None,
) -> float:
    """Relative Frobenius gap between the MACH reconstruction and the
    exact HOSVD reconstruction at the same ranks (diagnostic used by
    the ablation bench)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    exact = hosvd(tensor, ranks).reconstruct()
    sketched = mach_tucker(
        tensor, ranks, keep_probability=keep_probability, seed=seed
    ).reconstruct()
    denom = np.linalg.norm(exact.ravel())
    if denom == 0:
        return 0.0
    return float(np.linalg.norm((sketched - exact).ravel()) / denom)


def sketch_curve(
    tensor: TensorLike,
    ranks: Sequence[int],
    probabilities: Sequence[float] = KEEP_PROBABILITY_SCHEDULE,
    seed: SeedLike = 0,
    reference: np.ndarray = None,
) -> List[Dict[str, float]]:
    """Record the accuracy-vs-speed curve of sketched HOSVD.

    For each keep probability the sketch+decompose wall time and the
    relative Frobenius error of the reconstruction against
    ``reference`` (the dense input by default) are measured.  Returns
    one ``{"keep_probability", "seconds", "relative_error"}`` row per
    probability — the raw material for docs/kernels.md trade-off
    tables and the ``kernel.sketched.*`` workloads.
    """
    from .ops import relative_error  # local: ops imports nothing heavy

    if reference is None:
        reference = (
            tensor.to_dense()
            if isinstance(tensor, SparseTensor)
            else np.asarray(tensor, dtype=np.float64)
        )
    rows: List[Dict[str, float]] = []
    for p in probabilities:
        start = time.perf_counter()
        if p >= 1.0:
            decomposition = hosvd(tensor, ranks)
        else:
            try:
                decomposition = mach_tucker(
                    tensor, ranks, keep_probability=p, seed=seed
                )
            except SketchError:
                continue
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "keep_probability": float(p),
                "seconds": float(elapsed),
                "relative_error": float(
                    relative_error(decomposition.reconstruct(), reference)
                ),
            }
        )
    return rows
