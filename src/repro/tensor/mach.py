"""MACH: randomized Tucker decomposition by entry subsampling.

Tsourakakis's MACH (paper reference [31]) speeds up Tucker
decomposition of a large tensor by keeping each entry independently
with probability ``p`` (scaled by ``1/p``) and decomposing the sparse
sketch; concentration arguments bound the spectral error.  The paper
cites it as a scalable-decomposition alternative; this implementation
lets the harness compare "sparsify then decompose" against the
partition-stitch pipeline on equal terms.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..exceptions import RankError, ShapeError
from .random import SeedLike, make_rng
from .sparse import SparseTensor
from .tucker import TuckerTensor, hosvd, validate_ranks

TensorLike = Union[np.ndarray, SparseTensor]


def sparsify(
    tensor: TensorLike, keep_probability: float, seed: SeedLike = None
) -> SparseTensor:
    """Keep each entry with probability ``p``, scaling survivors by
    ``1/p`` (an unbiased sketch of the input)."""
    if not 0.0 < keep_probability <= 1.0:
        raise ShapeError(
            f"keep_probability must be in (0, 1], got {keep_probability}"
        )
    rng = make_rng(seed)
    if isinstance(tensor, SparseTensor):
        keep = rng.random(tensor.nnz) < keep_probability
        return SparseTensor(
            tensor.shape,
            tensor.coords[keep],
            tensor.values[keep] / keep_probability,
        )
    dense = np.asarray(tensor, dtype=np.float64)
    keep = rng.random(dense.shape) < keep_probability
    coords = np.argwhere(keep)
    values = dense[keep] / keep_probability
    return SparseTensor(dense.shape, coords, values)


def mach_tucker(
    tensor: TensorLike,
    ranks: Sequence[int],
    keep_probability: float = 0.1,
    seed: SeedLike = None,
) -> TuckerTensor:
    """MACH: sparsify, then HOSVD the sketch.

    Parameters
    ----------
    tensor:
        Input tensor (dense or sparse).
    ranks:
        Tucker rank per mode.
    keep_probability:
        Sampling rate ``p``; MACH's guarantees want
        ``p = Omega(log n / sqrt(n))`` per mode, but any value in
        ``(0, 1]`` runs.
    seed:
        Seed for the Bernoulli sampling.
    """
    ranks = validate_ranks(tensor.shape, ranks)
    sketch = sparsify(tensor, keep_probability, seed=seed)
    if sketch.nnz == 0:
        raise RankError(
            "MACH sketch is empty; raise keep_probability or the seed"
        )
    return hosvd(sketch, ranks)


def mach_error_vs_exact(
    tensor: np.ndarray,
    ranks: Sequence[int],
    keep_probability: float,
    seed: SeedLike = None,
) -> float:
    """Relative Frobenius gap between the MACH reconstruction and the
    exact HOSVD reconstruction at the same ranks (diagnostic used by
    the ablation bench)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    exact = hosvd(tensor, ranks).reconstruct()
    sketched = mach_tucker(
        tensor, ranks, keep_probability=keep_probability, seed=seed
    ).reconstruct()
    denom = np.linalg.norm(exact.ravel())
    if denom == 0:
        return 0.0
    return float(np.linalg.norm((sketched - exact).ravel()) / denom)
