"""Tensor matricization (unfolding) and its inverse (folding).

The mode-``n`` unfolding of an ``N``-mode tensor arranges the mode-``n``
fibers as the columns of a matrix.  We follow the Kolda & Bader
convention (also the one the paper's HOSVD pseudocode assumes): the
mode-``n`` unfolding of a tensor of shape ``(I_1, ..., I_N)`` has shape
``(I_n, prod_{m != n} I_m)`` and the remaining modes vary with mode
``n+1`` fastest excluded... concretely, column index ``j`` maps to the
multi-index obtained by iterating the non-``n`` modes in order
``(1, ..., n-1, n+1, ..., N)`` with the *first* of those varying
fastest (Fortran-style), matching ``numpy.moveaxis + reshape(order='F')``.

Only the pair of functions here needs to agree internally; every
consumer in the library unfolds and folds through this module.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ModeError, ShapeError
from ..observability import span as _span


def check_mode(ndim: int, mode: int) -> int:
    """Validate ``mode`` against a tensor with ``ndim`` modes.

    Negative modes are supported with the usual Python semantics.
    Returns the normalized (non-negative) mode index.
    """
    if not isinstance(mode, (int, np.integer)):
        raise ModeError(f"mode must be an integer, got {type(mode).__name__}")
    normalized = int(mode)
    if normalized < 0:
        normalized += ndim
    if not 0 <= normalized < ndim:
        raise ModeError(f"mode {mode} out of range for a {ndim}-mode tensor")
    return normalized


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Return the mode-``mode`` matricization of ``tensor``.

    Parameters
    ----------
    tensor:
        A dense numpy array with at least one mode.
    mode:
        The mode whose fibers become the columns of the result.

    Returns
    -------
    numpy.ndarray
        A matrix of shape ``(tensor.shape[mode], tensor.size // tensor.shape[mode])``.
    """
    tensor = np.asarray(tensor)
    if tensor.ndim == 0:
        raise ShapeError("cannot unfold a 0-mode tensor")
    mode = check_mode(tensor.ndim, mode)
    with _span("unfold", "tensor-op", shape=tensor.shape, mode=mode):
        return np.moveaxis(tensor, mode, 0).reshape(
            (tensor.shape[mode], -1), order="F"
        )


def fold(matrix: np.ndarray, mode: int, shape: tuple) -> np.ndarray:
    """Inverse of :func:`unfold`.

    Parameters
    ----------
    matrix:
        A matrix produced by (or shaped like the output of)
        ``unfold(tensor, mode)`` for a tensor of shape ``shape``.
    mode:
        The mode that was unfolded.
    shape:
        The shape of the original tensor.

    Returns
    -------
    numpy.ndarray
        The re-folded tensor of shape ``shape``.
    """
    matrix = np.asarray(matrix)
    shape = tuple(int(s) for s in shape)
    if matrix.ndim != 2:
        raise ShapeError(f"fold expects a matrix, got ndim={matrix.ndim}")
    mode = check_mode(len(shape), mode)
    expected = (shape[mode], int(np.prod(shape)) // shape[mode] if shape[mode] else 0)
    if matrix.shape != expected:
        raise ShapeError(
            f"matrix shape {matrix.shape} does not match mode-{mode} "
            f"unfolding {expected} of tensor shape {shape}"
        )
    moved_shape = (shape[mode],) + tuple(
        s for i, s in enumerate(shape) if i != mode
    )
    with _span("fold", "tensor-op", shape=shape, mode=mode):
        return np.moveaxis(
            matrix.reshape(moved_shape, order="F"), 0, mode
        )


def unfold_row_index(multi_index: tuple, shape: tuple, mode: int) -> tuple:
    """Map a tensor multi-index to its (row, col) position in the
    mode-``mode`` unfolding.

    Useful for sparse matricization: a non-zero at ``multi_index`` lands
    at row ``multi_index[mode]`` and a column computed Fortran-style
    over the remaining modes.
    """
    shape = tuple(int(s) for s in shape)
    mode = check_mode(len(shape), mode)
    if len(multi_index) != len(shape):
        raise ShapeError(
            f"multi-index length {len(multi_index)} != tensor order {len(shape)}"
        )
    row = int(multi_index[mode])
    col = 0
    stride = 1
    for axis, size in enumerate(shape):
        if axis == mode:
            continue
        col += int(multi_index[axis]) * stride
        stride *= size
    return row, col
