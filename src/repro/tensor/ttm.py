"""Tensor-times-matrix (n-mode) products.

The n-mode product :math:`\\mathcal{X} \\times_n U` multiplies every
mode-``n`` fiber of :math:`\\mathcal{X}` by the matrix ``U``; it is the
workhorse of Tucker reconstruction and of core recovery
(:math:`G = \\mathcal{J} \\times_1 U^{(1)T} \\cdots \\times_N U^{(N)T}`,
Algorithms 2–4 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..exceptions import ShapeError
from ..observability import span as _span
from .unfold import check_mode, fold, unfold


def ttm(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` product of a dense tensor with a matrix.

    Parameters
    ----------
    tensor:
        Dense array of shape ``(I_1, ..., I_N)``.
    matrix:
        Matrix of shape ``(J, I_mode)``.
    mode:
        The mode to contract.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(I_1, ..., J, ..., I_N)``.
    """
    tensor = np.asarray(tensor)
    matrix = np.asarray(matrix)
    mode = check_mode(tensor.ndim, mode)
    if matrix.ndim != 2:
        raise ShapeError(f"ttm expects a matrix, got ndim={matrix.ndim}")
    if matrix.shape[1] != tensor.shape[mode]:
        raise ShapeError(
            f"matrix has {matrix.shape[1]} columns but mode {mode} has "
            f"size {tensor.shape[mode]}"
        )
    result_shape = list(tensor.shape)
    result_shape[mode] = matrix.shape[0]
    with _span("ttm", "tensor-op", shape=tensor.shape, mode=mode,
               rows=matrix.shape[0]):
        product = matrix @ unfold(tensor, mode)
        return fold(product, mode, tuple(result_shape))


def multi_ttm(
    tensor: np.ndarray,
    matrices: Sequence[Optional[np.ndarray]],
    transpose: bool = False,
    skip: Optional[Iterable[int]] = None,
) -> np.ndarray:
    """Apply a sequence of n-mode products, one matrix per mode.

    Parameters
    ----------
    tensor:
        Dense input tensor with ``N`` modes.
    matrices:
        Length-``N`` sequence; entry ``n`` is contracted with mode ``n``.
        ``None`` entries are skipped.
    transpose:
        If true, each matrix is transposed before contraction — the
        idiom for projecting onto factor subspaces (core recovery).
    skip:
        Optional mode indices to skip even if a matrix is given
        (used by HOOI's leave-one-out projections).

    Notes
    -----
    Modes are processed in increasing order; because each product
    touches a different mode the order does not affect the result.
    """
    tensor = np.asarray(tensor)
    if len(matrices) != tensor.ndim:
        raise ShapeError(
            f"need one matrix per mode ({tensor.ndim}), got {len(matrices)}"
        )
    skip_set = set() if skip is None else {check_mode(tensor.ndim, s) for s in skip}
    with _span("multi-ttm", "tensor-op", shape=tensor.shape,
               transpose=transpose):
        result = tensor
        for mode, matrix in enumerate(matrices):
            if matrix is None or mode in skip_set:
                continue
            operand = np.asarray(matrix).T if transpose else np.asarray(matrix)
            result = ttm(result, operand, mode)
        return result


def ttv(tensor: np.ndarray, vector: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` product with a vector (drops the mode).

    Equivalent to ``ttm`` with a ``(1, I_mode)`` matrix followed by a
    squeeze of that mode.
    """
    tensor = np.asarray(tensor)
    vector = np.asarray(vector).ravel()
    mode = check_mode(tensor.ndim, mode)
    if vector.shape[0] != tensor.shape[mode]:
        raise ShapeError(
            f"vector has length {vector.shape[0]} but mode {mode} has "
            f"size {tensor.shape[mode]}"
        )
    return np.tensordot(tensor, vector, axes=([mode], [0]))
