"""Tensor algebra substrate: dense/sparse tensors, unfoldings, n-mode
products, deterministic truncated SVD, Tucker (HOSVD/HOOI) and CP-ALS.

This package is self-contained (numpy/scipy only) and is the
foundation the M2TD algorithms in :mod:`repro.core` build on.
"""

from .completion import CompletionResult, completion_accuracy, em_tucker
from .cp import CPTensor, cp_als
from .gram import (
    gram_hosvd,
    gram_st_hosvd,
    mode_gram,
    sparse_project,
    sparse_ttm,
)
from .mach import (
    KEEP_PROBABILITY_SCHEDULE,
    mach_error_vs_exact,
    mach_tucker,
    sketch_curve,
    sparsify,
    suggested_keep_probability,
)
from .dense import as_tensor, mask_like, mode_means, normalize, pad_to_shape
from .ops import frobenius_norm, inner, khatri_rao, kron, outer, relative_error
from .rank_selection import (
    describe_rank_profile,
    energy_rank_of_matrix,
    energy_threshold_ranks,
)
from .random import (
    make_rng,
    random_dense,
    random_low_rank,
    random_orthonormal,
    random_sparse,
    spawn_seeds,
)
from .sparse import SparseTensor
from .svd import (
    deterministic_signs,
    leading_left_singular_vectors,
    spectral_energy,
    truncated_svd,
)
from .ttm import multi_ttm, ttm, ttv
from .tucker import (
    METHODS,
    TuckerTensor,
    check_method,
    clip_ranks,
    hooi,
    hosvd,
    st_hosvd,
    validate_ranks,
)
from .unfold import fold, unfold, unfold_row_index

__all__ = [
    "CompletionResult",
    "completion_accuracy",
    "em_tucker",
    "KEEP_PROBABILITY_SCHEDULE",
    "mach_error_vs_exact",
    "mach_tucker",
    "sketch_curve",
    "sparsify",
    "suggested_keep_probability",
    "gram_hosvd",
    "gram_st_hosvd",
    "mode_gram",
    "sparse_project",
    "sparse_ttm",
    "describe_rank_profile",
    "energy_rank_of_matrix",
    "energy_threshold_ranks",
    "CPTensor",
    "cp_als",
    "as_tensor",
    "mask_like",
    "mode_means",
    "normalize",
    "pad_to_shape",
    "frobenius_norm",
    "inner",
    "khatri_rao",
    "kron",
    "outer",
    "relative_error",
    "make_rng",
    "random_dense",
    "random_low_rank",
    "random_orthonormal",
    "random_sparse",
    "spawn_seeds",
    "SparseTensor",
    "deterministic_signs",
    "leading_left_singular_vectors",
    "spectral_energy",
    "truncated_svd",
    "multi_ttm",
    "ttm",
    "ttv",
    "METHODS",
    "TuckerTensor",
    "check_method",
    "clip_ranks",
    "hooi",
    "hosvd",
    "st_hosvd",
    "validate_ranks",
    "fold",
    "unfold",
    "unfold_row_index",
]
