"""Incremental truncated SVD updates (row and column appends).

Simulation ensembles grow: a running study appends new time samples
(new pivot slices) to its sub-ensembles.  Re-running the SVD of every
matricization from scratch wastes the work already done; the classic
Brand-style update folds new rows/columns into an existing truncated
SVD at ``O((r + c)^2 (m + n))`` cost instead of a fresh
``O(m n min(m, n))``.

Used by :mod:`repro.core.incremental` (time-incremental M2TD).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import RankError, ShapeError
from .svd import sign_flip_mask

SvdTriple = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _validate(u: np.ndarray, s: np.ndarray, vt: np.ndarray) -> None:
    if u.ndim != 2 or vt.ndim != 2 or s.ndim != 1:
        raise ShapeError("u/vt must be matrices and s a vector")
    if u.shape[1] != s.shape[0] or vt.shape[0] != s.shape[0]:
        raise ShapeError(
            f"inconsistent SVD triple: u {u.shape}, s {s.shape}, "
            f"vt {vt.shape}"
        )


def _fix_signs(u: np.ndarray, vt: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    flip = sign_flip_mask(u)
    u = np.array(u, copy=True)
    vt = np.array(vt, copy=True)
    u[:, flip] *= -1.0
    vt[flip, :] *= -1.0
    return u, vt


def append_rows(
    u: np.ndarray,
    s: np.ndarray,
    vt: np.ndarray,
    rows: np.ndarray,
    rank: int,
) -> SvdTriple:
    """Update ``X = U diag(s) Vt`` to the SVD of ``[X; rows]``.

    Parameters
    ----------
    u, s, vt:
        Current (possibly truncated) SVD of the ``m x n`` matrix.
    rows:
        New rows, shape ``(c, n)``.
    rank:
        Target rank of the updated factorization (clipped to what the
        updated matrix supports).

    Returns
    -------
    (u', s', vt')
        Truncated SVD of the row-augmented matrix.  Exact when the
        current triple is exact; otherwise the best update within the
        retained subspace.
    """
    u = np.asarray(u, dtype=np.float64)
    s = np.asarray(s, dtype=np.float64).ravel()
    vt = np.asarray(vt, dtype=np.float64)
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    _validate(u, s, vt)
    if rows.shape[1] != vt.shape[1]:
        raise ShapeError(
            f"new rows have {rows.shape[1]} columns, matrix has "
            f"{vt.shape[1]}"
        )
    rank = int(rank)
    if rank < 1:
        raise RankError(f"rank must be >= 1, got {rank}")
    r = s.shape[0]
    c = rows.shape[0]
    # Project new rows onto the current right space; orthogonalize the
    # out-of-subspace residual.
    projection = rows @ vt.T  # (c, r)
    residual = rows - projection @ vt  # (c, n)
    q_basis, r_tri = np.linalg.qr(residual.T)  # (n, q), (q, c)
    # Drop numerically-null residual directions (q = min(n, c) QR
    # columns; direction j is null when its R row is ~zero).
    row_norms = np.linalg.norm(r_tri, axis=1)
    keep = row_norms > 1e-12 * max(1.0, float(np.abs(s).max(initial=0.0)))
    q_basis = q_basis[:, keep]
    extra = int(keep.sum())
    middle = np.zeros((r + c, r + extra))
    middle[:r, :r] = np.diag(s)
    middle[r:, :r] = projection
    if extra:
        middle[r:, r:] = residual @ q_basis
    mu, ms, mvt = np.linalg.svd(middle, full_matrices=False)
    new_rank = min(rank, ms.shape[0], u.shape[0] + c, vt.shape[1])
    mu, ms, mvt = mu[:, :new_rank], ms[:new_rank], mvt[:new_rank]
    left = np.zeros((u.shape[0] + c, r + c))
    left[: u.shape[0], :r] = u
    left[u.shape[0] :, r:] = np.eye(c)
    right = np.hstack([vt.T, q_basis]) if extra else vt.T
    u_new = left @ mu
    vt_new = (right @ mvt.T).T
    u_new, vt_new = _fix_signs(u_new, vt_new)
    return u_new, ms, vt_new


def append_cols(
    u: np.ndarray,
    s: np.ndarray,
    vt: np.ndarray,
    cols: np.ndarray,
    rank: int,
) -> SvdTriple:
    """Update ``X = U diag(s) Vt`` to the SVD of ``[X, cols]``.

    ``cols`` has shape ``(m, c)``.  Implemented as the transpose dual
    of :func:`append_rows`.
    """
    cols = np.atleast_2d(np.asarray(cols, dtype=np.float64))
    if cols.shape[0] != np.asarray(u).shape[0]:
        raise ShapeError(
            f"new columns have {cols.shape[0]} rows, matrix has "
            f"{np.asarray(u).shape[0]}"
        )
    vt_t, s_new, u_t = append_rows(
        np.asarray(vt).T, s, np.asarray(u).T, cols.T, rank
    )
    return u_t.T, s_new, vt_t.T


def exact_svd(matrix: np.ndarray, rank: int) -> SvdTriple:
    """Fresh truncated SVD in the same triple format (test helper)."""
    from .svd import truncated_svd

    return truncated_svd(np.asarray(matrix, dtype=np.float64), rank)
