"""Deterministic truncated SVD for dense and sparse matricizations.

Every factor matrix in this library (HOSVD, HOOI, all three M2TD
variants) comes out of :func:`leading_left_singular_vectors`, so the
sign convention and the dense/sparse dispatch live in exactly one
place.

Determinism matters more here than in a generic linear-algebra
library: M2TD-AVG *averages* factor matrices from two independent
decompositions and ROW_SELECT compares their rows, so a random sign
flip between the two would silently corrupt the stitched factors.
We therefore normalize each singular vector so that its entry of
largest magnitude is positive.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.sparse as sps
import scipy.sparse.linalg as spla

from ..exceptions import RankError
from ..observability import get_metrics, span as _span

MatrixLike = Union[np.ndarray, sps.spmatrix]


def sign_flip_mask(basis: np.ndarray) -> np.ndarray:
    """Boolean mask of columns whose largest-|entry| is negative."""
    if basis.size == 0:
        return np.zeros(basis.shape[1], dtype=bool)
    pivot_rows = np.abs(basis).argmax(axis=0)
    pivots = basis[pivot_rows, np.arange(basis.shape[1])]
    return pivots < 0


def deterministic_signs(basis: np.ndarray) -> np.ndarray:
    """Flip column signs so the largest-|entry| of each column is positive.

    Columns that are entirely zero are left untouched.
    """
    basis = np.array(basis, dtype=np.float64, copy=True)
    flip = sign_flip_mask(basis)
    basis[:, flip] *= -1.0
    return basis


def _validate_rank(matrix_shape: Tuple[int, int], rank: int) -> int:
    rank = int(rank)
    if rank < 1:
        raise RankError(f"rank must be >= 1, got {rank}")
    max_rank = min(matrix_shape)
    if rank > max_rank:
        raise RankError(
            f"rank {rank} exceeds max rank {max_rank} of a "
            f"{matrix_shape[0]}x{matrix_shape[1]} matrix"
        )
    return rank


def truncated_svd(
    matrix: MatrixLike, rank: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-``rank`` truncated SVD with deterministic signs.

    Returns ``(U, s, Vt)`` with ``U`` of shape ``(m, rank)``, singular
    values sorted in decreasing order, and signs normalized jointly on
    ``U``/``Vt`` so that ``U @ diag(s) @ Vt`` still reconstructs the
    input.  Sparse inputs use ``scipy.sparse.linalg.svds`` when the
    requested rank is strictly below ``min(shape)``; otherwise (or for
    small matrices) the input is densified and LAPACK is used —
    ``svds`` cannot compute a full spectrum.
    """
    rank = _validate_rank(matrix.shape, rank)
    is_sparse = sps.issparse(matrix)
    small = min(matrix.shape) <= 32
    metrics = get_metrics()
    metrics.counter("svd.calls").inc()
    metrics.histogram("svd.rank").observe(rank)
    with _span(
        "truncated-svd",
        "decompose",
        shape=matrix.shape,
        rank=rank,
        sparse=bool(is_sparse),
    ):
        if is_sparse and not small and rank < min(matrix.shape):
            # v0 fixed for determinism of the underlying Lanczos iteration.
            v0 = np.ones(min(matrix.shape), dtype=np.float64)
            u, s, vt = spla.svds(matrix.astype(np.float64), k=rank, v0=v0)
            order = np.argsort(s)[::-1]
            u, s, vt = u[:, order], s[order], vt[order]
        else:
            if is_sparse:
                # A sparse matricization is being materialized densely;
                # the Gram kernels exist to keep this counter at zero.
                metrics.counter("tensor.dense_unfolds").inc()
                dense = matrix.toarray()
            else:
                dense = np.asarray(matrix, dtype=np.float64)
            u, s, vt = np.linalg.svd(dense, full_matrices=False)
            u, s, vt = u[:, :rank], s[:rank], vt[:rank]
        u = np.array(u, dtype=np.float64, copy=True)
        vt = np.array(vt, dtype=np.float64, copy=True)
        flip = sign_flip_mask(u)
        u[:, flip] *= -1.0
        vt[flip, :] *= -1.0
        return u, s, vt


#: Width ratio past which the Gram route beats a full LAPACK SVD: for
#: an (m, n) matricization with n >> m, eigendecomposing the (m, m)
#: Gram matrix skips the O(m·n) right-singular-vector computation the
#: caller throws away.
GRAM_ASPECT = 4


def gram_left_singular_vectors(gram: np.ndarray, rank: int) -> np.ndarray:
    """Leading left singular vectors from a Gram matrix ``X X^T``.

    The left singular vectors of ``X`` are the eigenvectors of its
    Gram matrix ordered by decreasing eigenvalue; signs are normalized
    with the same largest-|entry|-positive convention as
    :func:`truncated_svd`, so the two routes agree up to the usual
    ``eps * kappa^2`` eigenvector perturbation.
    """
    gram = np.asarray(gram, dtype=np.float64)
    rank = _validate_rank(gram.shape, rank)
    _w, vectors = np.linalg.eigh(gram)
    # eigh orders ascending; the leading singular vectors are the last
    # ``rank`` columns, reversed.
    return deterministic_signs(vectors[:, : -rank - 1 : -1])


def gram_singular_pairs(
    gram: np.ndarray, rank: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(U, s)`` — leading left singular vectors *and* singular values
    recovered from a Gram matrix ``X X^T``.

    The singular values are the square roots of the eigenvalues
    (clipped at zero against roundoff), which the M2TD pivot combiners
    (AVG's width trimming, SELECT's row-energy comparison) need
    alongside the vectors.
    """
    gram = np.asarray(gram, dtype=np.float64)
    rank = _validate_rank(gram.shape, rank)
    w, vectors = np.linalg.eigh(gram)
    take = slice(-1, -rank - 1, -1)
    s = np.sqrt(np.clip(w[take], 0.0, None))
    return deterministic_signs(vectors[:, take]), s


def leading_left_singular_vectors(matrix: MatrixLike, rank: int) -> np.ndarray:
    """The ``rank`` leading left singular vectors, deterministic signs.

    This is the exact primitive the paper's pseudocode calls
    ``r_n leading left singular vectors of X_(n)``.  Dense wide
    matricizations (``n >= GRAM_ASPECT * m``) take the Gram route —
    same subspace, none of the right-singular-vector work — which is
    what roughly halves the dense HOSVD/ST-HOSVD kernels; everything
    else (square-ish or sparse inputs) keeps the proven SVD path
    bit-for-bit.
    """
    rank = _validate_rank(matrix.shape, rank)
    m, n = matrix.shape
    if not sps.issparse(matrix) and n >= GRAM_ASPECT * m:
        metrics = get_metrics()
        metrics.counter("svd.calls").inc()
        metrics.counter("svd.gram_fastpath").inc()
        metrics.histogram("svd.rank").observe(rank)
        with _span("gram-svd", "decompose", shape=matrix.shape, rank=rank):
            dense = np.asarray(matrix, dtype=np.float64)
            return gram_left_singular_vectors(dense @ dense.T, rank)
    u, _s, _vt = truncated_svd(matrix, rank)
    return u


def spectral_energy(matrix: MatrixLike, rank: int) -> float:
    """Sum of squared leading ``rank`` singular values.

    Used by tests to check that factor subspaces capture the energy
    they are supposed to.
    """
    _u, s, _vt = truncated_svd(matrix, rank)
    return float(np.sum(s**2))
