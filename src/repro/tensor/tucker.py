"""Tucker decomposition: the ``TuckerTensor`` container, HOSVD
(Algorithm 1 of the paper), and HOOI refinement.

HOSVD is the building block every M2TD variant modifies: matricize the
tensor along each mode, take the leading left singular vectors as the
factor matrix, then recover the dense core by projecting the tensor
onto the factor subspaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import KernelError, RankError, ShapeError, SketchError
from ..observability import get_metrics, span as _span
from .ops import frobenius_norm, relative_error
from .sparse import SparseTensor
from .svd import leading_left_singular_vectors
from .ttm import multi_ttm, ttm
from .unfold import unfold

TensorLike = Union[np.ndarray, SparseTensor]


@dataclass
class TuckerTensor:
    """A Tucker decomposition ``[G; U^(1), ..., U^(N)]``.

    Attributes
    ----------
    core:
        Dense core tensor of shape ``(r_1, ..., r_N)``.
    factors:
        One ``(I_n, r_n)`` factor matrix per mode.
    """

    core: np.ndarray
    factors: List[np.ndarray]

    def __post_init__(self) -> None:
        self.core = np.asarray(self.core, dtype=np.float64)
        self.factors = [np.asarray(f, dtype=np.float64) for f in self.factors]
        if self.core.ndim != len(self.factors):
            raise ShapeError(
                f"core has {self.core.ndim} modes but "
                f"{len(self.factors)} factors were given"
            )
        for mode, factor in enumerate(self.factors):
            if factor.ndim != 2:
                raise ShapeError(f"factor {mode} is not a matrix")
            if factor.shape[1] != self.core.shape[mode]:
                raise ShapeError(
                    f"factor {mode} has {factor.shape[1]} columns but core "
                    f"mode {mode} has size {self.core.shape[mode]}"
                )

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the tensor this decomposition reconstructs."""
        return tuple(f.shape[0] for f in self.factors)

    @property
    def rank(self) -> Tuple[int, ...]:
        return self.core.shape

    @property
    def ndim(self) -> int:
        return self.core.ndim

    def reconstruct(self) -> np.ndarray:
        """Recompose ``G ×_1 U^(1) ×_2 ... ×_N U^(N)`` densely.

        Metered as ``tucker.reconstructs`` — the serving layer's whole
        contract is answering queries with this counter at zero, and
        its tests assert exactly that.
        """
        get_metrics().counter("tucker.reconstructs").inc()
        return multi_ttm(self.core, self.factors)

    def relative_error(self, reference: np.ndarray) -> float:
        """``||reconstruct() - reference||_F / ||reference||_F``."""
        return relative_error(self.reconstruct(), np.asarray(reference))

    def accuracy(self, reference: np.ndarray) -> float:
        """The paper's accuracy measure ``1 - rel_err`` (Section VII-D)."""
        return 1.0 - self.relative_error(reference)

    def compression_ratio(self) -> float:
        """Stored parameters of the decomposition / dense tensor size."""
        stored = self.core.size + sum(f.size for f in self.factors)
        return stored / float(np.prod(self.shape))


def validate_ranks(shape: Sequence[int], ranks: Sequence[int]) -> Tuple[int, ...]:
    """Check one positive rank per mode, each within the mode size."""
    shape = tuple(int(s) for s in shape)
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != len(shape):
        raise RankError(
            f"need one rank per mode ({len(shape)}), got {len(ranks)}"
        )
    for mode, (size, rank) in enumerate(zip(shape, ranks)):
        if rank < 1:
            raise RankError(f"rank for mode {mode} must be >= 1, got {rank}")
        if rank > size:
            raise RankError(
                f"rank {rank} for mode {mode} exceeds mode size {size}"
            )
    return ranks


def clip_ranks(shape: Sequence[int], ranks: Sequence[int]) -> Tuple[int, ...]:
    """Clamp each requested rank into ``[1, mode size]``.

    Experiment sweeps request a uniform rank per table row; small
    scaled-down tensors may not support it on every mode.
    """
    return tuple(
        max(1, min(int(r), int(s))) for s, r in zip(shape, ranks)
    )


#: Kernel methods accepted by :func:`hosvd` / :func:`st_hosvd` /
#: :func:`hooi` and threaded through the M2TD variants and CLIs:
#: ``exact`` is the proven LAPACK/svds path, ``sketched`` is MACH
#: entry subsampling (opt-in approximation), ``gram`` extracts factor
#: subspaces from mode Gram matrices (same subspaces to ~1e-10, never
#: densifies a sparse input).
METHODS = ("exact", "sketched", "gram")


def check_method(method: str) -> str:
    """Validate a kernel ``method`` name, returning it unchanged."""
    method = str(method)
    if method not in METHODS:
        raise KernelError(
            f"unknown kernel method {method!r}; expected one of {METHODS}"
        )
    return method


def sketched_input(
    tensor: TensorLike, keep_probability: float, seed
) -> TensorLike:
    """The MACH sketch of ``tensor`` for ``method="sketched"``.

    ``keep_probability >= 1.0`` returns the input untouched — that is
    the byte-identity contract the property suite pins: no sketch
    round-trip happens, so the result matches the exact kernel bit for
    bit.  A sketch that drops every entry (:class:`SketchError`) falls
    back to the exact input, metered as ``tensor.sketch_fallbacks``.
    """
    if keep_probability >= 1.0:
        return tensor
    from .mach import sparsify  # local import: mach imports this module

    try:
        return sparsify(tensor, keep_probability, seed=seed)
    except SketchError:
        get_metrics().counter("tensor.sketch_fallbacks").inc()
        return tensor


def _mode_matricization(tensor: TensorLike, mode: int):
    if isinstance(tensor, SparseTensor):
        return tensor.unfold_csr(mode)
    return unfold(np.asarray(tensor), mode)


def _as_dense(tensor: TensorLike) -> np.ndarray:
    if isinstance(tensor, SparseTensor):
        return tensor.to_dense()
    return np.asarray(tensor, dtype=np.float64)


def hosvd(
    tensor: TensorLike,
    ranks: Sequence[int],
    *,
    method: str = "exact",
    keep_probability: float = 0.5,
    seed=None,
) -> TuckerTensor:
    """Higher-Order SVD (paper Algorithm 1).

    Works on dense arrays and :class:`SparseTensor` inputs alike; the
    sparse path matricizes into CSR and uses sparse SVD, which is what
    makes decomposing the very sparse conventional-sampling baselines
    feasible at paper scale.

    Parameters
    ----------
    tensor:
        The input tensor (dense ndarray or SparseTensor).
    ranks:
        Target rank per mode, ``(r_1, ..., r_N)``.
    method:
        ``"exact"`` (default), ``"sketched"`` (MACH entry subsampling
        at ``keep_probability``; 1.0 short-circuits to exact), or
        ``"gram"`` (factor subspaces from mode Gram matrices; never
        densifies a sparse input).
    keep_probability / seed:
        Only used by ``method="sketched"``.
    """
    shape = tensor.shape
    ranks = validate_ranks(shape, ranks)
    method = check_method(method)
    if method == "gram":
        from .gram import gram_hosvd

        return gram_hosvd(tensor, ranks)
    if method == "sketched":
        tensor = sketched_input(tensor, keep_probability, seed)
    with _span(
        "hosvd",
        "decompose",
        shape=shape,
        ranks=ranks,
        sparse=isinstance(tensor, SparseTensor),
    ):
        factors = [
            leading_left_singular_vectors(
                _mode_matricization(tensor, mode), rank
            )
            for mode, rank in enumerate(ranks)
        ]
        core = multi_ttm(_as_dense(tensor), factors, transpose=True)
        return TuckerTensor(core, factors)


def st_hosvd(
    tensor: TensorLike,
    ranks: Sequence[int],
    *,
    method: str = "exact",
    keep_probability: float = 0.5,
    seed=None,
) -> TuckerTensor:
    """Sequentially truncated HOSVD (Vannieuwenhoven et al.).

    Instead of matricizing the *full* tensor for every mode, each
    mode's factor is extracted from the partially projected tensor and
    the projection is applied immediately — so later modes work on an
    already-compressed core.  Same approximation-error class as HOSVD
    (within a sqrt(N) factor of optimal) at a fraction of the flops;
    benchmarked against plain HOSVD in the substrate bench.

    ``method="gram"`` routes to :func:`repro.tensor.gram.gram_st_hosvd`
    (sparse inputs never densified); ``method="sketched"`` decomposes a
    MACH sketch — sparse sketches take the Gram route, since that is
    the kernel that actually exploits the sketch's sparsity.
    """
    shape = tensor.shape
    ranks = validate_ranks(shape, ranks)
    method = check_method(method)
    if method == "gram":
        from .gram import gram_st_hosvd

        return gram_st_hosvd(tensor, ranks)
    if method == "sketched":
        sketch = sketched_input(tensor, keep_probability, seed)
        if sketch is not tensor:
            from .gram import gram_st_hosvd

            return gram_st_hosvd(sketch, ranks)
    with _span("st-hosvd", "decompose", shape=shape, ranks=ranks):
        current = _as_dense(tensor)
        factors: List[np.ndarray] = []
        for mode, rank in enumerate(ranks):
            matricized = unfold(current, mode)
            effective = min(rank, min(matricized.shape))
            factor = leading_left_singular_vectors(matricized, effective)
            factors.append(factor)
            # Project this mode away before touching the next one.
            current = ttm(current, factor.T, mode)
        return TuckerTensor(current, factors)


def hooi(
    tensor: TensorLike,
    ranks: Sequence[int],
    n_iter: int = 10,
    tol: float = 1e-7,
    initial: Optional[TuckerTensor] = None,
    *,
    method: str = "exact",
    keep_probability: float = 0.5,
    seed=None,
) -> TuckerTensor:
    """Higher-Order Orthogonal Iteration refinement of HOSVD.

    Alternately re-fits each factor matrix against the tensor projected
    onto all *other* factor subspaces, until the fit improves by less
    than ``tol`` or ``n_iter`` sweeps elapse.  Used as an ablation of
    the plain-HOSVD sub-decompositions inside M2TD.

    ``method`` selects the *initialization*: ``"gram"`` seeds the
    iteration from :func:`repro.tensor.gram.gram_hosvd`; ``"sketched"``
    runs the whole iteration on a MACH sketch of the input (1.0
    short-circuits to exact).  The refinement sweeps themselves are
    always the dense exact iteration.
    """
    shape = tensor.shape
    ranks = validate_ranks(shape, ranks)
    method = check_method(method)
    if method == "sketched":
        tensor = sketched_input(tensor, keep_probability, seed)
    dense = _as_dense(tensor)
    if initial is not None:
        current = initial
    elif method == "gram":
        from .gram import gram_hosvd

        current = gram_hosvd(tensor, ranks)
    else:
        current = hosvd(tensor, ranks)
    factors = [f.copy() for f in current.factors]
    norm = frobenius_norm(dense)
    previous_fit = -np.inf
    with _span("hooi", "decompose", shape=shape, ranks=ranks) as sp:
        sweeps = 0
        for _sweep in range(max(1, int(n_iter))):
            sweeps += 1
            for mode in range(dense.ndim):
                projected = multi_ttm(
                    dense, factors, transpose=True, skip=[mode]
                )
                factors[mode] = leading_left_singular_vectors(
                    unfold(projected, mode), ranks[mode]
                )
            # The final leave-one-out projection already applied every
            # factor except the last mode's, in the same ascending
            # order multi_ttm uses — one more product yields the core
            # bit-for-bit, without re-projecting from scratch.
            core = ttm(projected, factors[-1].T, dense.ndim - 1)
            # For orthonormal factors ||X - X~||^2 = ||X||^2 - ||G||^2.
            fit = frobenius_norm(core)
            if norm > 0 and abs(fit - previous_fit) / norm < tol:
                previous_fit = fit
                break
            previous_fit = fit
        sp.set(sweeps=sweeps)
    return TuckerTensor(core, factors)
