"""Factor-space query evaluation: answers from Tucker factors alone.

The TuckerMPI observation this module operationalises: once an
ensemble lives as ``[G; U^(1), ..., U^(N)]``, any cell value is a tiny
core×factor-row contraction and any hyperplane is a one-row TTM —
recoverable at a fraction of dense cost, so the full tensor never
needs to exist.  :meth:`TuckerTensor.reconstruct` is metered
(``tucker.reconstructs``) precisely so serving tests can assert this
engine leaves the counter untouched.

Three query shapes:

``point``
    ``x[i_1, ..., i_N] = G ×_1 u^(1)_{i_1} ... ×_N u^(N)_{i_N}`` —
    the core contracted with one row of each factor.  The batched form
    evaluates B points as *one* contraction chain over a (B, r, ...)
    accumulator, which is what the server's request coalescing buys.
``slice``
    The dense hyperplane ``mode = index``: contract the core with the
    single factor row of the sliced mode, then apply the remaining
    factors — cost ``O(prod(ranks) + slice size × rank)`` instead of
    ``O(prod(shape))``.
``top-k anomalies``
    Residual scoring against the block store: every *simulated* cell's
    stored value minus its factor prediction, streamed block by block
    (batched point evaluation per block), keeping only the k largest
    residuals.  Large residuals mark cells the decomposition's
    dominant patterns cannot explain — the ensemble's anomalies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import QueryError
from ..observability import get_metrics, span as _span
from ..tensor.tucker import TuckerTensor
from ..tensor.ttm import ttm


def _check_coords(shape: Tuple[int, ...], coords: np.ndarray) -> np.ndarray:
    coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
    if coords.ndim != 2 or coords.shape[1] != len(shape):
        raise QueryError(
            f"point index needs {len(shape)} coordinates, got "
            f"shape {coords.shape}"
        )
    upper = np.asarray(shape, dtype=np.int64)
    if coords.size and ((coords < 0).any() or (coords >= upper).any()):
        bad = coords[((coords < 0) | (coords >= upper)).any(axis=1)][0]
        raise QueryError(
            f"index {tuple(int(i) for i in bad)} out of bounds for "
            f"shape {shape}"
        )
    return coords


class FactorEngine:
    """Evaluate point/slice/anomaly queries from one Tucker decomposition.

    Parameters
    ----------
    tucker:
        The decomposition to serve from; its factors are the only
        state this engine touches.
    study:
        Label stamped onto spans/metrics (the catalog key).
    """

    def __init__(self, tucker: TuckerTensor, study: str = ""):
        self.tucker = tucker
        self.study = study

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.tucker.shape

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def point_batch(self, coords) -> np.ndarray:
        """Values of B cells as one batched contraction chain.

        ``coords`` is ``(B, N)`` integer indices; returns ``(B,)``
        float values.  The accumulator starts as the core contracted
        with the mode-0 factor rows and loses one rank axis per
        remaining mode — never materialising anything larger than
        ``B × prod(ranks[1:])``.
        """
        coords = _check_coords(self.shape, coords)
        t = self.tucker
        with _span(
            "serving-point", "serving", study=self.study,
            batch=coords.shape[0],
        ):
            if coords.shape[0] == 0:
                return np.empty((0,), dtype=np.float64)
            rows = t.factors[0][coords[:, 0], :]           # (B, r_0)
            acc = np.tensordot(rows, t.core, axes=([1], [0]))
            for mode in range(1, t.ndim):
                rows = t.factors[mode][coords[:, mode], :]  # (B, r_mode)
                acc = np.einsum("bi...,bi->b...", acc, rows)
            get_metrics().counter("serving.points_evaluated").inc(
                coords.shape[0]
            )
            return np.asarray(acc, dtype=np.float64)

    def point(self, index: Sequence[int]) -> float:
        """One cell value, ``G`` contracted with one row per factor."""
        return float(self.point_batch(np.asarray(index)[None, :])[0])

    # ------------------------------------------------------------------
    # slice queries
    # ------------------------------------------------------------------
    def slice(self, mode: int, index: int) -> np.ndarray:
        """The dense hyperplane ``mode = index`` (that mode dropped).

        One factor-row TTM: the sliced mode collapses to a single row
        contraction on the *core*, then the remaining factors expand
        the reduced core to the slice's full extent.
        """
        t = self.tucker
        if not 0 <= int(mode) < t.ndim:
            raise QueryError(
                f"mode {mode} out of range for {t.ndim} modes"
            )
        mode = int(mode)
        if not 0 <= int(index) < self.shape[mode]:
            raise QueryError(
                f"index {index} out of range for mode {mode} "
                f"(size {self.shape[mode]})"
            )
        index = int(index)
        with _span(
            "serving-slice", "serving", study=self.study, mode=mode,
            index=index,
        ):
            row = t.factors[mode][index]                    # (r_mode,)
            reduced = np.tensordot(t.core, row, axes=([mode], [0]))
            out = reduced
            remaining = [f for m, f in enumerate(t.factors) if m != mode]
            for m, factor in enumerate(remaining):
                out = ttm(out, factor, m)
            get_metrics().counter("serving.slices_evaluated").inc()
            return out

    # ------------------------------------------------------------------
    # anomaly queries
    # ------------------------------------------------------------------
    def topk_anomalies(
        self,
        store,
        name: str,
        k: int,
        mode: Optional[int] = None,
        index: Optional[int] = None,
    ) -> List[Tuple[Tuple[int, ...], float, float, float]]:
        """The k simulated cells the factors explain worst.

        Streams the study's stored cells out of ``store`` (a
        :class:`~repro.storage.BlockTensorStore`) — the whole tensor
        when ``mode``/``index`` are omitted, one ``slice_query``
        hyperplane otherwise — scoring ``|stored - predicted|`` with
        batched point evaluation and keeping a running top-k, so peak
        memory is one block plus k candidates.

        Returns ``[(index, stored, predicted, residual), ...]`` sorted
        by residual, largest first.
        """
        if k < 1:
            raise QueryError(f"top-k needs k >= 1, got {k}")
        with _span(
            "serving-topk", "serving", study=self.study, k=k,
        ) as sp:
            if mode is not None and index is not None:
                sparse = store.slice_query(name, mode=mode, index=index)
                chunks = [(sparse.coords, sparse.values)] if sparse.nnz else []
            else:
                layout = store.layout(name)
                chunks = (
                    (block.coords + layout.block_origin(bid), block.values)
                    for bid, block in store.iter_blocks(name)
                    if block.nnz
                )
            best_coords = np.empty((0, len(self.shape)), dtype=np.int64)
            best_stored = np.empty((0,), dtype=np.float64)
            best_predicted = np.empty((0,), dtype=np.float64)
            best_residual = np.empty((0,), dtype=np.float64)
            scored = 0
            for coords, stored in chunks:
                predicted = self.point_batch(coords)
                residual = np.abs(stored - predicted)
                scored += coords.shape[0]
                cand_coords = np.vstack([best_coords, coords])
                cand_stored = np.concatenate([best_stored, stored])
                cand_predicted = np.concatenate([best_predicted, predicted])
                cand_residual = np.concatenate([best_residual, residual])
                if cand_residual.shape[0] > k:
                    keep = np.argpartition(cand_residual, -k)[-k:]
                else:
                    keep = np.arange(cand_residual.shape[0])
                best_coords = cand_coords[keep]
                best_stored = cand_stored[keep]
                best_predicted = cand_predicted[keep]
                best_residual = cand_residual[keep]
            sp.set(cells_scored=scored)
            get_metrics().counter("serving.cells_scored").inc(scored)
            order = np.argsort(-best_residual, kind="stable")
            return [
                (
                    tuple(int(i) for i in best_coords[pos]),
                    float(best_stored[pos]),
                    float(best_predicted[pos]),
                    float(best_residual[pos]),
                )
                for pos in order
            ]
