"""The study catalog: many live ensembles, one sharded substrate.

Multi-tenancy is directory-sharded: every registered study gets its
*own* :class:`~repro.storage.BlockTensorStore` under
``<root>/shards/<key>/`` — its own block files and its own
``catalog.json`` — so slice and residual reads for different studies
never touch a shared file or a shared in-memory catalog.  The serving
catalog itself is one small ``studies.json`` at the root mapping study
keys to their shard + decomposition request, written atomically the
same way the storage catalog is.

The catalog hands out :class:`~repro.serving.engine.FactorEngine`\\ s
via the two-tier bundle chain in :mod:`repro.serving.bundle`; a
re-registration bumps the stored tensor and thereby the bundle's
content address, so stale factors can never serve fresh data.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..exceptions import ServingError, StudyNotFoundError
from ..observability import get_metrics, span as _span
from ..runtime import ResultCache
from ..storage import BlockTensorStore
from ..tensor.sparse import SparseTensor
from .bundle import (
    FactorBundle,
    HotFactorCache,
    bundle_fingerprint,
    load_bundle,
)
from .engine import FactorEngine

STUDIES_FILE = "studies.json"

#: Same naming discipline as the block store — keys become directories.
_KEY_PATTERN = re.compile(r"^[A-Za-z0-9_.-]+$")


@dataclass(frozen=True)
class StudyEntry:
    """Catalog record for one registered study."""

    key: str
    tensor_name: str
    shape: Tuple[int, ...]
    nnz: int
    ranks: Tuple[int, ...]
    method: str = "hosvd"

    def to_json(self) -> Dict:
        return {
            "key": self.key,
            "tensor_name": self.tensor_name,
            "shape": list(self.shape),
            "nnz": int(self.nnz),
            "ranks": list(self.ranks),
            "method": self.method,
        }

    @classmethod
    def from_json(cls, record: Dict) -> "StudyEntry":
        return cls(
            key=str(record["key"]),
            tensor_name=str(record["tensor_name"]),
            shape=tuple(int(s) for s in record["shape"]),
            nnz=int(record["nnz"]),
            ranks=tuple(int(r) for r in record["ranks"]),
            method=str(record.get("method", "hosvd")),
        )


class StudyCatalog:
    """Registry of servable studies over a sharded store root.

    Parameters
    ----------
    root:
        Directory holding ``studies.json`` plus one shard directory
        per study.
    result_cache:
        Disk tier for factor bundles (defaults to an ``.npz`` cache
        under ``<root>/bundle-cache``; pass an existing runtime cache
        to share it, or ``None``-directory caches for memory-only).
    hot_factors:
        The admission-controlled LRU serving engines are built from.
    """

    def __init__(
        self,
        root,
        result_cache: Optional[ResultCache] = None,
        hot_factors: Optional[HotFactorCache] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / STUDIES_FILE
        if result_cache is None:
            result_cache = ResultCache(
                max_entries=64, directory=self.root / "bundle-cache"
            )
        self.result_cache = result_cache
        self.hot_factors = hot_factors or HotFactorCache()
        self._entries: Dict[str, StudyEntry] = {}
        self._stores: Dict[str, BlockTensorStore] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ServingError(
                f"cannot read study catalog {self.path}: {exc}"
            ) from exc
        self._entries = {
            key: StudyEntry.from_json(record)
            for key, record in raw.get("studies", {}).items()
        }

    def _save(self) -> None:
        payload = {
            "version": 1,
            "studies": {
                key: entry.to_json()
                for key, entry in self._entries.items()
            },
        }
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        tmp.replace(self.path)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    @staticmethod
    def _check_key(key: str) -> str:
        if not _KEY_PATTERN.match(key):
            raise ServingError(
                f"invalid study key {key!r}; use letters, digits, "
                "'_', '-', '.'"
            )
        return key

    def shard_dir(self, key: str) -> Path:
        """The per-study store directory (the sharding unit)."""
        return self.root / "shards" / self._check_key(key)

    def store_for(self, key: str) -> BlockTensorStore:
        """The study's own block store, one instance per catalog."""
        if key not in self._entries:
            raise StudyNotFoundError(key, self._entries)
        store = self._stores.get(key)
        if store is None:
            store = self._stores[key] = BlockTensorStore(
                self.shard_dir(key)
            )
        return store

    def register(
        self,
        key: str,
        tensor: SparseTensor,
        ranks,
        method: str = "hosvd",
        block_shape: Optional[Tuple[int, ...]] = None,
        overwrite: bool = False,
    ) -> StudyEntry:
        """Register (or replace) a study: persist its ensemble into
        its shard and record the decomposition request."""
        self._check_key(key)
        if key in self._entries and not overwrite:
            raise ServingError(
                f"study {key!r} already registered (pass overwrite=True)"
            )
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != len(tensor.shape):
            raise ServingError(
                f"study {key!r}: {len(ranks)} ranks for "
                f"{len(tensor.shape)} modes"
            )
        with _span(
            "serving-register", "serving", study=key, nnz=tensor.nnz,
            shape=tensor.shape,
        ):
            store = self._stores.get(key)
            if store is None:
                store = self._stores[key] = BlockTensorStore(
                    self.shard_dir(key)
                )
            tensor_name = "ensemble"
            old = self._entries.get(key)
            if old is not None and old.tensor_name in store.catalog:
                # new data ⇒ new bundle address; drop the old hot entry
                self.hot_factors.invalidate(
                    bundle_fingerprint(
                        key, store.catalog.get(old.tensor_name),
                        old.ranks, old.method,
                    )
                )
            store.put(
                tensor_name, tensor, block_shape=block_shape,
                overwrite=True,
            )
            entry = StudyEntry(
                key=key,
                tensor_name=tensor_name,
                shape=tensor.shape,
                nnz=tensor.nnz,
                ranks=ranks,
                method=method,
            )
            self._entries[key] = entry
            self._save()
            get_metrics().counter("serving.studies_registered").inc()
        return entry

    def unregister(self, key: str) -> StudyEntry:
        entry = self.entry(key)
        store = self.store_for(key)
        if entry.tensor_name in store.catalog:
            store.delete(entry.tensor_name)
        del self._entries[key]
        self._stores.pop(key, None)
        self._save()
        return entry

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def entry(self, key: str) -> StudyEntry:
        try:
            return self._entries[key]
        except KeyError:
            raise StudyNotFoundError(key, self._entries) from None

    def keys(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # serving state
    # ------------------------------------------------------------------
    def bundle(self, key: str) -> FactorBundle:
        """The study's factor bundle through both cache tiers."""
        entry = self.entry(key)
        store = self.store_for(key)
        tensor_entry = store.catalog.get(entry.tensor_name)
        address = bundle_fingerprint(
            key, tensor_entry, entry.ranks, entry.method
        )
        return self.hot_factors.get(
            address,
            lambda: load_bundle(
                key, store, tensor_entry, entry.ranks,
                result_cache=self.result_cache, method=entry.method,
            ),
        )

    def engine(self, key: str) -> FactorEngine:
        """A query engine over the study's (cached) factors."""
        return FactorEngine(self.bundle(key).tucker, study=key)
