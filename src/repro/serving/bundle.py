"""Factor bundles: the cached, integrity-checked unit of serving state.

A :class:`FactorBundle` is one study's Tucker factors plus provenance.
Bundles are expensive (a sparse HOSVD of the stored ensemble) and tiny
relative to the tensors they summarise, so the loading chain is two
cache tiers deep:

1. :class:`HotFactorCache` — decoded bundles in memory, LRU with
   *admission control*: a bundle must be requested ``admit_after``
   times before it may occupy a slot, and bundles larger than
   ``admission_fraction`` of the byte budget are never admitted.  One
   cold scan over a thousand studies therefore cannot evict the hot
   tenants (TinyLFU's insight, sized down).
2. the runtime's content-addressed :class:`~repro.runtime.ResultCache`
   — ``.npz`` on disk, checksummed, quarantine-on-corruption.  A
   corrupt or missing bundle entry is *never served*: the cache
   reports a miss and the loader recomputes from the block store.

``serving.factor-load`` is this layer's fault-injection site: a
``corrupt`` fault bit-flips the on-disk bundle entry, and the chaos
suite asserts the next query is re-served from a recomputed bundle
with the recovery metered.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..exceptions import ServingError
from ..faults.injector import get_injector
from ..observability import get_metrics, span as _span
from ..runtime import ResultCache, fingerprint
from ..tensor.tucker import TuckerTensor, clip_ranks, hosvd

#: Bump when the bundle payload layout changes — old cache entries
#: then simply miss instead of decoding wrongly.
BUNDLE_CODEC_VERSION = 1


@dataclass(frozen=True)
class FactorBundle:
    """One study's servable decomposition state."""

    study: str
    tucker: TuckerTensor
    fingerprint: str
    method: str = "hosvd"

    @property
    def nbytes(self) -> int:
        """Decoded in-memory footprint (core + factors)."""
        return int(
            self.tucker.core.nbytes
            + sum(f.nbytes for f in self.tucker.factors)
        )


def bundle_fingerprint(study: str, entry, ranks, method: str) -> str:
    """Content address of a study's bundle.

    Keyed on the stored tensor's identity (shape, nnz, block layout)
    plus the decomposition request — re-registering a study with new
    data or new ranks yields a new address, so stale bundles can never
    shadow fresh ones.
    """
    return fingerprint(
        "serving.bundle",
        {
            "version": BUNDLE_CODEC_VERSION,
            "study": study,
            "shape": list(entry.shape),
            "nnz": int(entry.nnz),
            "n_blocks": int(entry.n_blocks),
            "block_shape": list(entry.block_shape),
            "ranks": [int(r) for r in ranks],
            "method": method,
        },
    )


def _encode_bundle(tucker: TuckerTensor) -> Dict:
    return {
        "core": tucker.core,
        "factors": [np.asarray(f) for f in tucker.factors],
    }


def _decode_bundle(payload) -> TuckerTensor:
    try:
        # TuckerTensor.__post_init__ validates shape consistency, so a
        # structurally-decoded-but-wrong payload still fails loudly.
        return TuckerTensor(payload["core"], list(payload["factors"]))
    except Exception as exc:
        raise ServingError(f"undecodable factor bundle: {exc}") from exc


def compute_bundle(
    study: str, store, entry, ranks, method: str = "hosvd"
) -> FactorBundle:
    """Decompose a study's stored ensemble into a fresh bundle.

    Ranks are clipped per mode (scenario-zoo studies register uniform
    ranks that small modes may not support).  ``method="gram"`` uses
    the Gram-matrix ST-HOSVD, which never densifies the stored sparse
    ensemble (``tensor.dense_unfolds`` stays 0 through the whole
    serving path — pinned by the serving guard tests).
    """
    if method not in ("hosvd", "gram"):
        raise ServingError(
            f"unknown bundle method {method!r} (use 'hosvd' or 'gram')"
        )
    with _span("serving-bundle-compute", "serving", study=study):
        tensor = store.get(entry.name)
        clipped = clip_ranks(tensor.shape, ranks)
        if method == "gram":
            from ..tensor.gram import gram_st_hosvd

            tucker = gram_st_hosvd(tensor, clipped)
        else:
            tucker = hosvd(tensor, clipped)
        get_metrics().counter("serving.bundles_computed").inc()
        return FactorBundle(
            study=study,
            tucker=tucker,
            fingerprint=bundle_fingerprint(study, entry, ranks, method),
            method=method,
        )


def load_bundle(
    study: str,
    store,
    entry,
    ranks,
    result_cache: Optional[ResultCache] = None,
    method: str = "hosvd",
) -> FactorBundle:
    """Load a bundle through the content-addressed disk tier.

    The ``serving.factor-load`` injection point fires against the
    cache entry's backing file *before* the read, so a ``corrupt``
    fault exercises the cache's own checksum/quarantine machinery —
    the recovery path is a real recompute, never a special case.
    """
    if result_cache is None:
        return compute_bundle(study, store, entry, ranks, method)
    key = bundle_fingerprint(study, entry, ranks, method)
    injector = get_injector()
    if injector.enabled:
        # corrupt faults need the backing file; raise/delay fire even
        # for a memory-only cache.
        path = (
            result_cache._path(key)
            if result_cache.directory is not None
            else None
        )
        injector.fire("serving.factor-load", study, path=path)
    hit, payload = result_cache.get(key)
    if hit:
        try:
            tucker = _decode_bundle(payload)
            get_metrics().counter("serving.bundle_disk_hits").inc()
            return FactorBundle(
                study=study, tucker=tucker, fingerprint=key, method=method
            )
        except ServingError:
            # Structurally valid cache entry that is not a bundle —
            # treat exactly like a miss and heal by recompute.
            get_metrics().counter("serving.bundle_decode_errors").inc()
    bundle = compute_bundle(study, store, entry, ranks, method)
    result_cache.put(key, _encode_bundle(bundle.tucker))
    if injector.enabled:
        injector.note_recovery("serving.factor-load", study)
    return bundle


@dataclass
class HotFactorStats:
    """Running totals for one :class:`HotFactorCache`."""

    hits: int = 0
    misses: int = 0
    admitted: int = 0
    rejected: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class HotFactorCache:
    """Admission-controlled LRU of decoded factor bundles.

    Parameters
    ----------
    max_entries:
        Bundle slots (LRU within admitted bundles).
    max_bytes:
        Decoded-byte budget across all slots; eviction runs until both
        limits hold.
    admit_after:
        Requests a study must accumulate before its bundle may be
        cached.  ``1`` admits immediately; ``2`` makes one-shot scans
        cache-transparent.
    admission_fraction:
        A single bundle larger than this fraction of ``max_bytes`` is
        never admitted (it would evict everything else for one tenant).
    """

    max_entries: int = 16
    max_bytes: int = 256 * 1024 * 1024
    admit_after: int = 1
    admission_fraction: float = 0.5
    stats: HotFactorStats = field(default_factory=HotFactorStats)
    _entries: "OrderedDict[str, FactorBundle]" = field(
        default_factory=OrderedDict
    )
    _requests: Dict[str, int] = field(default_factory=dict)
    _bytes: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ServingError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        if self.admit_after < 1:
            raise ServingError(
                f"admit_after must be >= 1, got {self.admit_after}"
            )
        if not 0.0 < self.admission_fraction <= 1.0:
            raise ServingError(
                "admission_fraction must be in (0, 1], got "
                f"{self.admission_fraction}"
            )

    # ------------------------------------------------------------------
    def get(
        self, key: str, loader: Callable[[], FactorBundle]
    ) -> FactorBundle:
        """The bundle for ``key``, via ``loader`` on a miss.

        Metrics: ``serving.factor_cache.hits`` / ``.misses`` feed the
        hit-rate the server reports per study.
        """
        metrics = get_metrics()
        with self._lock:
            bundle = self._entries.get(key)
            if bundle is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                metrics.counter("serving.factor_cache.hits").inc()
                return bundle
            self.stats.misses += 1
            self._requests[key] = self._requests.get(key, 0) + 1
            requests = self._requests[key]
        metrics.counter("serving.factor_cache.misses").inc()
        bundle = loader()
        with self._lock:
            self._maybe_admit(key, bundle, requests)
        return bundle

    def _maybe_admit(
        self, key: str, bundle: FactorBundle, requests: int
    ) -> None:
        # caller holds the lock
        metrics = get_metrics()
        oversized = bundle.nbytes > self.admission_fraction * self.max_bytes
        if requests < self.admit_after or oversized:
            self.stats.rejected += 1
            metrics.counter("serving.factor_cache.rejected").inc()
            return
        self._entries[key] = bundle
        self._entries.move_to_end(key)
        self._bytes += bundle.nbytes
        self.stats.admitted += 1
        metrics.counter("serving.factor_cache.admitted").inc()
        while self._entries and (
            len(self._entries) > self.max_entries
            or self._bytes > self.max_bytes
        ):
            _evicted_key, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.stats.evictions += 1
            metrics.counter("serving.factor_cache.evictions").inc()

    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> None:
        """Drop one bundle (re-registration, corruption healing)."""
        with self._lock:
            bundle = self._entries.pop(key, None)
            if bundle is not None:
                self._bytes -= bundle.nbytes
            self._requests.pop(key, None)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes
