"""Deterministic in-process load generation for the serving layer.

One driver shared by ``python -m repro.serving serve``, the
``BENCH_serving.json`` suite, and the throughput tests, so the
"N concurrent clients" being measured is the same thing everywhere:
N asyncio tasks, each issuing its queries back-to-back against the
in-process :class:`~repro.serving.server.ServingClient`, all inside
one ``asyncio.run``.  Query coordinates are drawn from a seeded
generator, so two runs at the same seed issue identical streams —
batched-vs-unbatched comparisons measure batching, not luck.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ServingError, ServingOverloadError
from .catalog import StudyCatalog
from .server import ServingClient, ServingServer


def _query_coords(
    shapes: Dict[str, tuple], studies: Sequence[str],
    n_clients: int, queries_per_client: int, seed: int,
) -> List[List[tuple]]:
    """Per-client query plans: ``(study, index)`` pairs, seeded."""
    rng = np.random.default_rng(seed)
    plans: List[List[tuple]] = []
    for client in range(n_clients):
        plan = []
        for _ in range(queries_per_client):
            study = studies[int(rng.integers(len(studies)))]
            shape = shapes[study]
            index = tuple(
                int(rng.integers(size)) for size in shape
            )
            plan.append((study, index))
        plans.append(plan)
    return plans


async def _drive(
    server: ServingServer,
    plans: List[List[tuple]],
    kind: str,
    topk_k: int,
) -> Dict[str, int]:
    client = ServingClient(server)
    shed = 0
    answered = 0

    async def one_client(plan: List[tuple]) -> None:
        nonlocal shed, answered
        for study, index in plan:
            try:
                if kind == "point":
                    await client.point(index, study=study)
                elif kind == "slice":
                    await client.slice(0, index[0], study=study)
                elif kind == "topk":
                    await client.topk(topk_k, study=study)
                else:
                    raise ServingError(f"unknown load kind {kind!r}")
                answered += 1
            except ServingOverloadError:
                shed += 1

    await asyncio.gather(*(one_client(plan) for plan in plans))
    return {"answered": answered, "shed": shed}


def run_load(
    catalog: StudyCatalog,
    studies: Optional[Sequence[str]] = None,
    kind: str = "point",
    n_clients: int = 100,
    queries_per_client: int = 10,
    batching: bool = True,
    max_batch: int = 64,
    max_queue: int = 1 << 20,
    topk_k: int = 5,
    seed: int = 0,
) -> Dict[str, object]:
    """Run one synchronous load session; returns the server summary.

    The session is self-contained: server start, ``n_clients``
    concurrent client tasks, graceful stop — so callers can time the
    whole call as "the cost of serving this stream".
    """
    keys = list(studies) if studies else catalog.keys()
    if not keys:
        raise ServingError("catalog has no registered studies to load")
    shapes = {key: catalog.entry(key).shape for key in keys}
    plans = _query_coords(
        shapes, keys, n_clients, queries_per_client, seed
    )

    async def session() -> Dict[str, object]:
        async with ServingServer(
            catalog, max_batch=max_batch, max_queue=max_queue,
            batching=batching,
        ) as server:
            outcome = await _drive(server, plans, kind, topk_k)
            summary = server.summary()
        summary["load"] = {
            "kind": kind,
            "n_clients": n_clients,
            "queries_per_client": queries_per_client,
            "batching": batching,
            **outcome,
        }
        return summary

    return asyncio.run(session())
