"""The asyncio serving front-end: batching, shedding, instrumentation.

One :class:`ServingServer` fronts a :class:`~repro.serving.catalog.
StudyCatalog`.  Every registered study gets its own request queue and
worker task, so tenants never share a queue (matching the sharded
store layout underneath).  The worker's drain loop is where batching
happens: it blocks for the first request, then greedily drains
whatever else has already queued (up to ``max_batch``) and coalesces
all *point* requests in the drained run into **one** batched
core×factor-rows contraction.  Under concurrent clients this turns N
event-loop round-trips into N/``max_batch`` numpy calls — the
batched-vs-unbatched benchmark in ``BENCH_serving.json`` measures
exactly this win.

Overload is shed, not queued: a request arriving at a full study queue
fails immediately with the typed
:class:`~repro.exceptions.ServingOverloadError`, keeping admitted
requests' latency bounded.  Every stage is metered — queue wait,
batch size, per-query latency (histograms ⇒ p50/p90/p99), shed and
served counters, factor-cache hit rate — and the ``serving.query``
fault-injection site fires per request so the chaos suite can drive
raise/delay faults through the full client-visible path.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import (
    ReproError,
    ServingError,
    ServingOverloadError,
)
from ..faults.injector import get_injector
from ..observability import emit, get_metrics, span as _span
from .catalog import StudyCatalog
from .engine import _check_coords

_SHUTDOWN = object()


@dataclass
class _Request:
    """One queued query; ``future`` carries the answer back."""

    kind: str                      # "point" | "slice" | "topk"
    args: Tuple
    future: "asyncio.Future[Any]"
    enqueued_at: float = 0.0


@dataclass
class _StudyWorker:
    """Queue + drain task for one tenant."""

    queue: "asyncio.Queue[Any]"
    task: "asyncio.Task[None]"
    served: int = 0
    batches: int = 0


@dataclass
class ServerStats:
    """Aggregate counters one server accumulated (see also the
    process metrics registry for histograms)."""

    served: int = 0
    shed: int = 0
    batches: int = 0
    points: int = 0
    slices: int = 0
    topks: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "served": self.served,
            "shed": self.shed,
            "batches": self.batches,
            "points": self.points,
            "slices": self.slices,
            "topks": self.topks,
            "errors": self.errors,
        }


class ServingServer:
    """Async front-end answering queries from factors, never densely.

    Parameters
    ----------
    catalog:
        The study catalog to serve.
    max_batch:
        Most requests one drain run coalesces.
    max_queue:
        Per-study queue bound; arrivals beyond it are shed with
        :class:`~repro.exceptions.ServingOverloadError`.
    batching:
        ``False`` degrades the drain loop to one request at a time —
        the benchmark's unbatched control, not a production setting.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.
    """

    def __init__(
        self,
        catalog: StudyCatalog,
        max_batch: int = 64,
        max_queue: int = 4096,
        batching: bool = True,
    ):
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ServingError(f"max_queue must be >= 1, got {max_queue}")
        self.catalog = catalog
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.batching = batching
        self.stats = ServerStats()
        self._workers: Dict[str, _StudyWorker] = {}
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServingServer":
        self._started = True
        return self

    async def stop(self) -> None:
        """Drain every queue, then stop the workers."""
        self._started = False
        workers = list(self._workers.values())
        self._workers.clear()
        for worker in workers:
            await worker.queue.put(_SHUTDOWN)
        for worker in workers:
            await worker.task

    async def __aenter__(self) -> "ServingServer":
        return await self.start()

    async def __aexit__(self, *_exc: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # public query API (the in-process client calls these)
    # ------------------------------------------------------------------
    async def point(self, study: str, index: Sequence[int]) -> float:
        """One cell value from the study's factors."""
        coords = _check_coords(
            self.catalog.entry(study).shape, np.asarray(index)[None, :]
        )
        return float(await self._submit(study, "point", (coords[0],)))

    async def point_many(
        self, study: str, indices
    ) -> List[float]:
        """Many cells, enqueued individually (so they coalesce with
        whatever else is in flight), gathered together."""
        coords = _check_coords(self.catalog.entry(study).shape, indices)
        return list(
            await asyncio.gather(
                *(self._submit(study, "point", (row,)) for row in coords)
            )
        )

    async def slice(self, study: str, mode: int, index: int) -> np.ndarray:
        """The dense hyperplane ``mode = index`` of the study."""
        return await self._submit(study, "slice", (int(mode), int(index)))

    async def topk(
        self,
        study: str,
        k: int,
        mode: Optional[int] = None,
        index: Optional[int] = None,
    ) -> List[Tuple[Tuple[int, ...], float, float, float]]:
        """The study's k worst-explained simulated cells."""
        return await self._submit(study, "topk", (int(k), mode, index))

    # ------------------------------------------------------------------
    # queue plumbing
    # ------------------------------------------------------------------
    def _worker_for(self, study: str) -> _StudyWorker:
        worker = self._workers.get(study)
        if worker is None:
            self.catalog.entry(study)  # raises StudyNotFoundError early
            queue: "asyncio.Queue[Any]" = asyncio.Queue()
            task = asyncio.get_running_loop().create_task(
                self._drain(study, queue)
            )
            worker = self._workers[study] = _StudyWorker(queue, task)
        return worker

    async def _submit(self, study: str, kind: str, args: Tuple) -> Any:
        if not self._started:
            raise ServingError("server is not started")
        worker = self._worker_for(study)
        if worker.queue.qsize() >= self.max_queue:
            self.stats.shed += 1
            metrics = get_metrics()
            metrics.counter("serving.shed").inc()
            # A shed request waited zero seconds in the queue — record
            # it anyway so queue-wait percentiles (and the SLO shed
            # objectives reading them) see every admission decision,
            # not just the requests that got in.
            metrics.histogram("serving.queue_wait_seconds").observe(0.0)
            emit(
                "serving.shed",
                correlation_id=f"{study}/{kind}",
                depth=worker.queue.qsize(),
                limit=self.max_queue,
            )
            raise ServingOverloadError(
                study, worker.queue.qsize(), self.max_queue
            )
        loop = asyncio.get_running_loop()
        request = _Request(
            kind=kind, args=args, future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        worker.queue.put_nowait(request)
        return await request.future

    async def _drain(self, study: str, queue: "asyncio.Queue[Any]") -> None:
        """The per-study worker loop: block, greedily drain, serve."""
        loop = asyncio.get_running_loop()
        metrics = get_metrics()
        while True:
            first = await queue.get()
            if first is _SHUTDOWN:
                self._fail_pending(queue)
                return
            batch: List[_Request] = [first]
            shutdown = False
            if self.batching:
                while len(batch) < self.max_batch:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is _SHUTDOWN:
                        shutdown = True
                        break
                    batch.append(item)
            now = loop.time()
            for request in batch:
                metrics.histogram("serving.queue_wait_seconds").observe(
                    now - request.enqueued_at
                )
            try:
                self._serve_batch(study, batch, loop)
            except Exception as exc:  # noqa: BLE001 — a worker must
                # never die with futures in flight: clients would hang.
                failure = ServingError(f"internal serving failure: {exc}")
                failure.__cause__ = exc
                for request in batch:
                    if not request.future.done():
                        self._resolve(request, error=failure, loop=loop)
            # Let the clients whose futures just resolved run before
            # the next drain — keeps latency flat under a full queue.
            await asyncio.sleep(0)
            if shutdown:
                self._fail_pending(queue)
                return

    def _fail_pending(self, queue: "asyncio.Queue[Any]") -> None:
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not _SHUTDOWN and not item.future.done():
                item.future.set_exception(ServingError("server stopped"))

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _serve_batch(
        self, study: str, batch: List[_Request], loop
    ) -> None:
        worker = self._workers.get(study)
        if worker is not None:
            worker.batches += 1
            worker.served += len(batch)
        self.stats.batches += 1
        metrics = get_metrics()
        metrics.histogram("serving.batch_size").observe(len(batch))
        points = [r for r in batch if r.kind == "point"]
        others = [r for r in batch if r.kind != "point"]
        with _span(
            "serving-batch", "serving", study=study, batch=len(batch),
            points=len(points),
        ):
            engine = None
            try:
                injector = get_injector()
                if injector.enabled:
                    kinds = ",".join(
                        sorted({r.kind for r in batch})
                    )
                    injector.fire("serving.query", f"{study}/{kinds}")
                engine = self.catalog.engine(study)
            except ReproError as exc:
                for request in batch:
                    self._resolve(request, error=exc, loop=loop)
                return
            if points:
                coords = np.stack([r.args[0] for r in points])
                try:
                    values = engine.point_batch(coords)
                except ReproError as exc:
                    for request in points:
                        self._resolve(request, error=exc, loop=loop)
                else:
                    self.stats.points += len(points)
                    for request, value in zip(points, values):
                        self._resolve(request, value=float(value), loop=loop)
            for request in others:
                try:
                    value = self._serve_one(study, engine, request)
                except ReproError as exc:
                    self._resolve(request, error=exc, loop=loop)
                else:
                    self._resolve(request, value=value, loop=loop)

    def _serve_one(self, study: str, engine, request: _Request) -> Any:
        if request.kind == "slice":
            mode, index = request.args
            self.stats.slices += 1
            return engine.slice(mode, index)
        if request.kind == "topk":
            k, mode, index = request.args
            entry = self.catalog.entry(study)
            store = self.catalog.store_for(study)
            self.stats.topks += 1
            return engine.topk_anomalies(
                store, entry.tensor_name, k, mode=mode, index=index
            )
        raise ServingError(f"unknown request kind {request.kind!r}")

    def _resolve(
        self, request: _Request, loop, value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        metrics = get_metrics()
        metrics.histogram("serving.latency_seconds").observe(
            loop.time() - request.enqueued_at
        )
        if request.future.done():  # pragma: no cover - cancelled client
            return
        if error is not None:
            self.stats.errors += 1
            metrics.counter("serving.errors").inc()
            # Labelled twin: break errors out by exception type so
            # dashboards (and SLO objectives) can tell an overload
            # from a corrupt bundle from a bad query.
            metrics.counter(
                f"serving.errors.{type(error).__name__}"
            ).inc()
            request.future.set_exception(error)
        else:
            self.stats.served += 1
            metrics.counter("serving.served").inc()
            request.future.set_result(value)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Operator-facing snapshot: server counters, per-study queue
        state, factor-cache behaviour, latency percentiles."""
        metrics = get_metrics()
        latency = metrics.histogram("serving.latency_seconds")
        return {
            "stats": self.stats.as_dict(),
            "studies": {
                key: {
                    "served": worker.served,
                    "batches": worker.batches,
                    "queue_depth": worker.queue.qsize(),
                }
                for key, worker in self._workers.items()
            },
            "hot_factors": self.catalog.hot_factors.stats.as_dict(),
            "latency_seconds": {
                "p50": latency.percentile(50),
                "p90": latency.percentile(90),
                "p99": latency.percentile(99),
            },
        }


@dataclass
class ServingClient:
    """The in-process client: a thin, typed veneer over the server
    used by tests, benchmarks, and the CLI."""

    server: ServingServer
    study: Optional[str] = field(default=None)

    def _key(self, study: Optional[str]) -> str:
        key = study or self.study
        if not key:
            raise ServingError("no study given and client has no default")
        return key

    async def point(self, index, study: Optional[str] = None) -> float:
        return await self.server.point(self._key(study), index)

    async def point_many(self, indices, study: Optional[str] = None):
        return await self.server.point_many(self._key(study), indices)

    async def slice(
        self, mode: int, index: int, study: Optional[str] = None
    ) -> np.ndarray:
        return await self.server.slice(self._key(study), mode, index)

    async def topk(
        self, k: int, study: Optional[str] = None,
        mode: Optional[int] = None, index: Optional[int] = None,
    ):
        return await self.server.topk(
            self._key(study), k, mode=mode, index=index
        )
