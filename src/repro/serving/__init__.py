"""repro.serving — query factorized ensembles without reconstruction.

The serving layer answers **point**, **slice**, and **top-k-anomaly**
queries for many registered studies directly from their cached Tucker
factors and sharded block stores — the full tensor is never
reconstructed (``tucker.reconstructs`` stays flat while serving, and
the test suite asserts it).

The stack, bottom-up:

- :class:`~repro.serving.engine.FactorEngine` — factor-space query
  evaluation: a point is the core contracted with one factor row per
  mode (batched across a whole queue drain), a slice is a single-row
  core contraction followed by the remaining TTMs, and top-k anomaly
  scoring streams stored blocks against batched predictions.
- :mod:`repro.serving.bundle` — :class:`FactorBundle` loading through
  two cache tiers: an admission-controlled in-memory
  :class:`HotFactorCache` over the runtime's content-addressed,
  checksummed :class:`~repro.runtime.ResultCache` on disk.
- :class:`~repro.serving.catalog.StudyCatalog` — multi-tenant registry;
  every study shards into its own
  :class:`~repro.storage.BlockTensorStore` directory.
- :class:`~repro.serving.server.ServingServer` — asyncio front-end
  with per-study queues, point-query batching (one contraction per
  drain) and bounded-queue overload shedding
  (:class:`~repro.exceptions.ServingOverloadError`).

``python -m repro.serving`` exposes ``catalog`` / ``query`` / ``serve``;
:func:`~repro.serving.loadgen.run_load` is the in-process load driver
shared by the CLI, the ``BENCH_serving.json`` suite and the tests.
See ``docs/serving.md``.
"""

from .bundle import (
    FactorBundle,
    HotFactorCache,
    HotFactorStats,
    bundle_fingerprint,
    compute_bundle,
    load_bundle,
)
from .catalog import StudyCatalog, StudyEntry
from .engine import FactorEngine
from .loadgen import run_load
from .server import ServingClient, ServingServer

__all__ = [
    "FactorBundle",
    "FactorEngine",
    "HotFactorCache",
    "HotFactorStats",
    "ServingClient",
    "ServingServer",
    "StudyCatalog",
    "StudyEntry",
    "bundle_fingerprint",
    "compute_bundle",
    "load_bundle",
    "run_load",
]
