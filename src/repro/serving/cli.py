"""``python -m repro.serving`` — serve, query, and inspect catalogs.

Subcommands::

    catalog  list the studies registered under a serving root
    query    answer one point/slice/topk query from factors
    serve    drive a synthetic query stream and print the latency
             summary (optionally seeding a demo catalog first)

``serve --demo`` registers small scenario-zoo ensembles (double
pendulum, Lorenz, epidemic) so the subsystem is explorable without
writing any registration code.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from ..exceptions import ReproError
from ..faults import add_fault_args, inject_faults
from ..observability import add_observability_args, observe
from .catalog import StudyCatalog
from .loadgen import run_load

#: Scenario-zoo systems the demo catalog registers.
DEMO_SYSTEMS = ("double_pendulum", "lorenz", "epidemic_seir")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="query factorized ensembles without reconstruction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    catalog = sub.add_parser("catalog", help="list registered studies")
    catalog.add_argument("--root", required=True, help="serving root dir")

    query = sub.add_parser("query", help="answer one query from factors")
    query.add_argument("--root", required=True, help="serving root dir")
    query.add_argument("--study", required=True, help="registered study key")
    kind = query.add_subparsers(dest="kind", required=True)
    point = kind.add_parser("point", help="one cell value")
    point.add_argument(
        "index", help="comma-separated cell index, e.g. 1,2,0,3"
    )
    slc = kind.add_parser("slice", help="one dense hyperplane")
    slc.add_argument("mode", type=int)
    slc.add_argument("index", type=int)
    topk = kind.add_parser("topk", help="k worst-explained cells")
    topk.add_argument("k", type=int)
    add_observability_args(query)
    add_fault_args(query)

    serve = sub.add_parser(
        "serve", help="drive a synthetic stream, print the summary"
    )
    serve.add_argument("--root", required=True, help="serving root dir")
    serve.add_argument(
        "--demo", action="store_true",
        help="register small scenario-zoo studies first if absent",
    )
    serve.add_argument(
        "--resolution", type=int, default=4,
        help="demo study resolution (default 4)",
    )
    serve.add_argument("--clients", type=int, default=100)
    serve.add_argument("--queries", type=int, default=10,
                       help="queries per client (default 10)")
    serve.add_argument("--kind", choices=("point", "slice", "topk"),
                       default="point")
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--no-batching", action="store_true",
                       help="serve one request per drain (the control)")
    serve.add_argument("--seed", type=int, default=0)
    add_observability_args(serve)
    add_fault_args(serve)
    return parser


def register_demo_studies(
    catalog: StudyCatalog, resolution: int = 4, seed: int = 7,
    density: float = 0.3, overwrite: bool = False,
) -> List[str]:
    """Register one budget-sampled ensemble per scenario-zoo system."""
    from ..core import EnsembleStudy
    from ..sampling import RandomSampler
    from ..simulation import make_system
    from ..tensor import SparseTensor

    keys = []
    for name in DEMO_SYSTEMS:
        key = f"demo-{name}"
        keys.append(key)
        if key in catalog and not overwrite:
            continue
        study = EnsembleStudy.create(make_system(name), resolution)
        shape = study.space.shape
        budget = max(1, int(density * study.truth.size))
        sample = RandomSampler(seed=seed).sample(shape, budget)
        values = study.truth[tuple(sample.coords.T)]
        tensor = SparseTensor(shape, sample.coords, values)
        catalog.register(
            key, tensor, ranks=[2] * len(shape), overwrite=True
        )
    return keys


def _cmd_catalog(args: argparse.Namespace) -> int:
    catalog = StudyCatalog(args.root)
    if not len(catalog):
        print("(no studies registered)")
        return 0
    for key in catalog.keys():
        entry = catalog.entry(key)
        print(
            f"{key:<24} shape={'x'.join(map(str, entry.shape)):<16} "
            f"nnz={entry.nnz:<8} ranks={list(entry.ranks)} "
            f"method={entry.method}"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import asyncio

    from .server import ServingServer

    catalog = StudyCatalog(args.root)

    async def run():
        async with ServingServer(catalog) as server:
            if args.kind == "point":
                index = [int(p) for p in args.index.split(",")]
                return await server.point(args.study, index)
            if args.kind == "slice":
                return await server.slice(args.study, args.mode, args.index)
            return await server.topk(args.study, args.k)

    result = asyncio.run(run())
    if args.kind == "point":
        print(f"{result:.12g}")
    elif args.kind == "slice":
        print(f"shape: {result.shape}")
        np.savetxt(
            sys.stdout, np.atleast_2d(result.reshape(result.shape[0], -1)),
            fmt="%.6g",
        )
    else:
        for index, stored, predicted, residual in result:
            print(
                f"{index}  stored={stored:.6g} predicted={predicted:.6g} "
                f"residual={residual:.6g}"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    catalog = StudyCatalog(args.root)
    if args.demo:
        keys = register_demo_studies(catalog, resolution=args.resolution)
        print(f"demo studies: {', '.join(keys)}", file=sys.stderr)
    summary = run_load(
        catalog,
        kind=args.kind,
        n_clients=args.clients,
        queries_per_client=args.queries,
        batching=not args.no_batching,
        max_batch=args.max_batch,
        seed=args.seed,
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "catalog":
            return _cmd_catalog(args)
        with observe(
            getattr(args, "trace", None),
            getattr(args, "profile", None),
            getattr(args, "metrics", None),
            getattr(args, "events", None),
        ), inject_faults(
            getattr(args, "fault_plan", None),
            getattr(args, "fault_seed", None),
        ):
            if args.command == "query":
                return _cmd_query(args)
            return _cmd_serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
