"""Argparse glue shared by the CLIs: ``--trace`` / ``--profile`` /
``--metrics`` flags and the session that honours them.

Usage::

    add_observability_args(parser)
    args = parser.parse_args(argv)
    with observe(args.trace, args.profile, args.metrics):
        ...   # run; exporters fire on exit (also on error)
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from .exporters import flat_profile, write_chrome_trace, write_metrics
from .tracer import Tracer, use_tracer

__all__ = ["add_observability_args", "observe"]


def add_observability_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome-trace JSON of the run (open in "
        "chrome://tracing or Perfetto)",
    )
    group.add_argument(
        "--profile",
        metavar="PATH",
        help="write a flat text profile (self/cumulative wall time per "
        "span category); '-' prints it to stderr",
    )
    group.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the process metrics registry (counters/gauges/"
        "histograms) as JSON",
    )


@contextmanager
def observe(
    trace_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> Iterator[Optional[Tracer]]:
    """Install a tracer when any trace output was requested and export
    everything on the way out (even when the run raised — a partial
    trace of a failed run is exactly when you want one)."""
    wants_trace = bool(trace_path or profile_path)
    tracer = Tracer() if wants_trace else None
    try:
        if tracer is not None:
            with use_tracer(tracer):
                yield tracer
        else:
            yield None
    finally:
        if tracer is not None and trace_path:
            write_chrome_trace(tracer, trace_path)
        if tracer is not None and profile_path:
            if profile_path == "-":
                print(flat_profile(tracer), file=sys.stderr)
            else:
                with open(profile_path, "w") as handle:
                    handle.write(flat_profile(tracer) + "\n")
        if metrics_path:
            write_metrics(metrics_path)
