"""Argparse glue shared by the CLIs: ``--trace`` / ``--profile`` /
``--metrics`` / ``--events`` flags and the session that honours them.

Usage::

    add_observability_args(parser)
    args = parser.parse_args(argv)
    with observe(args.trace, args.profile, args.metrics, args.events):
        ...   # run; exporters fire on exit (also on error)
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from .events import EventLog, set_event_log
from .exporters import flat_profile, write_chrome_trace, write_metrics
from .tracer import Tracer, use_tracer

__all__ = ["add_observability_args", "main", "observe"]


def add_observability_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome-trace JSON of the run (open in "
        "chrome://tracing or Perfetto)",
    )
    group.add_argument(
        "--profile",
        metavar="PATH",
        help="write a flat text profile (self/cumulative wall time per "
        "span category); '-' prints it to stderr",
    )
    group.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the process metrics registry (counters/gauges/"
        "histograms) as JSON",
    )
    group.add_argument(
        "--events",
        metavar="PATH",
        help="append structured JSON-lines events (worker respawns, "
        "shed queries, telemetry drops) with correlation ids",
    )


@contextmanager
def observe(
    trace_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> Iterator[Optional[Tracer]]:
    """Install a tracer when any trace output was requested and export
    everything on the way out (even when the run raised — a partial
    trace of a failed run is exactly when you want one)."""
    wants_trace = bool(trace_path or profile_path)
    tracer = Tracer() if wants_trace else None
    events = EventLog(events_path) if events_path else None
    if events is not None:
        set_event_log(events)
    try:
        if tracer is not None:
            with use_tracer(tracer):
                yield tracer
        else:
            yield None
    finally:
        if events is not None:
            set_event_log(None)
            events.close()
        if tracer is not None and trace_path:
            write_chrome_trace(tracer, trace_path)
        if tracer is not None and profile_path:
            if profile_path == "-":
                print(flat_profile(tracer), file=sys.stderr)
            else:
                with open(profile_path, "w") as handle:
                    handle.write(flat_profile(tracer) + "\n")
        if metrics_path:
            write_metrics(metrics_path)


# ----------------------------------------------------------------------
# python -m repro.observability
# ----------------------------------------------------------------------

def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from .metrics import get_metrics
    from .slo import evaluate_slos, load_objectives

    objectives = load_objectives(args.objectives)
    if args.metrics:
        with open(args.metrics) as handle:
            snapshot = json.load(handle)
    else:
        snapshot = get_metrics().as_dict()
    report = evaluate_slos(objectives, snapshot)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.check and not report.ok:
        return 1
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    import json

    shown = 0
    with open(args.path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if args.event and not record.get("event", "").startswith(
                args.event
            ):
                continue
            if args.correlation and (
                record.get("correlation_id") != args.correlation
            ):
                continue
            print(json.dumps(record, sort_keys=True))
            shown += 1
    print(f"{shown} matching event(s)", file=sys.stderr)
    return 0


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.observability`` — SLO checks and event greps."""
    parser = argparse.ArgumentParser(
        prog="repro.observability",
        description="Evaluate SLOs against a metrics dump; filter "
        "structured event logs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    slo = commands.add_parser(
        "slo", help="evaluate declarative objectives against metrics"
    )
    slo.add_argument(
        "--objectives",
        required=True,
        metavar="PATH",
        help="JSON objective file (e.g. benchmarks/slo/default.json)",
    )
    slo.add_argument(
        "--metrics",
        metavar="PATH",
        help="metrics JSON dump to evaluate (from a --metrics run); "
        "defaults to this process's live registry",
    )
    slo.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any objective breaches",
    )
    slo.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    slo.set_defaults(fn=_cmd_slo)

    events = commands.add_parser(
        "events", help="filter a JSON-lines event log"
    )
    events.add_argument("path", help="event .jsonl file (from --events)")
    events.add_argument(
        "--event", metavar="PREFIX", help="keep events whose name starts with this"
    )
    events.add_argument(
        "--correlation", metavar="ID", help="keep events with this correlation id"
    )
    events.set_defaults(fn=_cmd_events)

    args = parser.parse_args(argv)
    return args.fn(args)
