"""Structured JSON-lines event log with cross-process correlation IDs.

Spans answer "where did the time go", metrics answer "how much";
events answer "what *happened*, in order, and to which request".  One
record per noteworthy occurrence — a worker respawn, a shed query, a
dropped telemetry snapshot — each carrying a ``correlation_id`` shared
across the supervisor ↔ worker ↔ serving paths, so the full story of
one task or query is a single grep away::

    {"ts": 1754650000.123, "pid": 4242, "event": "worker.respawn",
     "correlation_id": "worker-2", "attempt": 1}

Like the tracer, the default is a no-op :class:`NullEventLog`, so the
emit sites sprinkled through hot-ish paths cost one attribute check
while the feature is off.  A live :class:`EventLog` buffers records in
memory (for telemetry shipping and tests) and can append to a
``.jsonl`` file as records arrive (the ``--events`` CLI flag).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NULL_EVENT_LOG",
    "EventLog",
    "NullEventLog",
    "emit",
    "get_event_log",
    "set_event_log",
    "use_event_log",
]


def _json_default(value: Any) -> str:
    return repr(value)


class EventLog:
    """Collects structured event records, optionally teeing to a file."""

    enabled = True

    def __init__(self, path: Optional[str] = None):
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._path = path
        self._handle = open(path, "a") if path else None

    def emit(
        self, event: str, correlation_id: str = "", **fields: Any
    ) -> Dict[str, Any]:
        """Record one event; extra ``fields`` land in the record as-is."""
        record: Dict[str, Any] = {
            "ts": time.time(),
            "pid": os.getpid(),
            "event": event,
            "correlation_id": correlation_id,
        }
        record.update(fields)
        with self._lock:
            self._records.append(record)
            if self._handle is not None:
                self._handle.write(
                    json.dumps(record, sort_keys=True, default=_json_default)
                    + "\n"
                )
                self._handle.flush()
        return record

    def ingest(self, records: List[Dict[str, Any]]) -> None:
        """Fold records produced elsewhere (a worker's buffered log)
        into this log, preserving their original ``ts``/``pid``."""
        with self._lock:
            for record in records:
                self._records.append(dict(record))
                if self._handle is not None:
                    self._handle.write(
                        json.dumps(
                            record, sort_keys=True, default=_json_default
                        )
                        + "\n"
                    )
            if self._handle is not None and records:
                self._handle.flush()

    def records(
        self,
        event: Optional[str] = None,
        correlation_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Buffered records, optionally filtered by event-name prefix
        and/or exact correlation id."""
        with self._lock:
            found = list(self._records)
        if event is not None:
            found = [r for r in found if r["event"].startswith(event)]
        if correlation_id is not None:
            found = [r for r in found if r["correlation_id"] == correlation_id]
        return found

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def export_records(self) -> List[Dict[str, Any]]:
        """JSON-ready copy of the buffer (the telemetry-shipping path)."""
        with self._lock:
            return [dict(r) for r in self._records]

    def clear(self) -> None:
        with self._lock:
            self._records = []

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class NullEventLog:
    """The disabled default: drops everything, allocates nothing."""

    enabled = False

    def emit(self, event: str, correlation_id: str = "", **fields: Any) -> None:
        return None

    def ingest(self, records: List[Dict[str, Any]]) -> None:
        pass

    def records(self, *args: Any, **kwargs: Any) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0

    def export_records(self) -> List[Dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_EVENT_LOG = NullEventLog()

_active: Any = NULL_EVENT_LOG


def get_event_log() -> Any:
    """The process-wide active event log (no-op unless switched on)."""
    return _active


def set_event_log(log: Optional[Any]) -> None:
    """Install ``log`` process-wide; ``None`` restores the no-op."""
    global _active
    _active = log if log is not None else NULL_EVENT_LOG


def emit(event: str, correlation_id: str = "", **fields: Any) -> None:
    """Emit one event on the active log (no-op while disabled).

    The one call instrumented sites use::

        emit("serving.shed", correlation_id=request_id, depth=depth)
    """
    log = _active
    if log.enabled:
        log.emit(event, correlation_id=correlation_id, **fields)


@contextmanager
def use_event_log(log: Optional[Any] = None) -> Iterator[Any]:
    """Temporarily install an (in-memory by default) event log."""
    previous = _active
    set_event_log(log if log is not None else EventLog())
    try:
        yield _active
    finally:
        set_event_log(previous)
