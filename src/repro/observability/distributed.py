"""Cross-process trace stitching and worker telemetry shipping.

A worker child process has its own tracer epoch, its own metrics
registry, and its own event buffer — none of which the parent can see.
This module is the bridge:

* :class:`TraceContext` — the tiny picklable capsule (trace id +
  dispatching span name) the parent sends *out* with each task body;
* :func:`capture` — the child-side context manager that installs a
  fresh :class:`~repro.observability.Tracer` /
  :class:`~repro.observability.MetricsRegistry` /
  :class:`~repro.observability.EventLog` around task execution and
  serializes what they collected;
* :func:`encode_snapshot` / :func:`decode_snapshot` — the JSON wire
  shape that rides *home* inside the checksummed reply envelope;
* :func:`merge_snapshot` — the parent-side fold: child spans attach
  under the dispatching span (clock-skew-normalized onto the parent's
  timeline and clamped into the dispatch window), counters/histograms
  add into the process-wide registry with ``worker.<id>`` attribution,
  and buffered child events replay into the parent's event log;
* :func:`merged_trace_signature` — a canonical, timing-free rendering
  of the merged dispatch subtrees, so tests can assert byte-identical
  merges across worker counts;
* :class:`TelemetryTask` — the same capture wrapped as a picklable
  callable, for runtime process-executor submissions.

Clock-skew normalization: each tracer records ``epoch_unix``
(``time.time()`` at construction) alongside its ``perf_counter``
epoch.  A child offset maps onto the parent timeline as
``child.epoch_unix - parent.epoch_unix + offset`` — wall clocks agree
across processes on one host far better than the two unrelated
``perf_counter`` domains do — and the result is clamped into the
dispatching span's window so a skewed clock can never make a child
span float outside the dispatch that caused it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

from contextlib import contextmanager

from .events import EventLog, get_event_log, set_event_log
from .metrics import MetricsRegistry, get_metrics, set_metrics
from .tracer import Span, Tracer, get_tracer, set_tracer

__all__ = [
    "SNAPSHOT_VERSION",
    "TelemetryEnvelope",
    "TelemetryTask",
    "TraceContext",
    "capture",
    "current_trace_context",
    "decode_snapshot",
    "encode_snapshot",
    "merge_snapshot",
    "merged_trace_signature",
    "span_from_dict",
    "span_to_dict",
]

SNAPSHOT_VERSION = 1

#: Attributes stripped by :func:`merged_trace_signature` — everything
#: that legitimately varies run-to-run or with the worker count.
VOLATILE_ATTRS = frozenset(
    {"worker", "pid", "trace_id", "requeues", "thread", "attempt"}
)


class TraceContext:
    """What a parent propagates with a task: enough for the child to
    tag its telemetry and for the parent to stitch it back."""

    __slots__ = ("trace_id", "parent_span")

    def __init__(self, trace_id: str, parent_span: str = ""):
        self.trace_id = trace_id
        self.parent_span = parent_span

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"parent_span={self.parent_span!r})"
        )


def current_trace_context(parent_span: str = "") -> Optional[TraceContext]:
    """A :class:`TraceContext` for the active tracer, or ``None`` while
    tracing is off — the ``None`` is what keeps the disabled path free
    of telemetry work end to end."""
    tracer = get_tracer()
    if not tracer.enabled:
        return None
    return TraceContext(tracer.trace_id, parent_span)


# ----------------------------------------------------------------------
# span (de)serialization
# ----------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def span_to_dict(span: Span) -> Dict[str, Any]:
    """JSON-ready rendering of one span subtree."""
    return {
        "name": span.name,
        "category": span.category,
        "started": span.started,
        "wall": span.wall_seconds,
        "cpu": span.cpu_seconds,
        "thread": span.thread,
        "error": span.error,
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(
    tracer: Tracer,
    data: Dict[str, Any],
    shift: float = 0.0,
    window: Optional[tuple] = None,
    process_id: int = 0,
    process_name: str = "",
) -> Span:
    """Rebuild a span subtree onto ``tracer``'s timeline.

    ``shift`` moves the recorded offsets into the parent's epoch;
    ``window`` (lo, hi) clamps the result so skewed child clocks stay
    inside the dispatching span.
    """
    span = Span(tracer, data["name"], data["category"], dict(data.get("attrs") or {}))
    started = float(data.get("started", 0.0)) + shift
    wall = max(0.0, float(data.get("wall", 0.0)))
    if window is not None:
        lo, hi = window
        started = min(max(started, lo), hi)
        wall = max(0.0, min(wall, hi - started))
    span.started = started
    span.wall_seconds = wall
    span.cpu_seconds = float(data.get("cpu", 0.0))
    span.thread = data.get("thread", "")
    span.error = data.get("error")
    span.process_id = process_id
    span.process_name = process_name
    span.children = [
        span_from_dict(
            tracer,
            child,
            shift=shift,
            window=(span.started, span.started + span.wall_seconds),
            process_id=process_id,
            process_name=process_name,
        )
        for child in data.get("children", ())
    ]
    return span


# ----------------------------------------------------------------------
# child side: capture + encode
# ----------------------------------------------------------------------

class Telemetry:
    """What :func:`capture` collected: live handles plus a snapshot."""

    def __init__(
        self,
        tracer: Tracer,
        registry: MetricsRegistry,
        events: EventLog,
        worker: str = "",
    ):
        self.tracer = tracer
        self.registry = registry
        self.events = events
        self.worker = worker

    def snapshot(self) -> Dict[str, Any]:
        import os

        return {
            "version": SNAPSHOT_VERSION,
            "trace_id": self.tracer.trace_id,
            "pid": os.getpid(),
            "worker": self.worker,
            "epoch_unix": self.tracer.epoch_unix,
            "spans": [span_to_dict(root) for root in self.tracer.roots()],
            "metrics": self.registry.export_state(),
            "events": self.events.export_records(),
        }

    def encode(self) -> bytes:
        return encode_snapshot(self.snapshot())


@contextmanager
def capture(
    context: Optional[TraceContext] = None, worker: str = ""
) -> Iterator[Telemetry]:
    """Collect telemetry around a task body in a child process.

    Installs a fresh tracer (carrying the propagated trace id),
    metrics registry, and event buffer as the process-wide actives,
    runs the body, then restores whatever was installed before — the
    same child can capture many tasks back to back without their
    telemetry bleeding together.
    """
    tracer = Tracer()
    if context is not None and context.trace_id:
        tracer.trace_id = context.trace_id
    registry = MetricsRegistry()
    events = EventLog()
    prev_tracer, prev_metrics, prev_events = (
        get_tracer(),
        get_metrics(),
        get_event_log(),
    )
    set_tracer(tracer)
    set_metrics(registry)
    set_event_log(events)
    try:
        yield Telemetry(tracer, registry, events, worker=worker)
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
        set_event_log(prev_events)


def encode_snapshot(snapshot: Dict[str, Any]) -> bytes:
    return json.dumps(snapshot, sort_keys=True, default=repr).encode("utf-8")


def decode_snapshot(payload: bytes) -> Dict[str, Any]:
    """Parse a snapshot off the wire; raises ``ValueError`` when the
    bytes are not a snapshot (the corrupt-telemetry degradation path)."""
    try:
        snapshot = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"undecodable telemetry snapshot: {exc}") from exc
    if not isinstance(snapshot, dict) or "version" not in snapshot:
        raise ValueError("telemetry payload is not a snapshot")
    if snapshot["version"] != SNAPSHOT_VERSION:
        raise ValueError(
            f"telemetry snapshot version {snapshot['version']!r} "
            f"!= {SNAPSHOT_VERSION}"
        )
    return snapshot


# ----------------------------------------------------------------------
# parent side: merge
# ----------------------------------------------------------------------

def merge_snapshot(
    snapshot: Dict[str, Any],
    parent_span: Optional[Span] = None,
    tracer: Optional[Any] = None,
    registry: Optional[MetricsRegistry] = None,
    events: Optional[Any] = None,
    dispatched_unix: Optional[float] = None,
    worker_id: str = "",
) -> int:
    """Fold one child snapshot into the parent's telemetry.

    Spans attach as children of ``parent_span`` (the dispatch span),
    clock-skew-normalized onto the parent tracer's timeline and
    clamped into the dispatch window; metrics fold with ``worker.<id>``
    attribution; events replay tagged with their origin.  Returns the
    number of spans attached.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_metrics()
    events = events if events is not None else get_event_log()
    worker_id = worker_id or str(snapshot.get("worker") or "")
    label = f"worker.{worker_id}" if worker_id else "worker"

    attached = 0
    if parent_span is not None and getattr(tracer, "enabled", False):
        window = (
            parent_span.started,
            parent_span.started + parent_span.wall_seconds,
        )
        # Child offsets → parent offsets via the wall-clock delta
        # between the two tracer epochs.
        child_epoch = float(snapshot.get("epoch_unix") or 0.0)
        if child_epoch and dispatched_unix is not None:
            shift = window[0] + (child_epoch - dispatched_unix)
        else:
            shift = window[0]
        pid = int(snapshot.get("pid") or 0)
        for root in snapshot.get("spans", ()):
            parent_span.children.append(
                span_from_dict(
                    tracer,
                    root,
                    shift=shift,
                    window=window,
                    process_id=pid,
                    process_name=label,
                )
            )
            attached += 1

    metrics_state = snapshot.get("metrics") or {}
    if metrics_state:
        registry.merge_state(metrics_state, worker_id=worker_id)

    child_events = snapshot.get("events") or []
    if child_events and getattr(events, "enabled", False):
        events.ingest(
            [dict(record, worker=worker_id) for record in child_events]
        )
    return attached


# ----------------------------------------------------------------------
# canonical signatures (determinism tests)
# ----------------------------------------------------------------------

def _canonical_span(span: Span) -> Dict[str, Any]:
    canon = {
        "name": span.name,
        "category": span.category,
        "error": span.error,
        "attrs": {
            key: _jsonable(value)
            for key, value in sorted(span.attrs.items())
            if key not in VOLATILE_ATTRS
        },
        "children": sorted(
            (_canonical_span(child) for child in span.children),
            key=lambda child: json.dumps(child, sort_keys=True),
        ),
    }
    return canon


def merged_trace_signature(tracer: Any, prefix: str = "dispatch:") -> str:
    """A canonical JSON rendering of every ``dispatch:*`` subtree.

    Strips everything volatile — timing, thread names, worker/pid
    attribution, requeue counts — and sorts children, so the same
    logical workload produces byte-identical signatures regardless of
    worker count, scheduling order, or clock behaviour.
    """
    subtrees = [
        _canonical_span(span)
        for span in getattr(tracer, "iter_spans", lambda: ())()
        if span.name.startswith(prefix)
    ]
    subtrees.sort(key=lambda tree: (tree["name"], json.dumps(tree, sort_keys=True)))
    return json.dumps(subtrees, sort_keys=True)


# ----------------------------------------------------------------------
# runtime process-executor path
# ----------------------------------------------------------------------

class TelemetryEnvelope:
    """A task result plus the telemetry captured while producing it."""

    __slots__ = ("value", "snapshot")

    def __init__(self, value: Any, snapshot: Dict[str, Any]):
        self.value = value
        self.snapshot = snapshot


class TelemetryTask:
    """Picklable wrapper giving a runtime process-executor submission
    the same capture-and-ship behaviour as a supervised worker task.

    The scheduler wraps the task function with this only while tracing
    is on *and* the executor crosses a process boundary; the result
    comes back as a :class:`TelemetryEnvelope` the scheduler unwraps
    and merges before caching.
    """

    __slots__ = ("fn", "context", "label")

    def __init__(self, fn: Any, context: Optional[TraceContext], label: str = ""):
        self.fn = fn
        self.context = context
        self.label = label

    def __call__(self, *args: Any, **kwargs: Any) -> TelemetryEnvelope:
        with capture(self.context, worker=self.label) as telemetry:
            value = self.fn(*args, **kwargs)
        return TelemetryEnvelope(value, telemetry.snapshot())
