"""repro.observability — tracing, metrics, and profiling hooks.

The instrumentation layer the rest of the stack reports into:

:func:`span` / :class:`Tracer`
    Nested wall/CPU-timed spans with attributes (tensor shape, nnz,
    rank, worker).  The default tracer is a no-op; CLIs install a real
    one for ``--trace`` / ``--profile``.
:class:`MetricsRegistry` / :func:`get_metrics`
    Process-wide counters, gauges and histograms.
:func:`write_chrome_trace` / :func:`flat_profile` / :func:`write_metrics`
    Exporters: ``chrome://tracing``-loadable JSON, a flat text
    self/cumulative profile per span category, and a JSON metrics dump.
:class:`TraceContext` / :func:`capture` / :func:`merge_snapshot`
    Distributed stitching: worker children record into local
    tracer/metrics/event instances whose serialized snapshot rides
    home in the reply envelope and folds back under the dispatching
    span with ``worker.<id>`` attribution.
:func:`emit` / :class:`EventLog`
    Structured JSON-lines events with correlation ids shared across
    the supervisor ↔ worker ↔ serving paths.
:func:`evaluate_slos` / ``python -m repro.observability slo --check``
    Declarative service-level objectives evaluated against a metrics
    snapshot, with nonzero exit on breach.

Span taxonomy (the categories the flat profile splits time across):

==============  ======================================================
category        covers
==============  ======================================================
sample          drawing cell coordinates / sub-ensemble selection
simulate        integrator batches and ground-truth construction
stitch          join / zero-join tensor assembly
decompose       SVDs, HOSVD/HOOI sweeps, M2TD core recovery
stitch-factor   combining pivot factor matrices (AVG/CONCAT/SELECT)
tensor-op       low-level unfold/fold/TTM/matricize primitives
sketch          MACH entry-subsampling (``sparsify``) for sketched runs
mapreduce       map/reduce tasks of the local engine
storage         block-store put/get/slice I/O
experiment      one CLI experiment run end to end
runtime-task    task-graph metrics bridged from ``RuntimeReport``
bench           one harness workload iteration (``repro.bench``)
serving         factor-space queries, batch drains, bundle loads
worker          supervised worker batches and (re)spawns
campaign        adaptive campaign runs and their explore/confirm rounds
==============  ======================================================

This package imports nothing from the rest of ``repro`` so that every
layer (tensor primitives included) can depend on it freely.
"""

from .cli import add_observability_args, observe
from .distributed import (
    TelemetryEnvelope,
    TelemetryTask,
    TraceContext,
    capture,
    current_trace_context,
    decode_snapshot,
    encode_snapshot,
    merge_snapshot,
    merged_trace_signature,
    span_from_dict,
    span_to_dict,
)
from .events import (
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    emit,
    get_event_log,
    set_event_log,
    use_event_log,
)
from .exporters import (
    chrome_trace,
    flat_profile,
    write_chrome_trace,
    write_flat_profile,
    write_metrics,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_metrics,
    set_metrics,
    use_metrics,
)
from .slo import (
    SLObjective,
    SLOReport,
    SLOResult,
    evaluate_slos,
    load_objectives,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)

__all__ = [
    "add_observability_args",
    "observe",
    "TelemetryEnvelope",
    "TelemetryTask",
    "TraceContext",
    "capture",
    "current_trace_context",
    "decode_snapshot",
    "encode_snapshot",
    "merge_snapshot",
    "merged_trace_signature",
    "span_from_dict",
    "span_to_dict",
    "NULL_EVENT_LOG",
    "EventLog",
    "NullEventLog",
    "emit",
    "get_event_log",
    "set_event_log",
    "use_event_log",
    "SLObjective",
    "SLOReport",
    "SLOResult",
    "evaluate_slos",
    "load_objectives",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "chrome_trace",
    "flat_profile",
    "write_chrome_trace",
    "write_flat_profile",
    "write_metrics",
]
