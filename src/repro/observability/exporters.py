"""Trace and metrics exporters.

Three output formats, matched to three consumers:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome trace
  event format (load the JSON file in ``chrome://tracing`` or Perfetto
  to see the span forest on a per-thread timeline);
* :func:`flat_profile` — a plain-text self/cumulative profile per span
  category (and per span name within it), the quick "where did the
  time go" answer for terminals and BENCH files;
* :func:`write_metrics` — the :class:`~repro.observability.metrics.
  MetricsRegistry` snapshot as JSON.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_metrics
from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "flat_profile",
    "write_chrome_trace",
    "write_flat_profile",
    "write_metrics",
]


def _json_safe(value: Any) -> Any:
    """Coerce span attributes to JSON-serialisable primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    # numpy scalars expose .item(); anything else falls back to repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except Exception:
            pass
    return repr(value)


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's span forest as a Chrome trace-event document.

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond timestamps relative to the tracer epoch; threads map to
    ``tid`` rows named by metadata events, so executor workers show up
    as their own swimlanes.  Spans merged in from *other* processes
    (worker telemetry) keep their originating pid, so each worker
    renders as its own named process lane instead of everything being
    flattened onto one row.
    """
    events: List[Dict[str, Any]] = []
    thread_ids: Dict[Tuple[int, str], int] = {}
    named_pids: Dict[int, str] = {}
    local_pid = os.getpid()

    def pid_for(span: Span) -> int:
        pid = span.process_id or local_pid
        if pid not in named_pids:
            named_pids[pid] = span.process_name or "main"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": named_pids[pid]},
                }
            )
        return pid

    def tid_for(pid: int, thread: str) -> int:
        key = (pid, thread)
        if key not in thread_ids:
            thread_ids[key] = len(thread_ids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": thread_ids[key],
                    "args": {"name": thread or "unknown"},
                }
            )
        return thread_ids[key]

    for span in tracer.iter_spans():
        args = {k: _json_safe(v) for k, v in span.attrs.items()}
        args["cpu_seconds"] = round(span.cpu_seconds, 6)
        if span.error is not None:
            args["error"] = span.error
        pid = pid_for(span)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.started * 1e6,
                "dur": span.wall_seconds * 1e6,
                "pid": pid,
                "tid": tid_for(pid, span.thread),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1)
        handle.write("\n")


# ----------------------------------------------------------------------
# flat text profile
# ----------------------------------------------------------------------
def _aggregate(
    tracer: Tracer,
) -> Tuple[Dict[str, Dict[str, float]], Dict[Tuple[str, str], Dict[str, float]]]:
    """Aggregate self/cumulative seconds per category and per name.

    Cumulative time for a category counts a span only when no ancestor
    shares its category — otherwise recursive decompositions (HOSVD
    inside M2TD inside an experiment) would double-count.
    """
    by_category: Dict[str, Dict[str, float]] = {}
    by_name: Dict[Tuple[str, str], Dict[str, float]] = {}

    def visit(span: Span, ancestor_categories: frozenset) -> None:
        cat = by_category.setdefault(
            span.category, {"calls": 0, "self": 0.0, "cum": 0.0, "cpu": 0.0}
        )
        cat["calls"] += 1
        cat["self"] += span.self_seconds
        cat["cpu"] += span.cpu_seconds
        if span.category not in ancestor_categories:
            cat["cum"] += span.wall_seconds
        name = by_name.setdefault(
            (span.category, span.name), {"calls": 0, "self": 0.0}
        )
        name["calls"] += 1
        name["self"] += span.self_seconds
        nested = ancestor_categories | {span.category}
        for child in span.children:
            visit(child, nested)

    for root in tracer.roots():
        visit(root, frozenset())
    return by_category, by_name


def flat_profile(tracer: Tracer, top: Optional[int] = None) -> str:
    """Plain-text profile: self/cumulative wall time per span category,
    with a per-span-name breakdown under each category.

    ``self`` is wall time not covered by child spans; ``cum`` is wall
    time of the outermost spans of the category (nested same-category
    spans are not double-counted); ``self%`` is against the summed
    top-level span time.
    """
    by_category, by_name = _aggregate(tracer)
    total = tracer.total_wall_seconds()
    lines = [
        f"flat profile — {tracer.n_spans} spans, "
        f"{total:.3f}s total top-level wall time",
        "",
        f"{'category':<16} {'calls':>7} {'self(s)':>10} "
        f"{'cum(s)':>10} {'cpu(s)':>10} {'self%':>7}",
        "-" * 64,
    ]
    ordered = sorted(
        by_category.items(), key=lambda item: item[1]["self"], reverse=True
    )
    for category, agg in ordered:
        pct = 100.0 * agg["self"] / total if total > 0 else 0.0
        lines.append(
            f"{category:<16} {int(agg['calls']):>7} {agg['self']:>10.4f} "
            f"{agg['cum']:>10.4f} {agg['cpu']:>10.4f} {pct:>6.1f}%"
        )
        names = sorted(
            (
                (name, agg2)
                for (cat2, name), agg2 in by_name.items()
                if cat2 == category
            ),
            key=lambda item: item[1]["self"],
            reverse=True,
        )
        if top is not None:
            names = names[:top]
        for name, agg2 in names:
            lines.append(
                f"  {name:<21} {int(agg2['calls']):>7} {agg2['self']:>10.4f}"
            )
    return "\n".join(lines)


def write_flat_profile(
    tracer: Tracer, path: str, top: Optional[int] = None
) -> None:
    with open(path, "w") as handle:
        handle.write(flat_profile(tracer, top=top) + "\n")


def write_metrics(path: str, registry: Optional[MetricsRegistry] = None) -> None:
    """Dump a metrics registry (the global one by default) as JSON."""
    (registry or get_metrics()).write_json(path)
