"""Declarative service-level objectives evaluated against a metrics dump.

An *objective* is a small JSON record naming a metric, the statistic to
read off it, a comparison, and a threshold::

    {"name": "serving-p99", "metric": "serving.latency_seconds",
     "stat": "p99", "op": "<=", "threshold": 0.25}

Rates divide one metric by the sum of several::

    {"name": "shed-rate", "metric": "serving.shed", "stat": "rate",
     "denominator": ["serving.shed", "serving.served"],
     "op": "<=", "threshold": 0.05}

Objectives evaluate against a registry snapshot — either the live
process registry or a ``--metrics`` JSON dump — and the report powers
``python -m repro.observability slo --check``, which exits nonzero on
any breach (CI runs it warn-only against
``benchmarks/slo/default.json``).

A missing metric *skips* the objective (the run simply didn't exercise
that subsystem) unless the objective says ``"required": true``, in
which case absence is itself a breach.  For ``rate``, a missing
numerator or an all-zero denominator reads as a rate of ``0.0`` —
"nothing shed out of nothing served" is a healthy idle system, not an
error.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..exceptions import SLOConfigError

__all__ = [
    "SLObjective",
    "SLOReport",
    "SLOResult",
    "evaluate_slos",
    "load_objectives",
]

#: Statistics an objective may read.  ``value`` works on counters and
#: gauges; the rest address histogram summary fields; ``rate`` divides
#: the metric's scalar by the summed scalars of ``denominator``.
STATS = (
    "value",
    "count",
    "sum",
    "mean",
    "min",
    "max",
    "p50",
    "p90",
    "p99",
    "rate",
)

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}


class SLObjective:
    """One declarative objective against one metric."""

    __slots__ = (
        "name",
        "metric",
        "stat",
        "op",
        "threshold",
        "denominator",
        "required",
        "description",
    )

    def __init__(
        self,
        name: str,
        metric: str,
        stat: str,
        op: str,
        threshold: float,
        denominator: Sequence[str] = (),
        required: bool = False,
        description: str = "",
    ):
        if stat not in STATS:
            raise SLOConfigError(
                f"objective {name!r}: unknown stat {stat!r} "
                f"(choose from {', '.join(STATS)})"
            )
        if op not in _OPS:
            raise SLOConfigError(
                f"objective {name!r}: unknown op {op!r} "
                f"(choose from {', '.join(sorted(_OPS))})"
            )
        if stat == "rate" and not denominator:
            raise SLOConfigError(
                f"objective {name!r}: stat 'rate' needs a denominator"
            )
        self.name = name
        self.metric = metric
        self.stat = stat
        self.op = op
        self.threshold = float(threshold)
        self.denominator = tuple(denominator)
        self.required = bool(required)
        self.description = description

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLObjective":
        try:
            return cls(
                name=data["name"],
                metric=data["metric"],
                stat=data.get("stat", "value"),
                op=data["op"],
                threshold=data["threshold"],
                denominator=data.get("denominator", ()),
                required=data.get("required", False),
                description=data.get("description", ""),
            )
        except KeyError as exc:
            raise SLOConfigError(
                f"objective record missing field {exc.args[0]!r}: {data!r}"
            ) from exc

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
        }
        if self.denominator:
            record["denominator"] = list(self.denominator)
        if self.required:
            record["required"] = True
        if self.description:
            record["description"] = self.description
        return record

    def __repr__(self) -> str:
        return (
            f"SLObjective({self.name!r}: {self.metric}.{self.stat} "
            f"{self.op} {self.threshold})"
        )


def _scalar(state: Optional[Dict[str, Any]]) -> float:
    """The natural magnitude of a metric: a counter/gauge's value, a
    histogram's count — what rate numerators and denominators sum."""
    if state is None:
        return 0.0
    if state.get("kind") == "histogram":
        return float(state.get("count") or 0.0)
    return float(state.get("value") or 0.0)


class SLOResult:
    """One objective's outcome against one snapshot."""

    __slots__ = ("objective", "status", "value", "detail")

    OK = "ok"
    BREACH = "breach"
    SKIPPED = "skipped"

    def __init__(
        self,
        objective: SLObjective,
        status: str,
        value: Optional[float],
        detail: str = "",
    ):
        self.objective = objective
        self.status = status
        self.value = value
        self.detail = detail

    @property
    def ok(self) -> bool:
        return self.status != self.BREACH

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.objective.name,
            "metric": self.objective.metric,
            "stat": self.objective.stat,
            "op": self.objective.op,
            "threshold": self.objective.threshold,
            "status": self.status,
            "value": self.value,
            "detail": self.detail,
        }

    def render(self) -> str:
        objective = self.objective
        shown = "n/a" if self.value is None else f"{self.value:.6g}"
        line = (
            f"[{self.status.upper():7s}] {objective.name}: "
            f"{objective.metric}.{objective.stat} = {shown} "
            f"{objective.op} {objective.threshold:g}"
        )
        if self.detail:
            line += f"  ({self.detail})"
        return line


class SLOReport:
    """Every objective's result; ``ok`` iff nothing breached."""

    def __init__(self, results: List[SLOResult]):
        self.results = results

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def breaches(self) -> List[SLOResult]:
        return [r for r in self.results if r.status == SLOResult.BREACH]

    @property
    def skipped(self) -> List[SLOResult]:
        return [r for r in self.results if r.status == SLOResult.SKIPPED]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "results": [result.as_dict() for result in self.results],
        }

    def render(self) -> str:
        lines = [result.render() for result in self.results]
        checked = len(self.results) - len(self.skipped)
        lines.append(
            f"{len(self.breaches)} breached / {checked} checked / "
            f"{len(self.skipped)} skipped"
        )
        return "\n".join(lines)


def _evaluate_one(
    objective: SLObjective, snapshot: Dict[str, Dict[str, Any]]
) -> SLOResult:
    state = snapshot.get(objective.metric)

    if objective.stat == "rate":
        denominator = sum(
            _scalar(snapshot.get(name)) for name in objective.denominator
        )
        if denominator <= 0.0:
            value: Optional[float] = 0.0
            detail = "empty denominator; rate reads 0"
        else:
            value = _scalar(state) / denominator
            detail = f"denominator={denominator:g}"
    elif state is None:
        if objective.required:
            return SLOResult(
                objective,
                SLOResult.BREACH,
                None,
                f"required metric {objective.metric!r} absent",
            )
        return SLOResult(
            objective,
            SLOResult.SKIPPED,
            None,
            f"metric {objective.metric!r} absent",
        )
    else:
        raw = state.get(objective.stat)
        if raw is None and objective.stat == "value":
            raw = _scalar(state)
        if raw is None:
            return SLOResult(
                objective,
                SLOResult.SKIPPED,
                None,
                f"{objective.metric!r} has no {objective.stat!r} yet",
            )
        value = float(raw)
        detail = ""

    assert value is not None
    passed = _OPS[objective.op](value, objective.threshold)
    return SLOResult(
        objective,
        SLOResult.OK if passed else SLOResult.BREACH,
        value,
        detail,
    )


def evaluate_slos(
    objectives: Sequence[SLObjective],
    snapshot: Dict[str, Dict[str, Any]],
) -> SLOReport:
    """Evaluate every objective against one registry snapshot
    (:meth:`MetricsRegistry.as_dict` shape, or a ``--metrics`` dump
    loaded back from JSON)."""
    return SLOReport([_evaluate_one(o, snapshot) for o in objectives])


def load_objectives(path: str) -> List[SLObjective]:
    """Objectives from a JSON file: either a bare list of records or
    ``{"objectives": [...]}`` (the committed-default shape, which
    leaves room for top-level metadata)."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SLOConfigError(f"{path}: not JSON ({exc})") from exc
    records = (
        document.get("objectives") if isinstance(document, dict) else document
    )
    if not isinstance(records, list):
        raise SLOConfigError(
            f"{path}: expected a list of objectives or an "
            "{'objectives': [...]} document"
        )
    return [SLObjective.from_dict(record) for record in records]
