"""Counters, gauges and histograms behind one process-wide registry.

Metrics complement spans: a span answers "where did this second go",
a metric answers "how many SVDs / simulated cells / shuffled bytes did
this process see in total".  Updates are cheap (a per-metric lock and
an add), so the registry is always live — the ``--metrics`` CLI flag
only controls whether the dump is written.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Summary statistics of an observed distribution.

    Keeps count/sum/min/max (and derives the mean) — enough for the
    profiles this library reports without committing to a bucket
    layout.
    """

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metrics, created on first use, one instance per name.

    Asking for an existing name with a different kind is an error —
    silent kind changes would corrupt every dashboard reading the dump.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """``{name: {kind, value(s)}}`` snapshot, names sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.as_dict() for name, metric in items}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def clear(self) -> None:
        with self._lock:
            self._metrics = {}


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_metrics(registry: Optional[MetricsRegistry]) -> None:
    """Swap the process-wide registry (``None`` installs a fresh one)."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()


@contextmanager
def use_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily install a (fresh by default) registry — test idiom."""
    previous = _registry
    set_metrics(registry or MetricsRegistry())
    try:
        yield _registry
    finally:
        set_metrics(previous)
