"""Counters, gauges and histograms behind one process-wide registry.

Metrics complement spans: a span answers "where did this second go",
a metric answers "how many SVDs / simulated cells / shuffled bytes did
this process see in total".  Updates are cheap (a per-metric lock and
an add), so the registry is always live — the ``--metrics`` CLI flag
only controls whether the dump is written.
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Summary statistics of an observed distribution.

    Keeps count/sum/min/max (and derives the mean), plus a bounded
    sample buffer from which p50/p90/p99 are computed.  When more than
    ``max_samples`` values arrive the buffer is decimated (every second
    retained sample is dropped), so the percentiles degrade gracefully
    to an even subsample of the stream instead of growing without
    bound — deterministic, unlike a random reservoir.
    """

    kind = "histogram"

    #: Retained-sample ceiling before deterministic decimation kicks in.
    max_samples = 8192

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1
        self._since_kept = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._since_kept += 1
            if self._since_kept >= self._stride:
                self._since_kept = 0
                self._samples.append(value)
                if len(self._samples) >= self.max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (0-100) of the retained samples, with
        linear interpolation; ``None`` while empty."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        position = (len(samples) - 1) * (float(q) / 100.0)
        lower = math.floor(position)
        upper = math.ceil(position)
        weight = position - lower
        return samples[lower] * (1.0 - weight) + samples[upper] * weight

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def export_state(self) -> Dict[str, Any]:
        """Mergeable state: summary stats *plus* the retained samples,
        so a receiving registry can fold this histogram in without
        losing its percentiles (the distributed-telemetry path)."""
        with self._lock:
            return {
                "kind": self.kind,
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "samples": list(self._samples),
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`export_state` into this one.

        Count/sum/min/max add exactly; the sample buffers concatenate
        and re-decimate deterministically, so merged percentiles stay
        an even subsample of the combined stream.
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        low = state.get("min")
        high = state.get("max")
        with self._lock:
            self.count += count
            self.total += float(state.get("sum", 0.0))
            if low is not None:
                self.min = low if self.min is None else min(self.min, low)
            if high is not None:
                self.max = (
                    high if self.max is None else max(self.max, high)
                )
            self._samples.extend(
                float(v) for v in state.get("samples", ())
            )
            while len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2


class MetricsRegistry:
    """Named metrics, created on first use, one instance per name.

    Asking for an existing name with a different kind is an error —
    silent kind changes would corrupt every dashboard reading the dump.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """``{name: {kind, value(s)}}`` snapshot, names sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.as_dict() for name, metric in items}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A frozen copy of the current state, for later :meth:`diff`.

        Identical in shape to :meth:`as_dict`; the separate name marks
        intent — snapshots are taken *before* a measured region so the
        region's own activity can be isolated afterwards.
        """
        return self.as_dict()

    def diff(self, before: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
        """What changed since ``before`` (a :meth:`snapshot`).

        See :func:`diff_snapshots` for the delta semantics.  This is
        the benchmark-harness idiom: snapshot, run N iterations, diff —
        counters accumulated by earlier iterations (or warmup) never
        cross-contaminate the reported window.
        """
        return diff_snapshots(before, self.snapshot())

    def export_state(self) -> Dict[str, Dict[str, Any]]:
        """A mergeable snapshot: like :meth:`as_dict` but histograms
        carry their retained samples so :meth:`merge_state` can fold
        them without flattening the percentiles."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {
            name: (
                metric.export_state()
                if isinstance(metric, Histogram)
                else metric.as_dict()
            )
            for name, metric in items
        }

    def merge_state(
        self, state: Dict[str, Dict[str, Any]], worker_id: str = ""
    ) -> None:
        """Fold another registry's :meth:`export_state` into this one.

        Counters and histograms add into the global metric of the same
        name; when ``worker_id`` is given each also adds into a
        ``worker.<id>.<name>`` attributed copy, so per-worker
        breakdowns survive the merge.  Gauges fold as the attributed
        copy *only* — a global last-write across workers would depend
        on arrival order.
        """
        prefix = f"worker.{worker_id}." if worker_id else ""
        for name, metric in sorted(state.items()):
            kind = metric.get("kind")
            if kind == "counter":
                value = float(metric.get("value") or 0.0)
                if value:
                    self.counter(name).inc(value)
                    if prefix:
                        self.counter(prefix + name).inc(value)
            elif kind == "gauge":
                value = metric.get("value")
                if value is not None:
                    self.gauge((prefix + name) if prefix else name).set(value)
            elif kind == "histogram":
                self.histogram(name).merge_state(metric)
                if prefix:
                    self.histogram(prefix + name).merge_state(metric)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def clear(self) -> None:
        with self._lock:
            self._metrics = {}


def diff_snapshots(
    before: Dict[str, Dict[str, Any]], after: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Delta between two registry snapshots (``snapshot()`` outputs).

    * counters: ``value`` is the increase over the window; unchanged
      counters are omitted;
    * gauges: included with their ``after`` value when it changed;
    * histograms: ``count``/``sum`` are window deltas (with the derived
      window ``mean``); unchanged histograms are omitted.

    Metrics absent from ``before`` diff against a zero baseline, so a
    metric born inside the window reports its full value.
    """
    delta: Dict[str, Dict[str, Any]] = {}
    for name, state in after.items():
        prior = before.get(name)
        kind = state.get("kind")
        if kind == "counter":
            base = prior.get("value", 0.0) if prior else 0.0
            change = state.get("value", 0.0) - base
            if change:
                delta[name] = {"kind": "counter", "value": change}
        elif kind == "gauge":
            base = prior.get("value") if prior else None
            if state.get("value") != base:
                delta[name] = {"kind": "gauge", "value": state.get("value")}
        elif kind == "histogram":
            base_count = prior.get("count", 0) if prior else 0
            base_sum = prior.get("sum", 0.0) if prior else 0.0
            d_count = state.get("count", 0) - base_count
            d_sum = state.get("sum", 0.0) - base_sum
            if d_count:
                delta[name] = {
                    "kind": "histogram",
                    "count": d_count,
                    "sum": d_sum,
                    "mean": d_sum / d_count,
                }
        else:  # pragma: no cover - future metric kinds pass through
            if state != prior:
                delta[name] = dict(state)
    return delta


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_metrics(registry: Optional[MetricsRegistry]) -> None:
    """Swap the process-wide registry (``None`` installs a fresh one)."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()


@contextmanager
def use_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily install a (fresh by default) registry — test idiom."""
    previous = _registry
    set_metrics(registry or MetricsRegistry())
    try:
        yield _registry
    finally:
        set_metrics(previous)
