"""Nested-span tracing with a zero-overhead no-op default.

The library's hot paths call :func:`span` unconditionally; whether
anything is recorded depends on the process-wide active tracer.  The
default is a :class:`NullTracer` whose ``span()`` hands back one shared
do-nothing context manager, so instrumentation costs a function call
and a dict build per site — the overhead-guard test bounds the total
against a pipeline run.

Spans nest per thread: each thread keeps its own open-span stack, so a
span opened on an executor worker becomes a top-level span of that
thread rather than a child of whatever the main thread had open.  Every
span records wall time (``perf_counter``), CPU time (``process_time``),
its thread name, and free-form attributes (tensor shape, nnz, rank,
worker id, ...).

Timestamps are offsets from the tracer's construction (its *epoch*),
which is what the Chrome-trace exporter wants and what
:meth:`Tracer.ingest_report` maps runtime task metrics onto.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
]


class Span:
    """One timed, attributed, possibly-nested trace span."""

    __slots__ = (
        "name",
        "category",
        "started",
        "wall_seconds",
        "cpu_seconds",
        "attrs",
        "children",
        "thread",
        "error",
        "process_id",
        "process_name",
        "_tracer",
        "_cpu_started",
    )

    def __init__(
        self, tracer: "Tracer", name: str, category: str, attrs: Dict[str, Any]
    ):
        self.name = name
        self.category = category
        self.attrs = attrs
        #: Offset from the tracer's epoch, in seconds.
        self.started = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.children: List["Span"] = []
        self.thread = ""
        self.error: Optional[str] = None
        #: Originating process: 0 / "" mean "this process"; merged
        #: worker spans carry the child's real pid and a worker label,
        #: which the Chrome exporter turns into separate pid lanes.
        self.process_id = 0
        self.process_name = ""
        self._tracer = tracer
        self._cpu_started = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (e.g. an output nnz)."""
        self.attrs.update(attrs)
        return self

    @property
    def self_seconds(self) -> float:
        """Wall time not covered by child spans."""
        return max(
            0.0, self.wall_seconds - sum(c.wall_seconds for c in self.children)
        )

    def __enter__(self) -> "Span":
        self.started = time.perf_counter() - self._tracer.epoch
        self._cpu_started = time.process_time()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.wall_seconds = (
            time.perf_counter() - self._tracer.epoch - self.started
        )
        self.cpu_seconds = time.process_time() - self._cpu_started
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._pop(self)
        return False

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"wall={self.wall_seconds:.6f}s, children={len(self.children)})"
        )


class _NullSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc_info: Any) -> bool:
        return False

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans, one tree set per thread."""

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        #: Wall-clock time of the epoch — what lets spans recorded by a
        #: *different* process (its own perf_counter domain) be mapped
        #: onto this tracer's timeline during a distributed merge.
        self.epoch_unix = time.time()
        #: Correlates spans across processes: the id rides inside every
        #: propagated TraceContext and comes back in worker telemetry.
        self.trace_id = uuid.uuid4().hex[:16]
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "misc", **attrs: Any) -> Span:
        """A new span; use as a context manager."""
        return Span(self, name, category, attrs)

    def record_span(
        self,
        name: str,
        category: str,
        wall_seconds: float,
        started: Optional[float] = None,
        cpu_seconds: float = 0.0,
        thread: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured span (post-hoc bridge path).

        ``started`` is a ``time.perf_counter()`` reading; when omitted
        the span is back-dated so it ends now.  Bridged spans are
        always top-level — they describe work that happened elsewhere
        (an executor worker, a cache lookup), not inside the caller's
        open span.
        """
        completed = Span(self, name, category, attrs)
        if started is None:
            started = time.perf_counter() - wall_seconds
        completed.started = max(0.0, started - self.epoch)
        completed.wall_seconds = float(wall_seconds)
        completed.cpu_seconds = float(cpu_seconds)
        completed.thread = thread or threading.current_thread().name
        with self._lock:
            self._roots.append(completed)
        return completed

    def ingest_report(self, report: Any) -> None:
        """Merge a runtime :class:`~repro.runtime.report.RuntimeReport`
        into this trace, one ``runtime-task`` span per task (duck-typed
        so the observability layer stays import-free of the runtime)."""
        for task in getattr(report, "tasks", []):
            self.record_span(
                f"task:{task.name}",
                "runtime-task",
                wall_seconds=task.wall_seconds,
                started=getattr(task, "started_at", None) or None,
                executor=task.executor,
                attempts=task.attempts,
                cache_hit=task.cache_hit,
                cached=task.cached,
                error=task.error,
            )

    # ------------------------------------------------------------------
    # per-thread stack plumbing
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, entered: Span) -> None:
        self._stack().append(entered)

    def _pop(self, exited: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is exited:
            stack.pop()
        else:  # pragma: no cover - misnested exit; drop defensively
            if exited in stack:
                stack.remove(exited)
        exited.thread = threading.current_thread().name
        if stack:
            stack[-1].children.append(exited)
        else:
            with self._lock:
                self._roots.append(exited)

    # ------------------------------------------------------------------
    # reading the trace back
    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        """Completed top-level spans (all threads), in start order."""
        with self._lock:
            return sorted(self._roots, key=lambda s: s.started)

    def iter_spans(self) -> Iterator[Span]:
        """Every completed span, depth-first within each root."""
        for root in self.roots():
            yield from root.walk()

    @property
    def n_spans(self) -> int:
        return sum(1 for _ in self.iter_spans())

    def total_wall_seconds(self) -> float:
        """Summed wall time of the top-level spans."""
        return sum(root.wall_seconds for root in self.roots())

    def clear(self) -> None:
        with self._lock:
            self._roots = []


class NullTracer:
    """The disabled default: records nothing, allocates nothing."""

    enabled = False
    epoch = 0.0
    epoch_unix = 0.0
    trace_id = ""

    def span(self, name: str, category: str = "misc", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, *args: Any, **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def ingest_report(self, report: Any) -> None:
        pass

    def roots(self) -> List[Span]:
        return []

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    n_spans = 0

    def total_wall_seconds(self) -> float:
        return 0.0

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()

_active: Any = NULL_TRACER


def get_tracer() -> Any:
    """The process-wide active tracer (a :class:`NullTracer` unless
    tracing was switched on via :func:`set_tracer`/:func:`use_tracer`)."""
    return _active


def set_tracer(tracer: Optional[Any]) -> None:
    """Install ``tracer`` process-wide; ``None`` restores the no-op."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER


def span(name: str, category: str = "misc", **attrs: Any) -> Any:
    """Open a span on the active tracer (no-op while disabled).

    This is the one call instrumented code sites use::

        with span("hosvd", "decompose", shape=tensor.shape, ranks=ranks):
            ...
    """
    tracer = _active
    if not tracer.enabled:
        return _NULL_SPAN
    return tracer.span(name, category, **attrs)


@contextmanager
def use_tracer(tracer: Optional[Any]) -> Iterator[Any]:
    """Temporarily install a tracer (tests and CLIs)."""
    previous = _active
    set_tracer(tracer)
    try:
        yield _active
    finally:
        set_tracer(previous)
