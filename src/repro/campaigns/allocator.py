"""Error-proportional budget allocation for confirm rounds.

:func:`allocate` answers one question each confirm round: given the
per-cell stitched-reconstruction errors of the probed candidate
configurations, how should the round's batch of simulation cells be
split among them?  The answer is a largest-remainder apportionment of
the batch over the error weights, with a contract the property suite
pins down:

* allocations are non-negative integers;
* they sum *exactly* to the round batch (clamped to the remaining
  budget and, when capacities are given, to the total capacity);
* they are monotone in error — a higher-error candidate never
  receives fewer cells than a lower-error one (capacity caps aside);
* all-equal (including all-zero) errors degrade to an even split.

Largest-remainder keeps monotonicity because quotas are monotone in
weight, floors are monotone in quotas, and the leftover cells go out
in (remainder, weight)-lexicographic order — a candidate with the
larger weight always sorts at or before one with a smaller weight.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import CampaignError


def _largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Integer shares of ``total`` proportional to ``weights``."""
    mass = float(weights.sum())
    if mass <= 0.0:
        weights = np.ones_like(weights)
        mass = float(weights.sum())
    quotas = total * weights / mass
    shares = np.floor(quotas).astype(np.int64)
    leftover = int(total - shares.sum())
    if leftover > 0:
        remainders = quotas - shares
        # Ties on remainder break toward the larger weight, then the
        # earlier index — deterministic AND monotone.
        order = np.lexsort(
            (np.arange(weights.shape[0]), -weights, -remainders)
        )
        shares[order[:leftover]] += 1
    return shares


def allocate(
    errors: Sequence[float],
    batch: int,
    remaining_budget: Optional[int] = None,
    capacities: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Split ``batch`` simulation cells across candidates by error.

    Parameters
    ----------
    errors:
        Non-negative per-candidate model-mismatch scores.
    batch:
        Cells this round wants to spend.
    remaining_budget:
        Cells the campaign may still charge; the effective batch is
        clamped so the budget is never exceeded.
    capacities:
        Per-candidate caps (uncovered cells left in the candidate's
        fiber).  Overflow beyond a cap is re-apportioned among the
        candidates with headroom.

    Returns
    -------
    numpy.ndarray
        Integer allocation per candidate.
    """
    scores = np.asarray(errors, dtype=float)
    if scores.ndim != 1:
        raise CampaignError(
            f"errors must be one-dimensional, got shape {scores.shape}"
        )
    if scores.size and (np.isnan(scores).any() or (scores < 0).any()):
        raise CampaignError("errors must be non-negative and finite")
    batch = int(batch)
    if batch < 0:
        raise CampaignError(f"batch must be >= 0, got {batch}")
    if remaining_budget is not None:
        batch = min(batch, max(0, int(remaining_budget)))
    allocation = np.zeros(scores.shape[0], dtype=np.int64)
    if scores.size == 0 or batch == 0:
        return allocation
    if capacities is None:
        caps = np.full(scores.shape[0], batch, dtype=np.int64)
    else:
        caps = np.asarray(capacities, dtype=np.int64)
        if caps.shape != scores.shape:
            raise CampaignError(
                f"capacities shape {caps.shape} does not match errors "
                f"shape {scores.shape}"
            )
        if (caps < 0).any():
            raise CampaignError("capacities must be non-negative")
    batch = min(batch, int(caps.sum()))
    while batch > 0:
        active = allocation < caps
        if not active.any():
            break
        shares = _largest_remainder(scores[active], batch)
        headroom = caps[active] - allocation[active]
        granted = np.minimum(shares, headroom)
        allocation[active] += granted
        batch -= int(granted.sum())
    return allocation
