"""repro.campaigns — adaptive simulation campaigns on the runtime.

The campaign layer closes the sample → decompose → resample loop the
paper's ensemble setting motivates: a declarative
:class:`~repro.campaigns.spec.CampaignSpec` (scenario, total
simulation budget, per-round batch, probe metric, success-delta
stopping rule) drives a phased
:class:`~repro.campaigns.orchestrator.CampaignOrchestrator` — a broad
low-replication explore sweep, then focused confirm rounds whose
batches are apportioned across probed configurations by per-cell
stitched-reconstruction error
(:func:`~repro.campaigns.allocator.allocate`).

Every round is one cached, retried task graph on the shared
:class:`~repro.runtime.Runtime`; every completed round is one
checksummed line of an append-only journal
(:mod:`repro.campaigns.state`).  Interrupt the process anywhere —
including via the ``campaign.round`` and ``campaign.state`` fault
sites — and ``python -m repro.campaigns resume`` replays the journal,
re-runs the broken round off the result cache, and finishes with
byte-identical state.

See ``docs/campaigns.md`` for the spec schema and the resume contract.
"""

from .allocator import allocate
from .orchestrator import (
    CAMPAIGN_RETRY,
    CampaignOrchestrator,
    CampaignOutcome,
)
from .spec import ALLOCATIONS, METRICS, VARIANTS, CampaignSpec
from .state import (
    JOURNAL_NAME,
    CampaignJournal,
    JournalState,
    RoundRecord,
    journal_path,
    read_journal,
)

__all__ = [
    "allocate",
    "CAMPAIGN_RETRY",
    "CampaignOrchestrator",
    "CampaignOutcome",
    "ALLOCATIONS",
    "METRICS",
    "VARIANTS",
    "CampaignSpec",
    "JOURNAL_NAME",
    "CampaignJournal",
    "JournalState",
    "RoundRecord",
    "journal_path",
    "read_journal",
]
