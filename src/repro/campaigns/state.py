"""Campaign persistence: a checksummed, append-only round journal.

Resume-ability comes from one file, ``journal.jsonl`` in the campaign
workdir.  Line one is the header (spec + fingerprint); every later
line is a completed round (or the final stop marker).  Each line is a
``{"sha": ..., "body": ...}`` envelope whose SHA-256 covers the
canonical JSON of the body, which buys two properties:

* **crash-natural truncation** — a kill mid-append leaves a partial
  last line, which fails to parse and is simply dropped: the journal
  is always a valid prefix of the campaign's history;
* **corruption detection** — a bit-flipped line (a rotten disk, or
  the ``campaign.state`` chaos fault) fails its checksum; the valid
  prefix before it survives and the damaged suffix is quarantined and
  recomputed, with the recovery metered.

Round bodies carry *coordinates only*, never simulated values or
timings: values re-read deterministically from the (cached) ground
truth on replay, and an interrupted-then-resumed campaign must finish
with a journal byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import CampaignStateError
from ..faults.injector import get_injector
from ..observability import get_metrics

JOURNAL_VERSION = 1

#: Journal file name inside a campaign workdir.
JOURNAL_NAME = "journal.jsonl"


def _canonical(body: Dict[str, Any]) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _sealed(body: Dict[str, Any]) -> str:
    canonical = _canonical(body)
    sha = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return json.dumps(
        {"sha": sha, "body": body}, sort_keys=True, separators=(",", ":")
    )


def _unseal(line: str) -> Optional[Dict[str, Any]]:
    """Decode one journal line; ``None`` when damaged or truncated."""
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(envelope, dict):
        return None
    body = envelope.get("body")
    sha = envelope.get("sha")
    if not isinstance(body, dict) or not isinstance(sha, str):
        return None
    canonical = _canonical(body)
    if hashlib.sha256(canonical.encode("utf-8")).hexdigest() != sha:
        return None
    return body


@dataclass
class RoundRecord:
    """One completed campaign round, replayable from coordinates."""

    index: int
    phase: str  # "explore" | "confirm"
    probe_pivot: int
    #: Newly simulated cells per sub-system: ``[[free_flat, pivot_flat],
    #: ...]`` — probes and allocated confirm cells alike.
    new_cells: Dict[str, List[List[int]]]
    probe_cost: int
    alloc_cells: int
    metric: float
    spent_after: int
    #: Evaluation-only ground-truth RMSE (present when the orchestrator
    #: runs with ``truth_metrics=True``; never drives decisions).
    truth_rmse: Optional[float] = None

    def body(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": "round",
            "index": self.index,
            "phase": self.phase,
            "probe_pivot": self.probe_pivot,
            "new_cells": self.new_cells,
            "probe_cost": self.probe_cost,
            "alloc_cells": self.alloc_cells,
            "metric": self.metric,
            "spent_after": self.spent_after,
        }
        if self.truth_rmse is not None:
            payload["truth_rmse"] = self.truth_rmse
        return payload

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "RoundRecord":
        return cls(
            index=int(body["index"]),
            phase=str(body["phase"]),
            probe_pivot=int(body["probe_pivot"]),
            new_cells={
                which: [[int(f), int(p)] for f, p in cells]
                for which, cells in body["new_cells"].items()
            },
            probe_cost=int(body["probe_cost"]),
            alloc_cells=int(body["alloc_cells"]),
            metric=float(body["metric"]),
            spent_after=int(body["spent_after"]),
            truth_rmse=(
                float(body["truth_rmse"])
                if "truth_rmse" in body else None
            ),
        )


@dataclass
class JournalState:
    """Everything a resume needs: the valid journal prefix."""

    fingerprint: Optional[str] = None
    spec_payload: Optional[Dict[str, Any]] = None
    rounds: List[RoundRecord] = field(default_factory=list)
    stop_reason: Optional[str] = None
    #: Damaged/truncated lines dropped while reading.
    quarantined: int = 0

    @property
    def done(self) -> bool:
        return self.stop_reason is not None

    @property
    def spent(self) -> int:
        return self.rounds[-1].spent_after if self.rounds else 0


class CampaignJournal:
    """Append-only journal bound to one workdir (or in-memory when
    ``path`` is ``None`` — ephemeral campaigns, e.g. benchmarks)."""

    def __init__(self, path: Optional[str], campaign: str):
        self.path = path
        self.campaign = campaign
        self._lines: List[str] = []

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def load(self) -> JournalState:
        """Read the valid prefix; quarantine anything after damage.

        The ``campaign.state`` fault site fires here (with the journal
        path) so chaos tests can bit-flip the file exactly where a
        rotten disk would; a detected-and-truncated journal counts as
        a recovery because the campaign replays the lost suffix from
        the result cache.
        """
        state = JournalState()
        if self.path is None or not os.path.exists(self.path):
            self._lines = []
            return state
        injector = get_injector()
        if injector.enabled:
            injector.fire("campaign.state", self.campaign, path=self.path)
        with open(self.path, "rb") as handle:
            raw_lines = handle.read().splitlines()
        kept: List[str] = []
        damaged = 0
        for position, raw in enumerate(raw_lines):
            if not raw.strip():
                continue
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError:
                # A bit-flip can corrupt the encoding itself, not just
                # the checksum — same treatment: damage starts here.
                damaged = len(raw_lines) - position
                break
            body = _unseal(line)
            if body is None:
                # Invalid line: everything from here on is suspect —
                # the journal is a strict prefix log.
                damaged = len(raw_lines) - position
                break
            if position == 0:
                if body.get("kind") != "header":
                    raise CampaignStateError(
                        f"journal {self.path} does not start with a "
                        "header line"
                    )
                state.fingerprint = body.get("fingerprint")
                state.spec_payload = body.get("spec")
            elif body.get("kind") == "round":
                state.rounds.append(RoundRecord.from_body(body))
            elif body.get("kind") == "stop":
                state.stop_reason = str(body.get("reason"))
            kept.append(line)
        state.quarantined = damaged
        if damaged:
            get_metrics().counter("campaign.journal_quarantined").inc(
                damaged
            )
            # Rewrite the journal down to its valid prefix so the
            # resumed rounds append cleanly after it.
            self._lines = kept
            self._rewrite()
            injector.note_recovery("campaign.state", self.campaign)
        else:
            self._lines = kept
        return state

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def start(self, fingerprint: str, spec_payload: Dict[str, Any]) -> None:
        """Write the header if this journal is brand new."""
        if self._lines:
            return
        self._append({
            "kind": "header",
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
            "spec": spec_payload,
        })

    def append_round(self, record: RoundRecord) -> None:
        self._append(record.body())

    def append_stop(self, reason: str, spent: int, metric: float) -> None:
        self._append({
            "kind": "stop",
            "reason": reason,
            "spent": spent,
            "metric": metric,
        })

    def _append(self, body: Dict[str, Any]) -> None:
        line = _sealed(body)
        self._lines.append(line)
        if self.path is None:
            return
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _rewrite(self) -> None:
        if self.path is None:
            return
        temporary = f"{self.path}.tmp-{os.getpid()}"
        with open(temporary, "w") as handle:
            for line in self._lines:
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self.path)


def journal_path(workdir: Optional[str]) -> Optional[str]:
    if workdir is None:
        return None
    return os.path.join(workdir, JOURNAL_NAME)


def read_journal(
    workdir: str, campaign: str = "*"
) -> Tuple[JournalState, CampaignJournal]:
    """Open and load a workdir's journal (CLI ``report``/``resume``)."""
    journal = CampaignJournal(journal_path(workdir), campaign)
    return journal.load(), journal
