"""Declarative campaign specifications.

A :class:`CampaignSpec` is the contract between whoever *wants* an
adaptive simulation campaign and the orchestrator that runs it: which
scenario to drive (a registered dynamical system), how many simulation
cells the whole campaign may charge, how each confirm round spends its
batch, which probe metric the stopping rule watches, and the
success-delta below which another round is not worth its cells.

Specs load from YAML or JSON files (``python -m repro.campaigns run
--spec campaign.yaml``) or plain dicts.  Validation is field-level and
total: every malformed input raises :class:`~repro.exceptions.
CampaignSpecError` naming the offending field — never a bare
``KeyError`` — so a typo in a campaign file is a one-line fix, not a
stack trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from ..exceptions import CampaignSpecError
from ..simulation import SYSTEMS

try:  # pragma: no cover - exercised only where pyyaml is absent
    import yaml as _yaml
except Exception:  # pragma: no cover
    _yaml = None

#: Probe metrics the stopping rule may watch.
METRICS = ("rmse", "max-error")

#: How confirm rounds split their batch across probed cells.
ALLOCATIONS = ("adaptive", "uniform")

#: M2TD factor-stitching variants a campaign may fit with.
VARIANTS = ("avg", "concat", "select")


def _require_int(field: str, value: Any, minimum: Optional[int] = None,
                 maximum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CampaignSpecError(
            field, f"must be an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise CampaignSpecError(
            field, f"must be >= {minimum}, got {value}"
        )
    if maximum is not None and value > maximum:
        raise CampaignSpecError(
            field, f"must be <= {maximum}, got {value}"
        )
    return int(value)


def _require_float(field: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CampaignSpecError(
            field, f"must be a number, got {value!r}"
        )
    result = float(value)
    if result != result or result in (float("inf"), float("-inf")):
        raise CampaignSpecError(field, f"must be finite, got {value!r}")
    return result


def _require_choice(field: str, value: Any, choices) -> str:
    if not isinstance(value, str):
        raise CampaignSpecError(field, f"must be a string, got {value!r}")
    if value not in choices:
        raise CampaignSpecError(
            field,
            f"unknown value {value!r}; expected one of {sorted(choices)}",
        )
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """One adaptive simulation campaign, declaratively.

    Attributes
    ----------
    scenario:
        Entrypoint: a registered dynamical-system name (see
        ``repro.simulation.SYSTEMS``), e.g. ``"epidemic_seir"``.
    budget:
        Total simulation cells the campaign may charge — probes,
        explore sweep and confirm batches all spend from it.
    batch:
        Simulation cells a confirm round distributes across probed
        candidate configurations.
    success_delta:
        Stopping rule: once a confirm round moves the probe metric by
        less than this (in either direction — probe residuals are
        noisy), the campaign stops ("converged").
    metric:
        Probe metric the stopping rule watches: ``"rmse"`` or
        ``"max-error"`` over each round's probe residuals.
    allocation:
        ``"adaptive"`` spends the batch where per-cell stitched
        reconstruction error is highest; ``"uniform"`` spreads it
        evenly (the control the golden regression beats).
    resolution:
        Parameter-space resolution of the scenario study.
    rank:
        Per-mode Tucker rank of the fitted M2TD models.
    variant:
        M2TD factor-stitching variant (``avg``/``concat``/``select``).
    pivot:
        Pivot mode name for the PF-partition (default time).
    explore_fraction:
        Fraction of each free space the phase-0 explore sweep touches.
    explore_replicates:
        Pivot cells simulated per explored configuration (the "low
        replication" of the explore phase).
    probe_factor:
        Candidate configurations probed per confirm-round batch slot.
    max_rounds:
        Hard cap on confirm rounds.
    seed:
        Base RNG seed; every round's draws derive from it.
    name:
        Campaign id used in spans, fault targets and reports
        (defaults to ``"<scenario>-campaign"``).
    """

    scenario: str
    budget: int
    batch: int
    success_delta: float
    metric: str = "rmse"
    allocation: str = "adaptive"
    resolution: int = 6
    rank: int = 2
    variant: str = "select"
    pivot: str = "t"
    explore_fraction: float = 0.25
    explore_replicates: int = 2
    probe_factor: int = 3
    max_rounds: int = 12
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        _require_choice("scenario", self.scenario, SYSTEMS)
        _require_int("budget", self.budget, minimum=1)
        _require_int("batch", self.batch, minimum=1)
        if self.batch > self.budget:
            raise CampaignSpecError(
                "batch",
                f"round batch {self.batch} exceeds the total budget "
                f"{self.budget}",
            )
        delta = _require_float("success_delta", self.success_delta)
        if delta < 0:
            raise CampaignSpecError(
                "success_delta", f"must be >= 0, got {delta}"
            )
        _require_choice("metric", self.metric, METRICS)
        _require_choice("allocation", self.allocation, ALLOCATIONS)
        _require_int("resolution", self.resolution, minimum=2)
        _require_int("rank", self.rank, minimum=1)
        _require_choice("variant", self.variant, VARIANTS)
        if not isinstance(self.pivot, str) or not self.pivot:
            raise CampaignSpecError(
                "pivot", f"must be a non-empty string, got {self.pivot!r}"
            )
        fraction = _require_float("explore_fraction", self.explore_fraction)
        if not 0.0 < fraction <= 1.0:
            raise CampaignSpecError(
                "explore_fraction", f"must be in (0, 1], got {fraction}"
            )
        _require_int("explore_replicates", self.explore_replicates,
                     minimum=1)
        _require_int("probe_factor", self.probe_factor, minimum=1)
        _require_int("max_rounds", self.max_rounds, minimum=1)
        _require_int("seed", self.seed)
        if not isinstance(self.name, str):
            raise CampaignSpecError(
                "name", f"must be a string, got {self.name!r}"
            )
        if not self.name:
            object.__setattr__(self, "name", f"{self.scenario}-campaign")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Any, source: str = "spec") -> "CampaignSpec":
        """Build and validate a spec from a plain mapping."""
        if not isinstance(payload, dict):
            raise CampaignSpecError(
                source,
                "campaign spec must be a mapping of fields, got "
                f"{type(payload).__name__}",
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise CampaignSpecError(
                unknown[0],
                f"unknown field (known fields: {sorted(known)})",
            )
        for required in ("scenario", "budget", "batch", "success_delta"):
            if required not in payload:
                raise CampaignSpecError(
                    required, "missing required field"
                )
        return cls(**payload)

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        """Load a YAML or JSON campaign file."""
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise CampaignSpecError(str(path), f"unreadable: {exc}") from exc
        lowered = str(path).lower()
        if lowered.endswith((".yaml", ".yml")):
            payload = cls._parse_yaml(path, text)
        elif lowered.endswith(".json"):
            payload = cls._parse_json(path, text)
        else:
            # Unknown extension: JSON first (a strict subset), then YAML.
            try:
                payload = cls._parse_json(path, text)
            except CampaignSpecError:
                payload = cls._parse_yaml(path, text)
        return cls.from_dict(payload, source=str(path))

    @staticmethod
    def _parse_json(path: str, text: str) -> Any:
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignSpecError(
                str(path), f"not valid JSON: {exc}"
            ) from exc

    @staticmethod
    def _parse_yaml(path: str, text: str) -> Any:
        if _yaml is None:
            raise CampaignSpecError(
                str(path),
                "pyyaml is not installed; use a JSON campaign file",
            )
        try:
            return _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise CampaignSpecError(
                str(path), f"not valid YAML: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def fingerprint(self) -> str:
        """Stable content hash: two runs of the same spec share cache
        entries and journals; any knob change separates them."""
        from ..runtime.cache import fingerprint

        return fingerprint("campaign-spec", tuple(sorted(
            (k, v) for k, v in self.as_dict().items()
        )))
