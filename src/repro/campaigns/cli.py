"""``python -m repro.campaigns`` — run, resume and report campaigns.

Three subcommands around one workdir:

``run``
    Start a campaign from a YAML/JSON spec file.  Refuses a workdir
    that already holds progress (that is what ``resume`` is for).
``resume``
    Continue an interrupted campaign: completed rounds replay from
    the journal, the interrupted round re-runs off the result cache,
    and the campaign carries on to its stopping rule.
``report``
    Print a round-by-round table from the journal without running
    anything.

Observability (``--trace``/``--profile``/``--metrics``/``--events``)
and fault injection (``--fault-plan``/``--fault-seed``) compose the
same way as every other entrypoint in the package.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..exceptions import ReproError
from ..faults.cli import add_fault_args, inject_faults
from ..observability.cli import add_observability_args, observe
from ..runtime import Runtime
from .orchestrator import CAMPAIGN_RETRY, CampaignOrchestrator, CampaignOutcome
from .spec import CampaignSpec
from .state import read_journal


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec", required=True, metavar="FILE",
        help="campaign spec file (.yaml/.yml/.json)",
    )
    parser.add_argument(
        "--workdir", metavar="DIR",
        help="campaign state directory (journal + result cache); "
        "omit for an ephemeral in-memory run",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="runtime pool width (default 1: inline, deterministic)",
    )
    parser.add_argument(
        "--truth-metrics", action="store_true",
        help="record an evaluation-only ground-truth RMSE per round "
        "(never consulted by the stopping rule)",
    )
    add_observability_args(parser)
    add_fault_args(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns",
        description="Adaptive simulation campaigns on the task-graph "
        "runtime (explore sweep, error-guided confirm rounds, "
        "journaled resume).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    run = commands.add_parser(
        "run", help="start a campaign from a spec file"
    )
    _add_common(run)
    resume = commands.add_parser(
        "resume", help="continue an interrupted campaign"
    )
    _add_common(resume)
    report = commands.add_parser(
        "report", help="print the journal of a campaign workdir"
    )
    report.add_argument(
        "--workdir", required=True, metavar="DIR",
        help="campaign state directory to report on",
    )
    report.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of a table",
    )
    return parser


def _print_outcome(outcome: CampaignOutcome) -> None:
    print(f"campaign   {outcome.spec.name}")
    print(f"scenario   {outcome.spec.scenario} "
          f"(resolution {outcome.spec.resolution})")
    print(f"stop       {outcome.stop_reason}")
    print(f"rounds     {len(outcome.rounds)} "
          f"({outcome.replayed_rounds} replayed)")
    print(f"cells      {outcome.cells_simulated} simulated, "
          f"{outcome.budget_remaining} budget left")
    print(f"sim tasks  {outcome.executed_sim_tasks} executed, "
          f"{outcome.cached_sim_tasks} cache hits")
    print()
    _print_rounds([r.body() for r in outcome.rounds])


def _print_rounds(bodies: List[dict]) -> None:
    header = f"{'round':>5} {'phase':<8} {'probe':>5} {'cells':>6} " \
             f"{'spent':>6} {'metric':>12}"
    extra = any("truth_rmse" in body for body in bodies)
    if extra:
        header += f" {'truth rmse':>12}"
    print(header)
    for body in bodies:
        line = (
            f"{body['index']:>5} {body['phase']:<8} "
            f"{body['probe_cost']:>5} {body['alloc_cells']:>6} "
            f"{body['spent_after']:>6} {body['metric']:>12.6f}"
        )
        if "truth_rmse" in body:
            line += f" {body['truth_rmse']:>12.6f}"
        print(line)


def _cmd_run_or_resume(args: argparse.Namespace, resume: bool) -> int:
    spec = CampaignSpec.from_file(args.spec)
    with observe(args.trace, args.profile, args.metrics, args.events):
        with inject_faults(args.fault_plan, args.fault_seed):
            cache_dir = (
                os.path.join(args.workdir, "cache")
                if args.workdir else None
            )
            with Runtime(
                workers=args.workers,
                cache_dir=cache_dir,
                default_retry=CAMPAIGN_RETRY,
            ) as runtime:
                orchestrator = CampaignOrchestrator(
                    spec,
                    workdir=args.workdir,
                    runtime=runtime,
                    truth_metrics=args.truth_metrics,
                )
                outcome = (
                    orchestrator.resume() if resume
                    else orchestrator.run()
                )
    _print_outcome(outcome)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    state, _ = read_journal(args.workdir)
    if args.as_json:
        print(json.dumps({
            "fingerprint": state.fingerprint,
            "spec": state.spec_payload,
            "rounds": [r.body() for r in state.rounds],
            "stop_reason": state.stop_reason,
            "spent": state.spent,
            "quarantined_lines": state.quarantined,
        }, indent=2))
        return 0
    name = (state.spec_payload or {}).get("name", "?")
    print(f"campaign   {name}")
    print(f"stop       {state.stop_reason or '(in progress)'}")
    print(f"spent      {state.spent}")
    if state.quarantined:
        print(f"journal    {state.quarantined} damaged line(s) "
              "quarantined")
    print()
    _print_rounds([r.body() for r in state.rounds])
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run_or_resume(args, resume=False)
        if args.command == "resume":
            return _cmd_run_or_resume(args, resume=True)
        return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
