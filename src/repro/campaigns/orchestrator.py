"""The campaign orchestrator: sample → decompose → resample, phased.

A campaign closes the loop ROADMAP item 4 asks for.  Phase 0 is a
broad, low-replication **explore** sweep: a seeded fraction of each
sub-ensemble's free configurations is simulated at a few pivot cells
each, and a first M2TD model is fitted.  Every later round is a
focused **confirm** round:

1. *probe* — a seeded set of candidate configurations is simulated at
   one pivot index (only uncovered cells are charged), and the current
   stitched model's prediction is compared against each probe;
2. *score* — the absolute mismatch per candidate is the per-cell
   stitched-reconstruction-error signal (``repro.adaptive.loop``'s
   oracle);
3. *allocate* — the round batch is apportioned across candidates by
   :func:`repro.campaigns.allocator.allocate` (or evenly, for the
   ``"uniform"`` control), capped per candidate at its uncovered
   fiber cells and globally at the remaining budget;
4. *confirm* — the allocated cells are simulated and a new model is
   fitted on everything observed so far.

The campaign stops when a round's probe-metric improvement falls below
the spec's ``success_delta``, when the budget or the sample space is
exhausted, or at ``max_rounds``.

Every round executes as one :class:`~repro.runtime.graph.TaskGraph` on
a :class:`~repro.runtime.scheduler.Runtime` whose result cache lives
in the campaign workdir: simulation tasks are content-addressed, so an
interrupted round re-runs with pure cache hits, and completed rounds
replay from the journal without running any graph at all.  Randomness
derives from ``(spec.seed, round, ...)`` seed sequences only — no
serialized RNG state — so a resumed campaign finishes byte-identical
to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..adaptive.loop import predict_cells
from ..core.m2td import M2TDResult, m2td_decompose
from ..core.pipeline import EnsembleStudy
from ..exceptions import CampaignSpecError, CampaignStateError
from ..faults.injector import get_injector
from ..observability import get_metrics, span
from ..runtime import Runtime, TaskGraph, output
from ..runtime.report import RuntimeReport
from ..runtime.retry import RetryPolicy
from ..simulation import SimulationMeter, make_system
from ..tensor.sparse import SparseTensor
from .allocator import allocate
from .spec import CampaignSpec
from .state import CampaignJournal, JournalState, RoundRecord, journal_path

#: Per-task policy for round graphs: a transient failure (or an
#: injected ``runtime.task`` fault) retries quickly instead of killing
#: the campaign.
CAMPAIGN_RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.01, max_backoff_seconds=0.1
)


@dataclass
class CampaignOutcome:
    """What a finished (or resumed-to-finished) campaign hands back."""

    spec: CampaignSpec
    model: M2TDResult
    rounds: List[RoundRecord]
    stop_reason: str
    cells_simulated: int
    budget_remaining: int
    #: Rounds replayed from the journal rather than executed.
    replayed_rounds: int
    #: Simulation tasks that actually executed vs. hit the cache
    #: across this call (replayed rounds run zero of either).
    executed_sim_tasks: int
    cached_sim_tasks: int
    reports: List[RuntimeReport] = field(default_factory=list)

    def payload(self) -> Tuple[bytes, Tuple[bytes, ...]]:
        """Byte-level identity of the final decomposition."""
        tucker = self.model.tucker
        return (
            tucker.core.tobytes(),
            tuple(f.tobytes() for f in tucker.factors),
        )

    def accuracy(self, truth: np.ndarray) -> float:
        return self.model.accuracy(truth)


class CampaignOrchestrator:
    """Drive one :class:`CampaignSpec` to completion on a study.

    Parameters
    ----------
    spec:
        The validated campaign specification.
    workdir:
        Directory holding the journal and the on-disk result cache;
        ``None`` runs ephemerally (no resume, memory-only cache).
    runtime:
        Externally owned :class:`Runtime`; by default the orchestrator
        builds a single-worker runtime whose cache tier lives under
        ``<workdir>/cache``.
    study:
        Pre-built study (tests and benches share one); by default the
        scenario study is built through the runtime, so its ground
        truth is itself a cached task.
    truth_metrics:
        Record an evaluation-only ``truth_rmse`` per round (golden
        convergence pins); never consulted by any decision.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workdir: Optional[str] = None,
        runtime: Optional[Runtime] = None,
        study: Optional[EnsembleStudy] = None,
        truth_metrics: bool = False,
        meter: Optional[SimulationMeter] = None,
    ):
        self.spec = spec
        self.workdir = workdir
        self.truth_metrics = bool(truth_metrics)
        self.meter = meter if meter is not None else SimulationMeter()
        self._owns_runtime = runtime is None
        if runtime is None:
            cache_dir = (
                os.path.join(workdir, "cache") if workdir else None
            )
            runtime = Runtime(
                workers=1, cache_dir=cache_dir,
                default_retry=CAMPAIGN_RETRY,
            )
        self.runtime = runtime
        if study is None:
            study = EnsembleStudy.create(
                make_system(spec.scenario),
                spec.resolution,
                runtime=runtime,
                meter=self.meter,
            )
        self.study = study
        self.partition = study.default_partition(pivot=spec.pivot)
        self._fingerprint = spec.fingerprint()
        self.journal = CampaignJournal(journal_path(workdir), spec.name)

        self._pivot_size = self.partition.pivot_space_size
        self._pivot_shape = tuple(self.partition.pivot_shape)
        self._free_size = {
            1: self.partition.free_space_size(1),
            2: self.partition.free_space_size(2),
        }
        self._free_shape = {
            1: tuple(self.partition.free_shape(1)),
            2: tuple(self.partition.free_shape(2)),
        }
        # Coverage: which (free config, pivot cell) pairs have been
        # simulated, and their values.  Merging is idempotent, so task
        # retries and journal replay can re-apply safely.
        self._mask = {
            which: np.zeros(
                (self._free_size[which], self._pivot_size), dtype=bool
            )
            for which in (1, 2)
        }
        self._values = {
            which: np.zeros(
                (self._free_size[which], self._pivot_size)
            )
            for which in (1, 2)
        }
        self._records: List[RoundRecord] = []
        self._reports: List[RuntimeReport] = []
        self._model: Optional[M2TDResult] = None
        self._check_explore_feasible()

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _rng(self, *tags: int) -> np.random.Generator:
        return np.random.default_rng(
            (0xCA3A1607, self.spec.seed) + tuple(int(t) for t in tags)
        )

    def _explore_count(self, which: int) -> int:
        return max(
            1,
            int(round(self.spec.explore_fraction * self._free_size[which])),
        )

    def _check_explore_feasible(self) -> None:
        cost = sum(
            self._explore_count(which) * min(
                self.spec.explore_replicates, self._pivot_size
            )
            for which in (1, 2)
        )
        if cost > self.spec.budget:
            raise CampaignSpecError(
                "budget",
                f"budget {self.spec.budget} cannot pay for the explore "
                f"sweep ({cost} cells at explore_fraction="
                f"{self.spec.explore_fraction}, explore_replicates="
                f"{self.spec.explore_replicates})",
            )

    def _sub_coords(
        self, which: int, cells: List[Tuple[int, int]]
    ) -> np.ndarray:
        """Sub-space coordinates for (free_flat, pivot_flat) pairs.

        Sub-tensor mode order is pivot modes first, then free modes
        (the layout ``PFPartition.sub_shape`` defines).
        """
        if not cells:
            return np.zeros(
                (0, len(self._pivot_shape) + len(self._free_shape[which])),
                dtype=int,
            )
        free_flat = np.array([f for f, _ in cells], dtype=int)
        pivot_flat = np.array([p for _, p in cells], dtype=int)
        pivot_coords = np.stack(
            np.unravel_index(pivot_flat, self._pivot_shape), axis=1
        )
        free_coords = np.stack(
            np.unravel_index(free_flat, self._free_shape[which]), axis=1
        )
        return np.hstack([pivot_coords, free_coords])

    def _simulate_cells(
        self, which: int, cells: List[Tuple[int, int]]
    ) -> np.ndarray:
        """'Run' the simulations: read the cells off the ground truth."""
        coords = self._sub_coords(which, cells)
        full = self.partition.embed_coords(which, coords)
        values = self.study.truth[tuple(full.T)]
        self.meter.charge(runs=0, cells=len(cells), wall_seconds=0.0)
        return np.asarray(values, dtype=float)

    def _merge(
        self, which: int, cells: List[Tuple[int, int]], values: np.ndarray
    ) -> None:
        for (f, p), v in zip(cells, np.asarray(values).ravel()):
            self._values[which][f, p] = v
            self._mask[which][f, p] = True

    def _observed_tensor(self, which: int) -> SparseTensor:
        free_flat, pivot_flat = np.nonzero(self._mask[which])
        cells = list(zip(free_flat.tolist(), pivot_flat.tolist()))
        coords = self._sub_coords(which, cells)
        values = self._values[which][free_flat, pivot_flat]
        return SparseTensor(
            self.partition.sub_shape(which), coords, values
        )

    def _fit(self) -> M2TDResult:
        ranks = [self.spec.rank] * self.partition.n_modes
        return m2td_decompose(
            self._observed_tensor(1),
            self._observed_tensor(2),
            self.partition,
            ranks,
            variant=self.spec.variant,
        )

    def _truth_rmse(self, model: M2TDResult) -> float:
        approx = model.reconstruct_original()
        truth = self.study.truth
        return float(
            np.linalg.norm((approx - truth).ravel())
            / math.sqrt(truth.size)
        )

    def _prefix_sha(self) -> str:
        """Content hash of the campaign history so far — ties a round's
        cache entries to the exact state that produced them."""
        digest = hashlib.sha256(self._fingerprint.encode())
        for record in self._records:
            digest.update(repr(sorted(record.body().items())).encode())
        return digest.hexdigest()[:24]

    @property
    def spent(self) -> int:
        return self._records[-1].spent_after if self._records else 0

    @property
    def remaining(self) -> int:
        return max(0, self.spec.budget - self.spent)

    def _metric(self, residuals: np.ndarray) -> float:
        if residuals.size == 0:
            return 0.0
        if self.spec.metric == "max-error":
            return float(np.max(residuals))
        return float(np.sqrt(np.mean(np.square(residuals))))

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def _round_target(self, index: int) -> str:
        return f"{self.spec.name}/round-{index}"

    def _fire_round_site(self, index: int) -> None:
        injector = get_injector()
        if injector.enabled:
            injector.fire("campaign.round", self._round_target(index))

    def _record(self, record: RoundRecord) -> None:
        self._records.append(record)
        self.journal.append_round(record)
        metrics = get_metrics()
        metrics.counter("campaign.rounds").inc()
        cells = record.probe_cost + record.alloc_cells
        metrics.counter("campaign.cells_simulated").inc(cells)
        metrics.gauge("campaign.budget_remaining").set(self.remaining)
        get_injector().note_recovery(
            "campaign.round", self._round_target(record.index)
        )

    def _run_round_graph(self, graph: TaskGraph):
        outcome = self.runtime.run(graph)
        self._reports.append(outcome.report)
        return outcome

    def _explore_round(self) -> None:
        self._fire_round_site(0)
        replicates = min(self.spec.explore_replicates, self._pivot_size)
        plan: Dict[int, List[Tuple[int, int]]] = {}
        for which in (1, 2):
            configs = np.sort(self._rng(0, which, 1).choice(
                self._free_size[which],
                size=self._explore_count(which),
                replace=False,
            ))
            pivots = self._rng(0, which, 2).permutation(
                self._pivot_size
            )[:replicates]
            plan[which] = [
                (int(f), int(p)) for f in configs for p in np.sort(pivots)
            ]
        graph = TaskGraph()
        prefix = self._prefix_sha()
        for which in (1, 2):
            cells = plan[which]
            graph.add(
                f"round-0:simulate-{which}",
                self._simulate_cells,
                which,
                cells,
                cache_key=(self._fingerprint, prefix, 0, which, cells),
                cache_scope="campaign-sim",
            )

        def fit_and_merge(values1, values2):
            self._merge(1, plan[1], values1)
            self._merge(2, plan[2], values2)
            return self._fit()

        graph.add(
            "round-0:fit",
            fit_and_merge,
            output("round-0:simulate-1"),
            output("round-0:simulate-2"),
        )
        outcome = self._run_round_graph(graph)
        self._model = outcome["round-0:fit"]
        cost = len(plan[1]) + len(plan[2])
        # In-sample residual of the first model (reported; the stop
        # rule only compares confirm-round probe metrics).
        residuals = np.concatenate([
            np.abs(
                self._values[which][self._mask[which]]
                - self._model_values(which)
            )
            for which in (1, 2)
        ])
        record = RoundRecord(
            index=0,
            phase="explore",
            probe_pivot=-1,
            new_cells={
                str(which): [[f, p] for f, p in plan[which]]
                for which in (1, 2)
            },
            probe_cost=0,
            alloc_cells=cost,
            metric=self._metric(residuals),
            spent_after=cost,
            truth_rmse=(
                self._truth_rmse(self._model)
                if self.truth_metrics else None
            ),
        )
        self._record(record)

    def _model_values(self, which: int) -> np.ndarray:
        """Model predictions at every observed cell of one side."""
        assert self._model is not None
        free_flat, pivot_flat = np.nonzero(self._mask[which])
        predictions = np.empty(free_flat.shape[0])
        for pivot in np.unique(pivot_flat):
            rows = pivot_flat == pivot
            predictions[rows] = predict_cells(
                self._model, self.partition, which,
                free_flat[rows], int(pivot),
            )
        return predictions

    def _probe_pivot(self, index: int) -> int:
        """Pick the pivot cell confirm-round probes are simulated at.

        Probing a near-silent pivot slice (an epidemic's early time
        steps, say) would hand the allocator an all-zero error signal,
        so rounds probe the *loudest* slices of the current model: the
        pivot cells ranked by reconstructed energy, round-robin over
        the top half.  Deterministic given the round history — replay
        recomputes the same pivot without the journal storing it.
        """
        assert self._model is not None
        reconstruction = self._model.tucker.reconstruct()
        energy = np.abs(
            reconstruction.reshape(self._pivot_size, -1)
        ).sum(axis=1)
        ranked = np.argsort(-energy, kind="stable")
        top = max(1, self._pivot_size // 2)
        return int(ranked[(index - 1) % top])

    def _candidates(self, which: int) -> np.ndarray:
        uncovered = self._mask[which].sum(axis=1) < self._pivot_size
        return np.nonzero(uncovered)[0]

    def _confirm_round(self, index: int) -> None:
        self._fire_round_site(index)
        assert self._model is not None
        spec = self.spec
        probe_pivot = self._probe_pivot(index)
        slots = max(1, math.ceil(spec.batch / (2 * self._pivot_size)))
        remaining = self.remaining
        probe_configs: Dict[int, np.ndarray] = {}
        probe_new: Dict[int, List[Tuple[int, int]]] = {}
        probe_cost = 0
        for which in (1, 2):
            candidates = self._candidates(which)
            n_probe = min(
                candidates.shape[0], spec.probe_factor * slots
            )
            chosen = np.sort(self._rng(index, which, 1).choice(
                candidates, size=n_probe, replace=False
            )) if n_probe else np.zeros(0, dtype=int)
            # Only uncovered probe cells charge the budget; trim so the
            # probe phase alone can never overdraw it.
            fresh = [
                (int(f), probe_pivot)
                for f in chosen
                if not self._mask[which][int(f), probe_pivot]
            ]
            affordable = max(0, remaining - probe_cost)
            fresh = fresh[:affordable]
            probe_new[which] = fresh
            probe_cost += len(fresh)
            probe_configs[which] = chosen
        graph = TaskGraph()
        prefix = self._prefix_sha()
        for which in (1, 2):
            graph.add(
                f"round-{index}:probe-{which}",
                self._simulate_cells,
                which,
                probe_new[which],
                cache_key=(
                    self._fingerprint, prefix, index, which,
                    probe_new[which],
                ),
                cache_scope="campaign-sim",
            )

        def plan_round(probe_values1, probe_values2):
            self._merge(1, probe_new[1], probe_values1)
            self._merge(2, probe_new[2], probe_values2)
            errors: Dict[int, np.ndarray] = {}
            for which in (1, 2):
                configs = probe_configs[which]
                observed = self._values[which][configs, probe_pivot]
                predicted = predict_cells(
                    self._model, self.partition, which, configs,
                    probe_pivot,
                )
                errors[which] = np.abs(observed - predicted)
            residuals = np.concatenate([errors[1], errors[2]])
            weights = (
                residuals if spec.allocation == "adaptive"
                else np.ones_like(residuals)
            )
            capacities = np.concatenate([
                self._pivot_size
                - self._mask[which][probe_configs[which]].sum(axis=1)
                for which in (1, 2)
            ]).astype(int)
            shares = allocate(
                weights,
                spec.batch,
                remaining_budget=remaining - probe_cost,
                capacities=capacities,
            )
            split = np.split(shares, [probe_configs[1].shape[0]])
            confirm_cells: Dict[int, List[Tuple[int, int]]] = {}
            for which, side_shares in zip((1, 2), split):
                cells: List[Tuple[int, int]] = []
                for config, count in zip(
                    probe_configs[which], side_shares
                ):
                    if count <= 0:
                        continue
                    # Stable per-config pivot order: seeded by (side,
                    # config) only, so it never shifts across rounds.
                    order = self._rng(which, int(config), 4).permutation(
                        self._pivot_size
                    )
                    fresh = [
                        int(p) for p in order
                        if not self._mask[which][int(config), int(p)]
                    ][: int(count)]
                    cells.extend((int(config), p) for p in fresh)
                confirm_cells[which] = cells
            return {
                "metric": self._metric(residuals),
                "confirm": confirm_cells,
            }

        graph.add(
            f"round-{index}:plan",
            plan_round,
            output(f"round-{index}:probe-1"),
            output(f"round-{index}:probe-2"),
        )

        def confirm_side(which):
            def simulate(plan):
                return self._simulate_cells(which, plan["confirm"][which])
            return simulate

        for which in (1, 2):
            graph.add(
                f"round-{index}:confirm-{which}",
                confirm_side(which),
                output(f"round-{index}:plan"),
                cache_key=(
                    self._fingerprint, prefix, index, which, "confirm",
                ),
                cache_scope="campaign-sim",
            )

        def fit_round(plan, confirm_values1, confirm_values2):
            self._merge(1, plan["confirm"][1], confirm_values1)
            self._merge(2, plan["confirm"][2], confirm_values2)
            return self._fit()

        graph.add(
            f"round-{index}:fit",
            fit_round,
            output(f"round-{index}:plan"),
            output(f"round-{index}:confirm-1"),
            output(f"round-{index}:confirm-2"),
        )
        outcome = self._run_round_graph(graph)
        plan = outcome[f"round-{index}:plan"]
        self._model = outcome[f"round-{index}:fit"]
        alloc_cells = sum(
            len(cells) for cells in plan["confirm"].values()
        )
        new_cells = {
            str(which): sorted(
                [[f, p] for f, p in probe_new[which]]
                + [[f, p] for f, p in plan["confirm"][which]]
            )
            for which in (1, 2)
        }
        record = RoundRecord(
            index=index,
            phase="confirm",
            probe_pivot=probe_pivot,
            new_cells=new_cells,
            probe_cost=probe_cost,
            alloc_cells=alloc_cells,
            metric=plan["metric"],
            spent_after=self.spent + probe_cost + alloc_cells,
            truth_rmse=(
                self._truth_rmse(self._model)
                if self.truth_metrics else None
            ),
        )
        self._record(record)

    # ------------------------------------------------------------------
    # stop rule
    # ------------------------------------------------------------------
    def _stop_reason(self) -> Optional[str]:
        """Pure function of the round records, so an interrupted and a
        continuous run always agree."""
        confirm = [r for r in self._records if r.phase == "confirm"]
        if len(confirm) >= 2:
            # Probe metrics are noisy (each round probes different
            # configurations), so convergence means *stabilized*: the
            # metric moved by less than the success delta, in either
            # direction.
            movement = abs(confirm[-2].metric - confirm[-1].metric)
            if movement < self.spec.success_delta:
                return "converged"
        if self.remaining <= 0:
            return "budget-exhausted"
        if confirm and confirm[-1].probe_cost + confirm[-1].alloc_cells == 0:
            return "space-exhausted"
        if not (
            self._candidates(1).size or self._candidates(2).size
        ):
            return "space-exhausted"
        if len(confirm) >= self.spec.max_rounds:
            return "max-rounds"
        return None

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay(self, state: JournalState) -> None:
        for record in state.rounds:
            for which in (1, 2):
                cells = [
                    (int(f), int(p))
                    for f, p in record.new_cells[str(which)]
                ]
                # Values re-read from the (cached) ground truth — the
                # journal stores coordinates only.
                coords = self._sub_coords(which, cells)
                full = self.partition.embed_coords(which, coords)
                self._merge(
                    which, cells, self.study.truth[tuple(full.T)]
                )
            self._records.append(record)
        if self._records:
            self._model = self._fit()

    # ------------------------------------------------------------------
    # public entrypoints
    # ------------------------------------------------------------------
    def run(self) -> CampaignOutcome:
        """Run the campaign from scratch (refuses prior progress)."""
        state = self.journal.load()
        if state.rounds or state.done:
            raise CampaignStateError(
                f"workdir already holds {len(state.rounds)} completed "
                "round(s) of this campaign; use resume"
            )
        return self._drive(state)

    def resume(self) -> CampaignOutcome:
        """Continue from the journal (a fresh start when it is empty)."""
        state = self.journal.load()
        if (
            state.fingerprint is not None
            and state.fingerprint != self._fingerprint
        ):
            raise CampaignStateError(
                "journal belongs to a different campaign spec "
                f"(journal fingerprint {state.fingerprint}, spec "
                f"fingerprint {self._fingerprint})"
            )
        return self._drive(state)

    def _drive(self, state: JournalState) -> CampaignOutcome:
        with span(
            f"campaign:{self.spec.name}", "campaign",
            scenario=self.spec.scenario, budget=self.spec.budget,
            allocation=self.spec.allocation,
        ):
            self.journal.start(self._fingerprint, self.spec.as_dict())
            self._replay(state)
            replayed = len(state.rounds)
            stop_reason = state.stop_reason
            if stop_reason is None:
                if not self._records:
                    with span("round-0", "campaign", phase="explore"):
                        self._explore_round()
                stop_reason = self._stop_reason()
                while stop_reason is None:
                    index = len(self._records)
                    with span(
                        f"round-{index}", "campaign", phase="confirm"
                    ):
                        self._confirm_round(index)
                    stop_reason = self._stop_reason()
                last = self._records[-1]
                self.journal.append_stop(
                    stop_reason, last.spent_after, last.metric
                )
            executed = cached = 0
            for report in self._reports:
                for task in report.tasks:
                    if ":fit" in task.name or ":plan" in task.name:
                        continue
                    if task.cache_hit:
                        cached += 1
                    else:
                        executed += 1
            assert self._model is not None
            get_metrics().gauge("campaign.budget_remaining").set(
                self.remaining
            )
            return CampaignOutcome(
                spec=self.spec,
                model=self._model,
                rounds=list(self._records),
                stop_reason=stop_reason,
                cells_simulated=self.spent,
                budget_remaining=self.remaining,
                replayed_rounds=replayed,
                executed_sim_tasks=executed,
                cached_sim_tasks=cached,
                reports=list(self._reports),
            )

    def close(self) -> None:
        """Shut down the orchestrator-owned runtime (no-op otherwise)."""
        if self._owns_runtime:
            self.runtime.shutdown()

    def __enter__(self) -> "CampaignOrchestrator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
