"""Factor-matrix interpretation helpers.

The paper's motivation (Section I) is that decision makers need
"broad, actionable patterns" from ensembles; the decomposition's
factor matrices are those patterns.  This module turns a Tucker
decomposition into readable summaries: per-index loadings, the
strongest indices per component, and per-mode energy profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModeError, ShapeError
from ..tensor.tucker import TuckerTensor
from ..tensor.unfold import unfold


def index_loadings(tucker: TuckerTensor, mode: int) -> np.ndarray:
    """Energy each index of ``mode`` carries in the reconstruction.

    For a Tucker model ``[G; U^(1..N)]`` the mode-``n`` slab at index
    ``i`` has Frobenius norm ``||U^(n)[i, :] @ G_(n) @ W||`` where
    ``W`` collects the (orthonormal-ish) other factors; we report the
    factor-space magnitude ``||U^(n)[i, :] @ G_(n)||`` per index, which
    ranks slabs identically when the other factors are orthonormal.
    """
    mode = _check_mode(tucker, mode)
    core_matricized = unfold(tucker.core, mode)
    return np.linalg.norm(
        tucker.factors[mode] @ core_matricized, axis=1
    )


def component_loadings(tucker: TuckerTensor, mode: int) -> np.ndarray:
    """Per-component loadings of a mode: column ``r`` of the factor
    matrix scaled by that component's core energy."""
    mode = _check_mode(tucker, mode)
    core_matricized = unfold(tucker.core, mode)
    component_energy = np.linalg.norm(core_matricized, axis=1)
    return tucker.factors[mode] * component_energy[None, :]


def top_indices(
    tucker: TuckerTensor, mode: int, component: int, count: int = 3
) -> List[Tuple[int, float]]:
    """The ``count`` strongest mode indices of one factor component,
    as ``(index, signed loading)`` pairs sorted by |loading|."""
    mode = _check_mode(tucker, mode)
    factor = tucker.factors[mode]
    if not 0 <= component < factor.shape[1]:
        raise ModeError(
            f"component {component} out of range for mode {mode} "
            f"(rank {factor.shape[1]})"
        )
    column = component_loadings(tucker, mode)[:, component]
    order = np.argsort(-np.abs(column))[: max(1, int(count))]
    return [(int(i), float(column[i])) for i in order]


@dataclass(frozen=True)
class ModeSummary:
    """Readable summary of one tensor mode."""

    mode: int
    name: str
    loadings: np.ndarray
    dominant_index: int
    concentration: float

    def describe(self) -> str:
        return (
            f"mode {self.mode} ({self.name}): dominant index "
            f"{self.dominant_index}, concentration "
            f"{self.concentration:.2f}"
        )


def participation_ratio(weights: np.ndarray) -> float:
    """Inverse participation ratio normalized to (0, 1].

    1 means energy spread uniformly over all indices; ``1/n`` means a
    single index carries everything.
    """
    weights = np.asarray(weights, dtype=np.float64) ** 2
    total = weights.sum()
    if total == 0:
        return 1.0
    p = weights / total
    return float(1.0 / (len(p) * np.sum(p**2)))


def summarize_mode(
    tucker: TuckerTensor, mode: int, name: Optional[str] = None
) -> ModeSummary:
    """Build a :class:`ModeSummary` for one mode."""
    mode = _check_mode(tucker, mode)
    loadings = index_loadings(tucker, mode)
    return ModeSummary(
        mode=mode,
        name=name or f"mode{mode}",
        loadings=loadings,
        dominant_index=int(np.argmax(loadings)),
        concentration=participation_ratio(loadings),
    )


def summarize_factors(
    tucker: TuckerTensor, mode_names: Optional[Sequence[str]] = None
) -> List[ModeSummary]:
    """Summaries for all modes of a decomposition."""
    if mode_names is not None and len(mode_names) != tucker.ndim:
        raise ShapeError(
            f"need {tucker.ndim} mode names, got {len(mode_names)}"
        )
    return [
        summarize_mode(
            tucker, mode, mode_names[mode] if mode_names else None
        )
        for mode in range(tucker.ndim)
    ]


def _check_mode(tucker: TuckerTensor, mode: int) -> int:
    mode = int(mode)
    if mode < 0:
        mode += tucker.ndim
    if not 0 <= mode < tucker.ndim:
        raise ModeError(
            f"mode {mode} out of range for a {tucker.ndim}-mode model"
        )
    return mode
