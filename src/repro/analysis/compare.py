"""Comparing decompositions: subspace recovery beyond Frobenius
accuracy.

The paper scores schemes by reconstruction accuracy; a complementary
question is whether a scheme recovers the *true factor subspaces* of
the full-space tensor — the patterns a decision maker would actually
read.  This module measures principal angles between factor subspaces
and summarizes scheme-vs-truth recovery per mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import ShapeError
from ..tensor.tucker import TuckerTensor, hosvd


def principal_angles(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Principal angles (radians, ascending) between the column spaces
    of ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError("principal_angles expects matrices")
    if a.shape[0] != b.shape[0]:
        raise ShapeError(
            f"subspaces live in different dimensions: {a.shape[0]} vs "
            f"{b.shape[0]}"
        )
    qa, _ra = np.linalg.qr(a)
    qb, _rb = np.linalg.qr(b)
    singular_values = np.linalg.svd(qa.T @ qb, compute_uv=False)
    # numerical safety: cos(theta) in [0, 1]
    cosines = np.clip(singular_values, -1.0, 1.0)
    return np.sort(np.arccos(cosines))


def subspace_affinity(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared cosine of the principal angles in [0, 1]:
    1 = identical subspaces, ~0 = orthogonal."""
    angles = principal_angles(a, b)
    if angles.size == 0:
        raise ShapeError("empty subspaces have no affinity")
    return float(np.mean(np.cos(angles) ** 2))


@dataclass(frozen=True)
class SubspaceRecovery:
    """Per-mode factor-subspace recovery of one scheme vs the truth."""

    mode: int
    affinity: float
    worst_angle_degrees: float


def factor_recovery(
    estimated: TuckerTensor,
    reference: TuckerTensor,
    mode_map: Sequence[int] = None,
) -> List[SubspaceRecovery]:
    """Compare each estimated factor subspace to the reference's.

    Parameters
    ----------
    estimated / reference:
        The two decompositions (e.g. an M2TD result and the HOSVD of
        the full ground-truth tensor).
    mode_map:
        ``mode_map[i]`` gives the reference mode that the estimated
        model's mode ``i`` corresponds to (needed when the estimated
        model lives in join mode order); identity when omitted.
    """
    if mode_map is None:
        mode_map = list(range(estimated.ndim))
    if len(mode_map) != estimated.ndim:
        raise ShapeError(
            f"mode_map needs {estimated.ndim} entries, got {len(mode_map)}"
        )
    recoveries = []
    for mode in range(estimated.ndim):
        reference_factor = reference.factors[mode_map[mode]]
        estimated_factor = estimated.factors[mode]
        width = min(
            estimated_factor.shape[1], reference_factor.shape[1]
        )
        angles = principal_angles(
            estimated_factor[:, :width], reference_factor[:, :width]
        )
        recoveries.append(
            SubspaceRecovery(
                mode=mode,
                affinity=float(np.mean(np.cos(angles) ** 2)),
                worst_angle_degrees=float(np.degrees(angles.max())),
            )
        )
    return recoveries


def truth_decomposition(
    truth: np.ndarray, ranks: Sequence[int]
) -> TuckerTensor:
    """Reference decomposition of the full-space tensor (what every
    scheme is implicitly trying to approximate)."""
    return hosvd(np.asarray(truth, dtype=np.float64), tuple(ranks))
