"""Cross-mode pattern extraction from a Tucker decomposition.

A Tucker core entry ``G[r_1, ..., r_N]`` measures how strongly the
combination of component ``r_n`` of each mode interacts; the largest
|core| entries therefore *are* the ensemble's dominant multi-way
patterns.  This module ranks them and resolves each one back to
concrete parameter values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..tensor.tucker import TuckerTensor
from .factors import top_indices


@dataclass(frozen=True)
class Pattern:
    """One dominant multi-way interaction.

    Attributes
    ----------
    components:
        The core multi-index (one factor component per mode).
    strength:
        The signed core value.
    share:
        This pattern's fraction of total core energy.
    anchors:
        Per mode, the strongest index of the involved component,
        ``(mode index, loading)``.
    """

    components: Tuple[int, ...]
    strength: float
    share: float
    anchors: Tuple[Tuple[int, float], ...]


def core_energy_spectrum(tucker: TuckerTensor) -> np.ndarray:
    """Sorted squared core values normalized to sum to 1 — how many
    multi-way patterns carry the ensemble's energy."""
    energy = np.sort((tucker.core.ravel() ** 2))[::-1]
    total = energy.sum()
    if total == 0:
        raise ShapeError("core tensor has zero energy")
    return energy / total


def energy_rank(tucker: TuckerTensor, threshold: float = 0.9) -> int:
    """Number of core entries needed to reach ``threshold`` of the
    core energy."""
    if not 0.0 < threshold <= 1.0:
        raise ShapeError(f"threshold must be in (0, 1], got {threshold}")
    spectrum = core_energy_spectrum(tucker)
    return int(np.searchsorted(np.cumsum(spectrum), threshold) + 1)


def dominant_patterns(
    tucker: TuckerTensor,
    count: int = 5,
    anchor_count: int = 1,
) -> List[Pattern]:
    """The ``count`` strongest multi-way patterns of a decomposition."""
    if count < 1:
        raise ShapeError(f"count must be >= 1, got {count}")
    core = tucker.core
    total_energy = float((core**2).sum())
    if total_energy == 0:
        raise ShapeError("core tensor has zero energy")
    flat_order = np.argsort(-np.abs(core.ravel()))[: int(count)]
    patterns = []
    for flat in flat_order:
        components = tuple(
            int(i) for i in np.unravel_index(flat, core.shape)
        )
        strength = float(core[components])
        anchors = tuple(
            top_indices(tucker, mode, components[mode], anchor_count)[0]
            for mode in range(tucker.ndim)
        )
        patterns.append(
            Pattern(
                components=components,
                strength=strength,
                share=strength**2 / total_energy,
                anchors=anchors,
            )
        )
    return patterns


def describe_patterns(
    patterns: Sequence[Pattern],
    mode_names: Optional[Sequence[str]] = None,
) -> str:
    """Human-readable rendering of extracted patterns."""
    lines = []
    for rank, pattern in enumerate(patterns, start=1):
        anchor_text = ", ".join(
            f"{mode_names[mode] if mode_names else f'mode{mode}'}"
            f"@{index}"
            for mode, (index, _loading) in enumerate(pattern.anchors)
        )
        lines.append(
            f"#{rank}: components {pattern.components} "
            f"(strength {pattern.strength:+.3f}, "
            f"{pattern.share:.0%} of core energy) anchored at "
            f"{anchor_text}"
        )
    return "\n".join(lines)
