"""Post-decomposition analysis: turning factor matrices and cores into
the "broad, actionable patterns" the paper's decision makers need.
"""

from .compare import (
    SubspaceRecovery,
    factor_recovery,
    principal_angles,
    subspace_affinity,
    truth_decomposition,
)
from .factors import (
    ModeSummary,
    component_loadings,
    index_loadings,
    participation_ratio,
    summarize_factors,
    summarize_mode,
    top_indices,
)
from .patterns import (
    Pattern,
    core_energy_spectrum,
    describe_patterns,
    dominant_patterns,
    energy_rank,
)

__all__ = [
    "SubspaceRecovery",
    "factor_recovery",
    "principal_angles",
    "subspace_affinity",
    "truth_decomposition",
    "ModeSummary",
    "component_loadings",
    "index_loadings",
    "participation_ratio",
    "summarize_factors",
    "summarize_mode",
    "top_indices",
    "Pattern",
    "core_energy_spectrum",
    "describe_patterns",
    "dominant_patterns",
    "energy_rank",
]
