"""repro.runtime — the task-graph execution runtime.

The execution substrate the higher layers schedule onto: ensemble
studies express ground-truth construction and per-scheme decomposition
as cached graph tasks, the MapReduce engine runs its map/reduce stages
on the shared executor interface, and D-M2TD's three phases form a
small DAG (phase 1 and phase 2 are independent; phase 3 joins them).

Pieces
------
:class:`TaskGraph` / :func:`output`
    Declare named tasks with explicit dependencies and argument
    placeholders.
:class:`InlineExecutor` / :class:`ThreadExecutor` / :class:`ProcessExecutor`
    Pluggable venues behind one ``submit`` interface, chosen per task
    affinity.
:class:`ResultCache` / :func:`fingerprint`
    Content-addressed LRU cache with optional on-disk ``.npz`` tier.
:class:`RetryPolicy`
    Bounded backoff and per-task timeouts for transient failures.
:class:`Runtime` / :func:`session_runtime`
    The facade everything else threads through (``--workers``,
    ``--cache-dir``).
"""

from .cache import CacheStats, ResultCache, fingerprint
from .executors import (
    Executor,
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    make_executor,
)
from .graph import Task, TaskGraph, TaskOutput, output
from .report import RuntimeReport, TaskMetrics
from .retry import NO_RETRY, RetryPolicy
from .scheduler import (
    RunOutcome,
    Runtime,
    TaskGraphRunner,
    reset_session_runtime,
    session_runtime,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "fingerprint",
    "Executor",
    "InlineExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "make_executor",
    "Task",
    "TaskGraph",
    "TaskOutput",
    "output",
    "RuntimeReport",
    "TaskMetrics",
    "NO_RETRY",
    "RetryPolicy",
    "RunOutcome",
    "Runtime",
    "TaskGraphRunner",
    "reset_session_runtime",
    "session_runtime",
]
