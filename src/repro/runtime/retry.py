"""Retry policies: bounded exponential backoff plus per-task timeouts.

Transient failures (a flaky subprocess, an I/O hiccup in the on-disk
cache, a numerically unlucky Lanczos start) should not kill a
multi-hour study graph.  A :class:`RetryPolicy` says how many times a
task may be attempted, how long to sleep between attempts, and how
long a single attempt may run before it is declared timed out.

Exhaustion is surfaced as
:class:`repro.exceptions.RetryExhaustedError`, which names the failing
task — the scheduler attaches the task name, this module only decides
*whether* another attempt is allowed and how long to wait.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple, Type

from ..exceptions import TaskGraphError

#: Exception classes that never trigger a retry: programming errors
#: retry cannot fix.
NON_RETRYABLE: Tuple[Type[BaseException], ...] = (
    KeyboardInterrupt,
    SystemExit,
    MemoryError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How a task responds to failure.

    Attributes
    ----------
    max_attempts:
        Total attempts (1 = no retries).
    backoff_seconds:
        Sleep before the second attempt; doubles by ``backoff_factor``
        each further attempt.
    backoff_factor:
        Multiplier applied per attempt.
    max_backoff_seconds:
        Upper bound on any single sleep.
    timeout_seconds:
        Per-attempt wall-clock budget (``None`` = unbounded).  Enforced
        pre-emptively for thread/process executors via future timeouts;
        the inline executor can only detect the overrun after the call
        returns.
    backoff_budget_seconds:
        Cap on the *cumulative* sleep across every retry of one task
        (``None`` = unbounded).  Later delays are clipped so the total
        backoff never exceeds the budget — a 10-attempt policy cannot
        stall a graph for longer than its declared budget, no matter
        how the geometric sequence grows.
    jitter:
        Decorrelation jitter as a fraction of each delay, in [0, 1].
        When many tasks (or many respawning workers) fail at the same
        instant, a pure geometric backoff retries them in lockstep,
        producing synchronized thundering-herd retry waves.  With
        jitter, the sleep before attempt ``a`` for key ``k`` becomes
        ``delay * (1 - jitter * u)`` where ``u`` is a *deterministic*
        uniform draw hashed from ``(jitter_seed, k, a)`` — different
        keys decorrelate, while the same (seed, key, attempt) always
        sleeps the same amount, so tests replay exactly.  Jitter only
        ever shortens a delay, so ``max_backoff_seconds`` and the
        backoff budget remain hard ceilings.
    jitter_seed:
        Seed feeding the jitter hash.
    retry_on:
        Exception classes that count as transient.  Anything else
        (and everything in :data:`NON_RETRYABLE`) fails immediately.
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    timeout_seconds: Optional[float] = None
    backoff_budget_seconds: Optional[float] = None
    jitter: float = 0.0
    jitter_seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise TaskGraphError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise TaskGraphError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise TaskGraphError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise TaskGraphError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        if (
            self.backoff_budget_seconds is not None
            and self.backoff_budget_seconds < 0
        ):
            raise TaskGraphError(
                "backoff_budget_seconds must be >= 0, got "
                f"{self.backoff_budget_seconds}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise TaskGraphError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def _raw_delay(self, attempt: int) -> float:
        """The geometric sequence clamped per-sleep (budget ignored)."""
        if attempt <= 1:
            return 0.0
        raw = self.backoff_seconds * self.backoff_factor ** (attempt - 2)
        return float(min(raw, self.max_backoff_seconds))

    def _jitter_draw(self, attempt: int, key: str) -> float:
        """Deterministic uniform in [0, 1) from (seed, key, attempt)."""
        token = f"{self.jitter_seed}:{key}:{attempt}".encode()
        return int.from_bytes(
            hashlib.sha256(token).digest()[:8], "big"
        ) / float(1 << 64)

    def delay(self, attempt: int, key: str = "") -> float:
        """Sleep before attempt ``attempt`` (1-based; attempt 1 never
        sleeps).  With a backoff budget, the delay is additionally
        clipped so the cumulative sleep through this attempt stays
        within ``backoff_budget_seconds``.  ``key`` feeds the
        decorrelation jitter — pass a stable per-task or per-worker id
        so simultaneous failures spread their retries instead of
        hammering back in lockstep."""
        if attempt <= 1:
            return 0.0
        if self.backoff_budget_seconds is None:
            base = self._raw_delay(attempt)
        else:
            spent = self.total_backoff(attempt - 1)
            remaining = max(0.0, self.backoff_budget_seconds - spent)
            base = float(min(self._raw_delay(attempt), remaining))
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        return base * (1.0 - self.jitter * self._jitter_draw(attempt, key))

    def total_backoff(self, attempts: int) -> float:
        """Cumulative sleep before attempts ``2..attempts`` (with the
        budget applied) — never exceeds ``backoff_budget_seconds``.
        With jitter this is an upper bound: jitter only shortens
        individual delays."""
        total = 0.0
        for attempt in range(2, attempts + 1):
            step = self._raw_delay(attempt)
            if self.backoff_budget_seconds is not None:
                step = min(
                    step, max(0.0, self.backoff_budget_seconds - total)
                )
            total += step
        return total

    def should_retry(self, attempt: int, error: BaseException) -> bool:
        """May the scheduler try again after ``attempt`` failed?"""
        if attempt >= self.max_attempts:
            return False
        if isinstance(error, NON_RETRYABLE):
            return False
        return isinstance(error, self.retry_on)


#: The scheduler's default: one attempt, no timeout — retries are
#: opt-in because most tasks here are deterministic numerics where a
#: failure means a bug, not bad luck.
NO_RETRY = RetryPolicy(max_attempts=1)
