"""Retry policies: bounded exponential backoff plus per-task timeouts.

Transient failures (a flaky subprocess, an I/O hiccup in the on-disk
cache, a numerically unlucky Lanczos start) should not kill a
multi-hour study graph.  A :class:`RetryPolicy` says how many times a
task may be attempted, how long to sleep between attempts, and how
long a single attempt may run before it is declared timed out.

Exhaustion is surfaced as
:class:`repro.exceptions.RetryExhaustedError`, which names the failing
task — the scheduler attaches the task name, this module only decides
*whether* another attempt is allowed and how long to wait.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Type

from ..exceptions import TaskGraphError

#: Exception classes that never trigger a retry: programming errors
#: retry cannot fix.
NON_RETRYABLE: Tuple[Type[BaseException], ...] = (
    KeyboardInterrupt,
    SystemExit,
    MemoryError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How a task responds to failure.

    Attributes
    ----------
    max_attempts:
        Total attempts (1 = no retries).
    backoff_seconds:
        Sleep before the second attempt; doubles by ``backoff_factor``
        each further attempt.
    backoff_factor:
        Multiplier applied per attempt.
    max_backoff_seconds:
        Upper bound on any single sleep.
    timeout_seconds:
        Per-attempt wall-clock budget (``None`` = unbounded).  Enforced
        pre-emptively for thread/process executors via future timeouts;
        the inline executor can only detect the overrun after the call
        returns.
    backoff_budget_seconds:
        Cap on the *cumulative* sleep across every retry of one task
        (``None`` = unbounded).  Later delays are clipped so the total
        backoff never exceeds the budget — a 10-attempt policy cannot
        stall a graph for longer than its declared budget, no matter
        how the geometric sequence grows.
    retry_on:
        Exception classes that count as transient.  Anything else
        (and everything in :data:`NON_RETRYABLE`) fails immediately.
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    timeout_seconds: Optional[float] = None
    backoff_budget_seconds: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise TaskGraphError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise TaskGraphError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise TaskGraphError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise TaskGraphError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        if (
            self.backoff_budget_seconds is not None
            and self.backoff_budget_seconds < 0
        ):
            raise TaskGraphError(
                "backoff_budget_seconds must be >= 0, got "
                f"{self.backoff_budget_seconds}"
            )

    def _raw_delay(self, attempt: int) -> float:
        """The geometric sequence clamped per-sleep (budget ignored)."""
        if attempt <= 1:
            return 0.0
        raw = self.backoff_seconds * self.backoff_factor ** (attempt - 2)
        return float(min(raw, self.max_backoff_seconds))

    def delay(self, attempt: int) -> float:
        """Sleep before attempt ``attempt`` (1-based; attempt 1 never
        sleeps).  With a backoff budget, the delay is additionally
        clipped so the cumulative sleep through this attempt stays
        within ``backoff_budget_seconds``."""
        if attempt <= 1:
            return 0.0
        if self.backoff_budget_seconds is None:
            return self._raw_delay(attempt)
        spent = self.total_backoff(attempt - 1)
        remaining = max(0.0, self.backoff_budget_seconds - spent)
        return float(min(self._raw_delay(attempt), remaining))

    def total_backoff(self, attempts: int) -> float:
        """Cumulative sleep before attempts ``2..attempts`` (with the
        budget applied) — never exceeds ``backoff_budget_seconds``."""
        total = 0.0
        for attempt in range(2, attempts + 1):
            step = self._raw_delay(attempt)
            if self.backoff_budget_seconds is not None:
                step = min(
                    step, max(0.0, self.backoff_budget_seconds - total)
                )
            total += step
        return total

    def should_retry(self, attempt: int, error: BaseException) -> bool:
        """May the scheduler try again after ``attempt`` failed?"""
        if attempt >= self.max_attempts:
            return False
        if isinstance(error, NON_RETRYABLE):
            return False
        return isinstance(error, self.retry_on)


#: The scheduler's default: one attempt, no timeout — retries are
#: opt-in because most tasks here are deterministic numerics where a
#: failure means a bug, not bad luck.
NO_RETRY = RetryPolicy(max_attempts=1)
