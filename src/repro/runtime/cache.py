"""Content-addressed result cache: in-memory LRU + optional ``.npz`` disk.

Keys are *fingerprints*: a SHA-256 digest over a stable byte encoding
of ``(namespace, payload)`` where the payload describes the task's
inputs (numpy arrays hash their dtype/shape/bytes, containers recurse,
scalars encode by type + value).  Two tasks with the same namespace
and equal inputs therefore share one entry — across graphs, runs and,
with a cache directory, across processes.

The disk tier reuses the ``.npz`` idiom of :mod:`repro.storage`: one
compressed file per entry, arrays stored without pickling, structure
(tuples/dicts/scalars around the arrays) recorded in a JSON manifest
inside the archive.  Values the codec cannot express (arbitrary
objects) simply stay memory-only — the cache never falls back to
pickle.

Integrity: every entry carries a SHA-256 checksum over its manifest
and arrays, written atomically (unique temp file + ``os.replace``) so
a crash mid-write can never leave a half-entry behind.  A read that
fails the checksum — or fails to parse at all — quarantines the file
(renamed ``*.corrupt``) and reports a miss: corrupt bytes are always
detected and healed by recompute, never served.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import CacheError, FaultInjectionError
from ..faults.injector import get_injector
from ..observability import get_metrics

logger = logging.getLogger(__name__)

_MISSING = object()


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def _feed(h: "hashlib._Hash", value: Any) -> None:
    """Stream a stable encoding of ``value`` into the hash."""
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B" + (b"1" if value else b"0"))
    elif isinstance(value, (int, np.integer)):
        h.update(b"I" + str(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        h.update(b"F" + np.float64(value).tobytes())
    elif isinstance(value, (complex, np.complexfloating)):
        h.update(b"C" + np.complex128(value).tobytes())
    elif isinstance(value, str):
        encoded = value.encode()
        h.update(b"S" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(value, (bytes, bytearray)):
        h.update(b"Y" + str(len(value)).encode() + b":" + bytes(value))
    elif isinstance(value, np.ndarray):
        h.update(b"A" + str(value.dtype).encode() + str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (tuple, list)):
        h.update(b"L" + str(len(value)).encode())
        for item in value:
            _feed(h, item)
    elif isinstance(value, dict):
        h.update(b"D" + str(len(value)).encode())
        for key in sorted(value, key=repr):
            _feed(h, key)
            _feed(h, value[key])
    elif isinstance(value, frozenset):
        h.update(b"Z" + str(len(value)).encode())
        for item in sorted(value, key=repr):
            _feed(h, item)
    else:
        raise CacheError(
            f"cannot fingerprint value of type {type(value).__name__}; "
            "cache keys must be built from scalars, strings, arrays and "
            "containers thereof"
        )


def fingerprint(namespace: str, payload: Any = None) -> str:
    """Stable content hash of ``(namespace, payload)`` (hex, 32 chars)."""
    h = hashlib.sha256()
    _feed(h, namespace)
    _feed(h, payload)
    return h.hexdigest()[:32]


# ----------------------------------------------------------------------
# npz codec: values <-> flat array dict + JSON manifest
# ----------------------------------------------------------------------
_SCALAR_TAGS = {
    "int": int,
    "float": float,
    "bool": bool,
    "complex": complex,
    "str": str,
}


def _encode(value: Any, arrays: Dict[str, np.ndarray]) -> Optional[Dict]:
    """Build the manifest node for ``value``; None if not expressible."""
    if value is None:
        return {"t": "none"}
    if isinstance(value, np.ndarray):
        slot = f"a{len(arrays)}"
        arrays[slot] = value
        return {"t": "array", "slot": slot}
    if isinstance(value, np.generic):
        slot = f"a{len(arrays)}"
        arrays[slot] = np.asarray(value)
        return {"t": "array0", "slot": slot}
    for tag, kind in _SCALAR_TAGS.items():
        if type(value) is kind:
            if tag == "complex":
                return {"t": tag, "v": [value.real, value.imag]}
            return {"t": tag, "v": value}
    if isinstance(value, (tuple, list)):
        items = []
        for item in value:
            node = _encode(item, arrays)
            if node is None:
                return None
            items.append(node)
        return {"t": "tuple" if isinstance(value, tuple) else "list",
                "items": items}
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            return None
        items = {}
        for key, item in value.items():
            node = _encode(item, arrays)
            if node is None:
                return None
            items[key] = node
        return {"t": "dict", "items": items}
    return None


def _decode(node: Dict, arrays: Dict[str, np.ndarray]) -> Any:
    kind = node["t"]
    if kind == "none":
        return None
    if kind == "array":
        return arrays[node["slot"]]
    if kind == "array0":
        return arrays[node["slot"]][()]
    if kind in _SCALAR_TAGS:
        if kind == "complex":
            real, imag = node["v"]
            return complex(real, imag)
        return _SCALAR_TAGS[kind](node["v"])
    if kind in ("tuple", "list"):
        items = [_decode(item, arrays) for item in node["items"]]
        return tuple(items) if kind == "tuple" else items
    if kind == "dict":
        return {key: _decode(item, arrays) for key, item in node["items"].items()}
    raise CacheError(f"corrupt cache manifest node {node!r}")


def _payload_digest(manifest_json: str, arrays: Dict[str, np.ndarray]) -> str:
    """Checksum of one disk entry: manifest text + arrays, via the same
    stable encoding the fingerprints use."""
    h = hashlib.sha256()
    _feed(h, manifest_json)
    _feed(h, arrays)
    return h.hexdigest()


def _value_nbytes(value: Any) -> int:
    """Approximate in-memory footprint, mirroring the npz payload."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_value_nbytes(v) for v in value) + 8
    if isinstance(value, dict):
        return sum(_value_nbytes(v) for v in value.values()) + 8
    if isinstance(value, (str, bytes, bytearray)):
        return len(value)
    return 8


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Running totals for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    bytes_cached: int = 0
    corrupt_quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "bytes_cached": self.bytes_cached,
            "corrupt_quarantined": self.corrupt_quarantined,
        }


@dataclass
class ResultCache:
    """LRU memory tier plus optional content-addressed ``.npz`` disk tier.

    Parameters
    ----------
    max_entries:
        Memory-tier capacity; least-recently-used entries evict first
        (their disk copies, when present, survive eviction).
    directory:
        Disk-tier root (created on first write); ``None`` keeps the
        cache memory-only.
    """

    max_entries: int = 128
    directory: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, Any]" = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise CacheError(
                f"max_entries must be >= 1, got {self.max_entries}"
            )
        if self.directory is not None:
            self.directory = Path(self.directory).expanduser()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.npz"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Look ``key`` up; returns ``(hit, value)``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return True, value
        value = self._disk_get(key)
        with self._lock:
            if value is not _MISSING:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._store(key, value)
                return True, value
            self.stats.misses += 1
            return False, None

    def put(self, key: str, value: Any) -> int:
        """Store ``value``; returns the bytes charged to the entry."""
        nbytes = _value_nbytes(value)
        with self._lock:
            self._store(key, value)
            self.stats.bytes_cached += nbytes
        self._disk_put(key, value)
        # A successful (re)store heals any pending injected read fault
        # for this key — recompute-after-corruption is the recovery.
        injector = get_injector()
        if injector.enabled:
            injector.note_recovery("cache.read", key)
        return nbytes

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return self.directory is not None and self._path(key).exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop the memory tier (disk entries are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def _store(self, key: str, value: Any) -> None:
        # caller holds the lock
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_get(self, key: str) -> Any:
        if self.directory is None:
            return _MISSING
        path = self._path(key)
        if not path.exists():
            return _MISSING
        injector = get_injector()
        if injector.enabled:
            try:
                # The injector may bit-flip the file (caught below by
                # the checksum) or raise a simulated I/O error.
                injector.fire("cache.read", key, path=path)
            except FaultInjectionError:
                return _MISSING  # this read fails; recompute heals it
        try:
            with np.load(path, allow_pickle=False) as data:
                manifest_json = str(data["__manifest__"][()])
                stored_digest = (
                    str(data["__checksum__"][()])
                    if "__checksum__" in data.files
                    else None  # pre-checksum entry: accept if parsable
                )
                arrays = {
                    name: data[name] for name in data.files
                    if name not in ("__manifest__", "__checksum__")
                }
            if stored_digest is not None and stored_digest != (
                _payload_digest(manifest_json, arrays)
            ):
                raise CacheError("checksum mismatch")
            return _decode(json.loads(manifest_json), arrays)
        except Exception as exc:  # noqa: BLE001 — any unreadable entry
            # is corruption by definition; a cache read must never
            # poison the run, so quarantine the file and recompute.
            self._quarantine(path, exc)
            return _MISSING

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a corrupt entry aside (``*.corrupt``) and meter it."""
        quarantined = path.with_suffix(".corrupt")
        try:
            path.replace(quarantined)
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced removal
                pass
        with self._lock:
            self.stats.corrupt_quarantined += 1
        get_metrics().counter("cache.corrupt_quarantined").inc()
        logger.warning(
            "quarantined corrupt cache entry %s (%s); will recompute",
            path, reason,
        )

    def _disk_put(self, key: str, value: Any) -> bool:
        if self.directory is None:
            return False
        arrays: Dict[str, np.ndarray] = {}
        manifest = _encode(value, arrays)
        if manifest is None:
            return False  # not expressible without pickle; memory-only
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(
                f"cache directory {str(self.directory)!r} is not "
                f"usable: {exc}"
            ) from exc
        path = self._path(key)
        manifest_json = json.dumps(manifest)
        # Unique temp name per writer + atomic os.replace: a truncated
        # or concurrent write can never surface as a stale/partial
        # entry under the real key.
        tmp = self.directory / (
            f".{key}.{os.getpid()}.{threading.get_ident()}.tmp.npz"
        )
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    __manifest__=np.asarray(manifest_json),
                    __checksum__=np.asarray(
                        _payload_digest(manifest_json, arrays)
                    ),
                    **arrays,
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        with self._lock:
            self.stats.disk_writes += 1
        return True

    # ------------------------------------------------------------------
    def disk_keys(self) -> List[str]:
        """Fingerprints currently persisted on disk."""
        if self.directory is None or not self.directory.exists():
            return []
        return sorted(
            p.stem for p in self.directory.glob("*.npz")
            if not p.name.startswith(".")  # in-flight temp files
        )
