"""Pluggable executors: one submit interface, three execution venues.

Every executor exposes ``submit(fn, *args, **kwargs) ->
concurrent.futures.Future``; the scheduler (and any other component
that wants parallelism, e.g. the MapReduce engine's map stage) only
talks to that interface, so swapping venues never changes semantics —
only where the work runs:

* :class:`InlineExecutor` — the calling thread.  Zero overhead, fully
  deterministic scheduling; the default for tiny graphs.
* :class:`ThreadExecutor` — a shared thread pool.  The right venue for
  GIL-releasing numpy/LAPACK work (SVDs, dense projections, batched
  RK4 steps) and for closures, which need no pickling.
* :class:`ProcessExecutor` — a process pool for pure-python,
  GIL-bound work.  Functions and arguments must be picklable
  (module-level functions, plain-data args).

Pools are created lazily so merely constructing a
:class:`~repro.runtime.scheduler.Runtime` never forks workers.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional

from ..exceptions import TaskGraphError
from ..faults.injector import get_injector


class Executor(ABC):
    """The minimal executor contract the runtime schedules onto."""

    #: Affinity label tasks use to request this executor.
    kind: str = "any"

    @abstractmethod
    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; returns a Future."""

    def _prepare(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Fault-injection hook at the ``executor.submit`` site (target
        = this executor's kind).  The decision is taken on the
        submitting thread, but the effect fires inside the returned
        callable — wherever the venue runs it — so a simulated worker
        crash travels through the future like any real failure."""
        injector = get_injector()
        if injector.enabled:
            return injector.wrap_callable("executor.submit", self.kind, fn)
        return fn

    def shutdown(self, wait: bool = True) -> None:
        """Release pooled workers (no-op for the inline executor)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


class InlineExecutor(Executor):
    """Run submitted work immediately on the calling thread."""

    kind = "inline"

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        fn = self._prepare(fn)
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            result = fn(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — future carries it
            future.set_exception(exc)
        else:
            future.set_result(result)
        return future


class _PooledExecutor(Executor):
    """Shared lazy-pool behaviour for thread/process executors."""

    def __init__(self, max_workers: int):
        max_workers = int(max_workers)
        if max_workers < 1:
            raise TaskGraphError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        self._pool: Optional[Any] = None
        self._lock = threading.Lock()

    def _make_pool(self) -> Any:
        raise NotImplementedError

    def _ensure_pool(self) -> Any:
        with self._lock:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        return self._ensure_pool().submit(self._prepare(fn), *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)


class ThreadExecutor(_PooledExecutor):
    """Thread-pool venue for GIL-releasing numeric work."""

    kind = "thread"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-runtime",
        )


class ProcessExecutor(_PooledExecutor):
    """Process-pool venue for GIL-bound work (picklable tasks only)."""

    kind = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)


def make_executor(kind: str, max_workers: int = 1) -> Executor:
    """Factory used by CLI flags: ``kind`` in inline/thread/process."""
    if kind == "inline":
        return InlineExecutor()
    if kind == "thread":
        return ThreadExecutor(max_workers)
    if kind == "process":
        return ProcessExecutor(max_workers)
    raise TaskGraphError(
        f"unknown executor kind {kind!r}; use 'inline', 'thread' or 'process'"
    )
