"""Per-task metrics and the roll-up report for one graph run.

The runtime's observability story mirrors the MapReduce engine's
:class:`~repro.distributed.mapreduce.TaskStats`: every task records
where it ran, how long it took (summed across retry attempts), whether
the cache served it, and how many bytes its result charged to the
cache — so a study driver can print exactly where the wall-clock and
the cache budget went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class TaskMetrics:
    """Accounting for one task of one graph run."""

    name: str
    executor: str = "inline"
    wall_seconds: float = 0.0
    attempts: int = 0
    cache_hit: bool = False
    cached: bool = False
    bytes_cached: int = 0
    error: Optional[str] = None
    #: ``time.perf_counter()`` at first submission (0.0 = never ran,
    #: e.g. a cache hit).  The observability bridge
    #: (:meth:`repro.observability.Tracer.ingest_report`) uses it to
    #: place the task span on the trace timeline.
    started_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class RuntimeReport:
    """Roll-up of one :class:`~repro.runtime.graph.TaskGraph` run."""

    tasks: List[TaskMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_executed(self) -> int:
        """Tasks whose function actually ran (cache misses + uncached)."""
        return sum(1 for t in self.tasks if not t.cache_hit)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.tasks if t.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Cacheable tasks that had to execute."""
        return sum(1 for t in self.tasks if t.cached and not t.cache_hit)

    @property
    def bytes_cached(self) -> int:
        return sum(t.bytes_cached for t in self.tasks)

    @property
    def total_wall_seconds(self) -> float:
        """Summed task compute time (not the elapsed wall-clock, which
        is lower when executors overlap tasks)."""
        return sum(t.wall_seconds for t in self.tasks)

    @property
    def total_attempts(self) -> int:
        return sum(t.attempts for t in self.tasks)

    def task(self, name: str) -> TaskMetrics:
        for metrics in self.tasks:
            if metrics.name == name:
                return metrics
        raise KeyError(f"no metrics recorded for task {name!r}")

    def merge(self, other: "RuntimeReport") -> None:
        """Fold another run's metrics into this report."""
        self.tasks.extend(other.tasks)

    def summary(self) -> Dict[str, Any]:
        return {
            "tasks": self.n_tasks,
            "executed": self.n_executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "bytes_cached": self.bytes_cached,
            "compute_seconds": self.total_wall_seconds,
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Plain-text table, one row per task plus a totals line."""
        headers = ["task", "executor", "seconds", "attempts", "cache", "bytes"]
        rows = []
        for t in self.tasks:
            cache = "hit" if t.cache_hit else ("miss" if t.cached else "-")
            if t.error is not None:
                cache = "error"
            rows.append(
                [
                    t.name,
                    t.executor,
                    f"{t.wall_seconds:.3f}",
                    str(t.attempts),
                    cache,
                    str(t.bytes_cached),
                ]
            )
        rows.append(
            [
                "TOTAL",
                "",
                f"{self.total_wall_seconds:.3f}",
                str(self.total_attempts),
                f"{self.cache_hits}h/{self.cache_misses}m",
                str(self.bytes_cached),
            ]
        )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines.extend(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows
        )
        return "\n".join(lines)
