"""Task graphs: named tasks, explicit dependencies, topological order.

A :class:`TaskGraph` is the declarative half of the runtime — it says
*what* must run and in which partial order, while the scheduler
(:mod:`repro.runtime.scheduler`) decides *where* (which executor) and
*whether* (cache hits skip execution entirely).

Dependencies come from two places and are merged:

* explicit ``deps=("other-task",)`` edges, and
* :class:`TaskOutput` placeholders inside ``args``/``kwargs`` — when a
  task lists ``output("truth")`` as an argument, the scheduler
  substitutes the finished value of task ``"truth"`` before calling
  the function (and adds the edge automatically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import TaskGraphError
from .retry import RetryPolicy

#: Executor affinities a task may declare.  ``"inline"`` runs on the
#: scheduling thread, ``"thread"`` suits GIL-releasing numpy/LAPACK
#: work, ``"process"`` suits pure-python / integrator-heavy work (the
#: function and its arguments must then be picklable), and ``"any"``
#: lets the scheduler pick its default.
AFFINITIES = ("any", "inline", "thread", "process")


@dataclass(frozen=True)
class TaskOutput:
    """Placeholder for another task's result inside ``args``/``kwargs``."""

    task_name: str


def output(task_name: str) -> TaskOutput:
    """Reference the (future) result of ``task_name`` as an argument."""
    return TaskOutput(task_name)


@dataclass
class Task:
    """One node of the graph.

    Attributes
    ----------
    name:
        Unique task id within the graph.
    fn:
        The callable; invoked as ``fn(*args, **kwargs)`` with every
        :class:`TaskOutput` placeholder replaced by the dependency's
        result.
    deps:
        Names of tasks that must finish first (union of explicit deps
        and placeholder references).
    affinity:
        Which executor kind the task prefers (see :data:`AFFINITIES`).
    cache_key:
        Hashable payload describing the task's inputs.  ``None``
        disables caching; otherwise the result is stored under a
        fingerprint of ``cache_scope`` + ``cache_key``.
    cache_scope:
        Stable namespace for the cache fingerprint (defaults to the
        task name — override when graph-unique names should share
        cache entries, e.g. ``"ground-truth"``).
    retry:
        Per-task retry/timeout policy (scheduler default when ``None``).
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    affinity: str = "any"
    cache_key: Optional[Any] = None
    cache_scope: Optional[str] = None
    retry: Optional[RetryPolicy] = None

    @property
    def cache_namespace(self) -> str:
        return self.cache_scope if self.cache_scope is not None else self.name

    def referenced_outputs(self) -> List[str]:
        """Task names referenced via placeholders in args/kwargs."""
        names = []
        for value in list(self.args) + list(self.kwargs.values()):
            if isinstance(value, TaskOutput):
                names.append(value.task_name)
        return names


class TaskGraph:
    """A DAG of named tasks with deterministic topological scheduling."""

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        fn: Callable[..., Any],
        *args: Any,
        deps: Sequence[str] = (),
        affinity: str = "any",
        cache_key: Optional[Any] = None,
        cache_scope: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        **kwargs: Any,
    ) -> str:
        """Add a task; returns its name (handy for chaining deps)."""
        if not name:
            raise TaskGraphError("task name must be non-empty")
        if name in self._tasks:
            raise TaskGraphError(f"duplicate task name {name!r}")
        if affinity not in AFFINITIES:
            raise TaskGraphError(
                f"task {name!r}: affinity must be one of {AFFINITIES}, "
                f"got {affinity!r}"
            )
        if not callable(fn):
            raise TaskGraphError(f"task {name!r}: fn must be callable")
        task = Task(
            name=name,
            fn=fn,
            args=tuple(args),
            kwargs=dict(kwargs),
            affinity=affinity,
            cache_key=cache_key,
            cache_scope=cache_scope,
            retry=retry,
        )
        merged = list(dict.fromkeys(list(deps) + task.referenced_outputs()))
        task.deps = tuple(merged)
        self._tasks[name] = task
        return name

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise TaskGraphError(f"unknown task {name!r}") from None

    @property
    def names(self) -> List[str]:
        """Task names in insertion order."""
        return list(self._tasks)

    def dependents(self) -> Mapping[str, List[str]]:
        """Reverse adjacency: task -> tasks that depend on it."""
        reverse: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                if dep in reverse:
                    reverse[dep].append(task.name)
        return reverse

    # ------------------------------------------------------------------
    # validation / ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`TaskGraphError` on unknown deps or cycles."""
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise TaskGraphError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
        self.topological_order()

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; insertion order breaks ties, so the order
        is deterministic for a given construction sequence."""
        indegree = {
            name: sum(1 for d in task.deps if d in self._tasks)
            for name, task in self._tasks.items()
        }
        reverse = self.dependents()
        ready = [name for name in self._tasks if indegree[name] == 0]
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for dependent in reverse[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._tasks):
            stuck = sorted(set(self._tasks) - set(order))
            raise TaskGraphError(
                f"task graph has a dependency cycle involving {stuck}"
            )
        return order
