"""The task-graph scheduler and the `Runtime` facade.

:class:`TaskGraphRunner` walks a :class:`~repro.runtime.graph.TaskGraph`
in dependency order, dispatching each ready task to the executor its
affinity requests, short-circuiting through the
:class:`~repro.runtime.cache.ResultCache` when a fingerprint matches,
and applying the task's :class:`~repro.runtime.retry.RetryPolicy` on
failure.  It fails fast: the first task that exhausts its attempts
aborts the run with a :class:`~repro.exceptions.RuntimeExecutionError`
naming the task.

:class:`Runtime` bundles a runner, a shared executor set and one cache
into the object the rest of the library passes around (``runtime=``
parameters, ``--workers`` / ``--cache-dir`` CLI flags).

Timeout semantics: thread/process attempts are abandoned once their
deadline passes (the worker cannot be force-killed, but its result is
discarded and the task is retried or failed); inline attempts can only
be measured after the fact, so their timeout is detected post-hoc.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ..exceptions import (
    RetryExhaustedError,
    RuntimeExecutionError,
    TaskFailedError,
    TaskGraphError,
    TaskTimeoutError,
)
from ..faults.injector import get_injector
from ..observability import get_metrics, get_tracer
from ..observability.distributed import (
    TelemetryEnvelope,
    TelemetryTask,
    current_trace_context,
    merge_snapshot,
)
from .cache import ResultCache, fingerprint
from .executors import Executor, InlineExecutor, ProcessExecutor, ThreadExecutor
from .graph import Task, TaskGraph, TaskOutput
from .report import RuntimeReport, TaskMetrics
from .retry import NO_RETRY, RetryPolicy

logger = logging.getLogger(__name__)


@dataclass
class RunOutcome:
    """Results plus metrics for one graph run."""

    results: Dict[str, Any]
    report: RuntimeReport

    def __getitem__(self, task_name: str) -> Any:
        return self.results[task_name]


@dataclass
class _Attempt:
    task: Task
    attempt: int
    started: float
    deadline: Optional[float]
    #: Wall clock at submission — maps a process-attempt's telemetry
    #: snapshot onto this tracer's timeline during the merge.
    dispatched_unix: float = 0.0


def _resolve(value: Any, results: Dict[str, Any]) -> Any:
    if isinstance(value, TaskOutput):
        return results[value.task_name]
    return value


class TaskGraphRunner:
    """Schedule a task graph onto a set of executors."""

    def __init__(
        self,
        executors: Optional[Dict[str, Executor]] = None,
        cache: Optional[ResultCache] = None,
        default_retry: Optional[RetryPolicy] = None,
        default_affinity: str = "inline",
    ):
        self.executors = dict(executors or {})
        self.executors.setdefault("inline", InlineExecutor())
        if default_affinity not in self.executors:
            raise TaskGraphError(
                f"default affinity {default_affinity!r} has no executor"
            )
        self.cache = cache
        self.default_retry = default_retry or NO_RETRY
        self.default_affinity = default_affinity

    # ------------------------------------------------------------------
    def _executor_for(self, task: Task) -> Executor:
        affinity = task.affinity
        if affinity == "any":
            affinity = self.default_affinity
        executor = self.executors.get(affinity)
        if executor is None:
            # Degrade gracefully: a runner configured without e.g. a
            # process pool still runs process-affine tasks inline.
            executor = self.executors[self.default_affinity]
        return executor

    def _policy_for(self, task: Task) -> RetryPolicy:
        return task.retry if task.retry is not None else self.default_retry

    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph) -> RunOutcome:
        """Execute the graph; returns results keyed by task name."""
        graph.validate()
        names = graph.names
        metrics = {name: TaskMetrics(name=name) for name in names}
        results: Dict[str, Any] = {}
        cache_keys: Dict[str, str] = {}
        reverse = graph.dependents()
        indegree = {name: len(graph.task(name).deps) for name in names}
        ready: List[str] = [name for name in names if indegree[name] == 0]
        running: Dict[Future, _Attempt] = {}
        abandoned: Set[Future] = set()

        def finish(name: str, value: Any) -> None:
            results[name] = value
            task = graph.task(name)
            m = metrics[name]
            if (
                self.cache is not None
                and task.cache_key is not None
                and not m.cache_hit
            ):
                m.bytes_cached = self.cache.put(cache_keys[name], value)
            for dependent in reverse[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)

        def submit(task: Task, attempt: int) -> None:
            policy = self._policy_for(task)
            executor = self._executor_for(task)
            m = metrics[task.name]
            m.executor = executor.kind
            m.attempts = attempt
            args = tuple(_resolve(a, results) for a in task.args)
            kwargs = {k: _resolve(v, results) for k, v in task.kwargs.items()}
            fn = task.fn
            injector = get_injector()
            if injector.enabled:
                # Fault-injection site "runtime.task" (target = task
                # name).  Decided here, per attempt, so a budgeted
                # fault fails attempt 1 and lets the retry succeed;
                # the effect fires on the task's executor so it flows
                # through the ordinary failure path.
                fn = injector.wrap_callable("runtime.task", task.name, fn)
            if get_tracer().enabled and executor.kind == "process":
                # A process-executor attempt records into its own
                # tracer domain; wrap it so the child's telemetry
                # rides home with the result (unwrapped on success
                # below).  Tracing off → no wrap, zero overhead.
                fn = TelemetryTask(
                    fn,
                    current_trace_context(f"dispatch:{task.name}"),
                    label=task.name,
                )
            if attempt == 1:
                m.started_at = time.perf_counter()
            started = time.monotonic()
            deadline = (
                started + policy.timeout_seconds
                if policy.timeout_seconds is not None
                else None
            )
            future = executor.submit(fn, *args, **kwargs)
            running[future] = _Attempt(
                task, attempt, started, deadline,
                dispatched_unix=time.time(),
            )

        def fail(task: Task, attempt: int, error: BaseException) -> None:
            policy = self._policy_for(task)
            if policy.should_retry(attempt, error):
                delay = policy.delay(attempt + 1, key=task.name)
                logger.debug(
                    "task %s attempt %d failed (%s); retrying in %.2fs",
                    task.name, attempt, error, delay,
                )
                if delay:
                    time.sleep(delay)
                submit(task, attempt + 1)
                return
            if isinstance(error, RuntimeExecutionError):
                wrapped: RuntimeExecutionError = (
                    RetryExhaustedError(task.name, attempt, error._message)
                    if policy.max_attempts > 1
                    else error
                )
            elif policy.max_attempts > 1:
                wrapped = RetryExhaustedError(task.name, attempt, str(error))
            else:
                wrapped = TaskFailedError(task.name, str(error))
            metrics[task.name].error = str(wrapped)
            raise wrapped from (
                error if not isinstance(error, RuntimeExecutionError) else None
            )

        def launch(name: str) -> None:
            task = graph.task(name)
            m = metrics[name]
            if self.cache is not None and task.cache_key is not None:
                m.cached = True
                key = fingerprint(task.cache_namespace, task.cache_key)
                cache_keys[name] = key
                hit, value = self.cache.get(key)
                if hit:
                    m.cache_hit = True
                    m.executor = "cache"
                    finish(name, value)
                    return
            submit(task, attempt=1)

        try:
            while ready or running:
                while ready:
                    launch(ready.pop(0))
                if not running:
                    continue
                now = time.monotonic()
                deadlines = [
                    a.deadline - now
                    for a in running.values()
                    if a.deadline is not None
                ]
                wait_timeout = max(0.0, min(deadlines)) if deadlines else None
                done, _pending = futures_wait(
                    set(running), timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future in done:
                    attempt_info = running.pop(future)
                    task = attempt_info.task
                    m = metrics[task.name]
                    elapsed = now - attempt_info.started
                    m.wall_seconds += elapsed
                    error = future.exception()
                    if error is None:
                        policy = self._policy_for(task)
                        if (
                            policy.timeout_seconds is not None
                            and elapsed > policy.timeout_seconds
                            and isinstance(
                                self._executor_for(task), InlineExecutor
                            )
                        ):
                            # inline attempts cannot be pre-empted; the
                            # overrun is only detectable after the call.
                            fail(
                                task,
                                attempt_info.attempt,
                                TaskTimeoutError(
                                    task.name,
                                    f"attempt {attempt_info.attempt} took "
                                    f"{elapsed:.3f}s (budget "
                                    f"{policy.timeout_seconds}s)",
                                ),
                            )
                        else:
                            if attempt_info.attempt > 1:
                                # A retry healed the task: credit the
                                # fault accounting (no-op unless an
                                # injected fault is pending for it).
                                get_injector().note_recovery(
                                    "runtime.task", task.name
                                )
                            value = future.result()
                            if isinstance(value, TelemetryEnvelope):
                                tracer = get_tracer()
                                dispatch = None
                                if tracer.enabled:
                                    dispatch = tracer.record_span(
                                        f"dispatch:{task.name}",
                                        "runtime-task",
                                        wall_seconds=elapsed,
                                        worker=m.executor,
                                    )
                                merge_snapshot(
                                    value.snapshot,
                                    parent_span=dispatch,
                                    tracer=tracer,
                                    dispatched_unix=(
                                        attempt_info.dispatched_unix
                                    ),
                                )
                                value = value.value
                            finish(task.name, value)
                    else:
                        fail(task, attempt_info.attempt, error)
                # expire attempts whose deadline passed without a result
                for future in [
                    f
                    for f, a in running.items()
                    if a.deadline is not None and now >= a.deadline
                ]:
                    attempt_info = running.pop(future)
                    future.cancel()
                    abandoned.add(future)
                    task = attempt_info.task
                    m = metrics[task.name]
                    m.wall_seconds += now - attempt_info.started
                    fail(
                        task,
                        attempt_info.attempt,
                        TaskTimeoutError(
                            task.name,
                            f"attempt {attempt_info.attempt} exceeded "
                            f"{self._policy_for(task).timeout_seconds}s",
                        ),
                    )
        except BaseException:
            for future in running:
                future.cancel()
            raise

        report = RuntimeReport(tasks=[metrics[name] for name in names])
        return RunOutcome(results=results, report=report)


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
class Runtime:
    """One cache + one executor set + one runner: the object the rest
    of the library threads through (``runtime=`` parameters and the
    ``--workers`` / ``--cache-dir`` CLI flags).

    Parameters
    ----------
    workers:
        Pool width for the thread and process executors.  ``1`` keeps
        graph execution inline (deterministic scheduling, zero pool
        overhead) while still honouring explicit thread/process
        affinities with single-worker pools.
    cache_dir:
        Directory for the content-addressed ``.npz`` cache tier;
        ``None`` keeps results memory-only.
    cache_entries:
        Memory-tier LRU capacity.
    default_retry:
        Retry policy for tasks that do not declare their own.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        cache_entries: int = 128,
        default_retry: Optional[RetryPolicy] = None,
    ):
        workers = int(workers)
        if workers < 1:
            raise TaskGraphError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = ResultCache(
            max_entries=cache_entries, directory=cache_dir
        )
        self.executors: Dict[str, Executor] = {
            "inline": InlineExecutor(),
            "thread": ThreadExecutor(workers),
            "process": ProcessExecutor(workers),
        }
        self._runner = TaskGraphRunner(
            executors=self.executors,
            cache=self.cache,
            default_retry=default_retry,
            default_affinity="inline" if workers == 1 else "thread",
        )
        #: Metrics accumulated across every run of this runtime.
        self.report = RuntimeReport()

    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph) -> RunOutcome:
        """Run a graph; metrics also accumulate on ``self.report``.

        When tracing is active the run's :class:`TaskMetrics` are
        bridged into the trace as ``runtime-task`` spans, and the
        cache counters tick on the process metrics registry — task
        execution itself is never touched.
        """
        outcome = self._runner.run(graph)
        self.report.merge(outcome.report)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.ingest_report(outcome.report)
        metrics = get_metrics()
        metrics.counter("runtime.tasks").inc(outcome.report.n_tasks)
        metrics.counter("runtime.cache_hits").inc(outcome.report.cache_hits)
        metrics.counter("runtime.cache_misses").inc(
            outcome.report.cache_misses
        )
        return outcome

    def call(
        self,
        name: str,
        fn: Any,
        *args: Any,
        cache_key: Optional[Any] = None,
        cache_scope: Optional[str] = None,
        affinity: str = "any",
        retry: Optional[RetryPolicy] = None,
        **kwargs: Any,
    ) -> Any:
        """Run one function as a single-task graph (with caching)."""
        graph = TaskGraph()
        graph.add(
            name,
            fn,
            *args,
            affinity=affinity,
            cache_key=cache_key,
            cache_scope=cache_scope,
            retry=retry,
            **kwargs,
        )
        return self.run(graph).results[name]

    def executor(self, kind: str) -> Executor:
        """The shared executor of a given kind (inline/thread/process)."""
        try:
            return self.executors[kind]
        except KeyError:
            raise TaskGraphError(f"no executor of kind {kind!r}") from None

    def shutdown(self, wait: bool = True) -> None:
        for executor in self.executors.values():
            executor.shutdown(wait=wait)

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# process-wide shared runtime
# ----------------------------------------------------------------------
_session_runtime: Optional[Runtime] = None


def session_runtime() -> Runtime:
    """The process-wide shared :class:`Runtime` (lazily created).

    Examples and benchmarks route ground-truth construction through
    this instance so each (system, resolution) tensor is built once
    per session.  Environment overrides: ``M2TD_WORKERS`` sets the
    pool width, ``M2TD_CACHE_DIR`` adds the on-disk cache tier (and
    thereby sharing across processes).
    """
    global _session_runtime
    if _session_runtime is None:
        try:
            workers = max(1, int(os.environ.get("M2TD_WORKERS", "1")))
        except ValueError:
            workers = 1
        _session_runtime = Runtime(
            workers=workers,
            cache_dir=os.environ.get("M2TD_CACHE_DIR") or None,
        )
    return _session_runtime


def reset_session_runtime() -> None:
    """Drop the shared runtime (tests use this for isolation)."""
    global _session_runtime
    if _session_runtime is not None:
        _session_runtime.shutdown()
    _session_runtime = None
