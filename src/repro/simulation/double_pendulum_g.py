"""The intro's 5-parameter double pendulum: gravity as a parameter.

Paper Figure 2 motivates the whole problem with a double equal-length
pendulum whose *five* controllable parameters are the two initial
angles, the two bob weights, and gravity ``g`` — leading to the
``20^5`` simulation-space explosion of Section I-B.  The evaluation
then freezes gravity; this subclass keeps it free, giving a 6-mode
ensemble tensor ``(phi1, m1, phi2, m2, g, t)``.

With six modes the PF-partitioning generalizes beyond the evaluated
``k = 1``: two pivots (say ``g`` and ``t``) leave four free modes to
split 2 + 2 — the multi-pivot regime exercised by
``examples/five_parameter_pendulum.py`` and the k-sweep experiment.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .double_pendulum import DoublePendulum
from .systems import ParameterDef


class DoublePendulumG(DoublePendulum):
    """Double pendulum with gravity as the fifth simulation parameter."""

    name = "double_pendulum_g"

    def __init__(self, length: float = 1.0):
        super().__init__(gravity=9.81, length=length)
        self._parameters = (
            ParameterDef("phi1", low=0.1, high=2.0, default=1.0),
            ParameterDef("m1", low=0.5, high=3.0, default=1.0),
            ParameterDef("phi2", low=0.1, high=2.0, default=1.0),
            ParameterDef("m2", low=0.5, high=3.0, default=1.0),
            ParameterDef("g", low=3.0, high=15.0, default=9.81),
        )

    @property
    def parameters(self) -> Tuple[ParameterDef, ...]:
        return self._parameters

    def derivative(self, params: Dict[str, float]):
        # Reuse the parent's closed-form RHS with per-run gravity.
        bound = DoublePendulum(
            gravity=float(params["g"]), length=self.length
        )
        return bound.derivative(params)

    def batch_derivative(self, params: Dict[str, np.ndarray]):
        m1 = np.asarray(params["m1"], dtype=np.float64)
        m2 = np.asarray(params["m2"], dtype=np.float64)
        g = np.asarray(params["g"], dtype=np.float64)
        length = self.length

        def deriv(_t: float, states: np.ndarray) -> np.ndarray:
            theta1 = states[:, 0]
            omega1 = states[:, 1]
            theta2 = states[:, 2]
            omega2 = states[:, 3]
            delta = theta1 - theta2
            cos_d = np.cos(delta)
            sin_d = np.sin(delta)
            denom = length * (2 * m1 + m2 - m2 * np.cos(2 * delta))
            alpha1 = (
                -g * (2 * m1 + m2) * np.sin(theta1)
                - m2 * g * np.sin(theta1 - 2 * theta2)
                - 2
                * sin_d
                * m2
                * (omega2**2 * length + omega1**2 * length * cos_d)
            ) / denom
            alpha2 = (
                2
                * sin_d
                * (
                    omega1**2 * length * (m1 + m2)
                    + g * (m1 + m2) * np.cos(theta1)
                    + omega2**2 * length * m2 * cos_d
                )
            ) / denom
            return np.stack([omega1, alpha1, omega2, alpha2], axis=1)

        return deriv
