"""Ensemble construction: from parameter-index selections to tensors.

Two cost vocabularies from the paper coexist here and must not be
conflated:

* a **simulation run** executes one parameter combination and yields
  the *entire time fiber* of the ensemble tensor (the paper's
  "2 x 70^2 simulations in just 46 seconds");
* a **cell** (the paper's "simulation instance" when counting budgets)
  is one ``(parameters, timestamp)`` entry of the tensor — the
  simulation budget ``B`` counts cells.

:class:`SimulationMeter` tracks both.  The ground-truth tensor ``Y``
for accuracy evaluation is built once per (system, resolution) via
:func:`full_space_tensor` using the batched integrator, and samplers
then read their cells out of it — equivalent to running each selected
simulation individually, at a fraction of the wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import SimulationError
from ..observability import get_metrics, span as _span
from ..tensor.sparse import SparseTensor
from .integrators import rk4_sampled
from .observation import Observation
from .parameter_space import ParameterSpace


@dataclass
class SimulationMeter:
    """Accounting of simulation effort for one experiment.

    Attributes
    ----------
    runs:
        Distinct parameter combinations integrated.
    cells:
        Tensor cells filled (the paper's budget unit).
    wall_seconds:
        Time spent inside the integrator.
    """

    runs: int = 0
    cells: int = 0
    wall_seconds: float = 0.0

    def charge(self, runs: int, cells: int, wall_seconds: float) -> None:
        self.runs += int(runs)
        self.cells += int(cells)
        self.wall_seconds += float(wall_seconds)

    def merge(self, other: "SimulationMeter") -> None:
        self.charge(other.runs, other.cells, other.wall_seconds)


def simulate_fibers(
    space: ParameterSpace,
    observation: Observation,
    param_indices: np.ndarray,
    meter: Optional[SimulationMeter] = None,
) -> np.ndarray:
    """Distances for a batch of parameter combinations.

    Parameters
    ----------
    space:
        The discretized simulation space.
    observation:
        The reference configuration distances are measured against.
    param_indices:
        Integer array of shape ``(B, n_params)``; one row per
        simulation run.
    meter:
        Optional accounting sink (charged ``B`` runs and ``B * T``
        cells).

    Returns
    -------
    numpy.ndarray
        Distance fibers of shape ``(B, time_resolution)``.
    """
    param_indices = np.asarray(param_indices, dtype=np.int64)
    if param_indices.ndim != 2 or param_indices.shape[1] != space.n_param_modes:
        raise SimulationError(
            f"param_indices must have shape (B, {space.n_param_modes}), "
            f"got {param_indices.shape}"
        )
    system = space.system
    params = space.batch_param_values(param_indices)
    started = time.perf_counter()
    with _span(
        "simulate-fibers", "simulate",
        system=system.name, batch=param_indices.shape[0],
    ):
        deriv = system.batch_derivative(params)
        y0 = system.batch_initial_state(params)
        sampled = rk4_sampled(
            deriv, y0, 0.0, system.t_end, system.n_steps, space.time_indices
        )
    elapsed = time.perf_counter() - started
    distances = observation.distances(sampled)  # (T, B)
    metrics = get_metrics()
    metrics.counter("simulate.runs").inc(param_indices.shape[0])
    metrics.counter("simulate.cells").inc(
        param_indices.shape[0] * space.time_resolution
    )
    if meter is not None:
        meter.charge(
            runs=param_indices.shape[0],
            cells=param_indices.shape[0] * space.time_resolution,
            wall_seconds=elapsed,
        )
    return distances.T


def full_space_tensor(
    space: ParameterSpace,
    observation: Observation,
    chunk_size: int = 4096,
    meter: Optional[SimulationMeter] = None,
) -> np.ndarray:
    """The complete ground-truth tensor ``Y`` (paper Section III-C).

    Every parameter combination is simulated (in batched chunks) and
    the per-timestamp distances to the observation fill a dense tensor
    of shape ``space.shape``.
    """
    if chunk_size < 1:
        raise SimulationError(f"chunk_size must be >= 1, got {chunk_size}")
    n_params = space.n_param_modes
    resolution = space.resolution
    total = space.n_simulations_full
    with _span(
        "full-space-tensor", "simulate",
        system=space.system.name, shape=space.shape, runs=total,
    ):
        tensor = np.empty(space.shape, dtype=np.float64)
        flat_view = tensor.reshape(total, space.time_resolution)
        all_indices = np.stack(
            np.unravel_index(np.arange(total), (resolution,) * n_params),
            axis=1,
        )
        for start in range(0, total, chunk_size):
            block = all_indices[start : start + chunk_size]
            flat_view[start : start + block.shape[0]] = simulate_fibers(
                space, observation, block, meter=meter
            )
        return tensor


def ensemble_from_truth(
    truth: np.ndarray,
    space: ParameterSpace,
    coords: np.ndarray,
    meter: Optional[SimulationMeter] = None,
) -> SparseTensor:
    """Sparse ensemble tensor for selected cells, read from ``Y``.

    ``coords`` is an ``(nnz, n_modes)`` cell coordinate array (full
    tensor coordinates, time mode included).  The meter — when given —
    is charged the number of *distinct parameter combinations* as runs
    and ``nnz`` as cells, mirroring what executing exactly these
    simulations would have cost.
    """
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != space.n_modes:
        raise SimulationError(
            f"coords must have shape (nnz, {space.n_modes}), got {coords.shape}"
        )
    if truth.shape != space.shape:
        raise SimulationError(
            f"truth shape {truth.shape} != space shape {space.shape}"
        )
    values = truth[tuple(coords.T)]
    if meter is not None:
        param_part = coords[:, : space.n_param_modes]
        distinct_runs = np.unique(param_part, axis=0).shape[0] if coords.size else 0
        meter.charge(runs=distinct_runs, cells=coords.shape[0], wall_seconds=0.0)
    return SparseTensor(space.shape, coords, values)
