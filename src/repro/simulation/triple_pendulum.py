"""The triple pendulum with variable friction (Section VII-A).

Simulation parameters match the paper: the three initial angles
``phi1``/``phi2``/``phi3`` and the friction coefficient ``f`` of the
whole system ("unlike the double pendulum system, in the triple
pendulum system the friction is considered as a simulation
parameter").

The equations of motion use the standard n-link point-mass chain
formulation: with equal rod lengths ``L`` and masses ``m_k``,

    A(θ) θ̈ = b(θ, θ̇) - f θ̇

with ``A[i, j] = (Σ_{k ≥ max(i, j)} m_k) L cos(θ_i - θ_j)`` and
``b[i] = -Σ_j (Σ_{k ≥ max(i, j)} m_k) L θ̇_j² sin(θ_i - θ_j)
- g (Σ_{k ≥ i} m_k) sin θ_i``.  The same routine with ``n = 2`` is used
in tests to cross-check the closed-form double-pendulum derivative.

State vector: ``(theta1, theta2, theta3, omega1, omega2, omega3)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from .systems import DynamicalSystem, ParameterDef


def chain_pendulum_derivative(
    masses: Sequence[float],
    length: float,
    gravity: float,
    friction: float,
) -> Callable[[float, np.ndarray], np.ndarray]:
    """Right-hand side for an n-link equal-length pendulum chain.

    The state is ``(theta_1..theta_n, omega_1..omega_n)``.  Friction is
    viscous damping applied per joint velocity.
    """
    masses = np.asarray(masses, dtype=np.float64)
    n = masses.shape[0]
    # tail_mass[i] = sum of masses at or below link i.
    tail_mass = np.cumsum(masses[::-1])[::-1]
    # coupling[i, j] = sum_{k >= max(i, j)} m_k
    coupling = np.minimum.outer(tail_mass, tail_mass)

    def deriv(_t: float, state: np.ndarray) -> np.ndarray:
        theta = state[:n]
        omega = state[n:]
        diff = theta[:, None] - theta[None, :]
        mass_matrix = coupling * length * np.cos(diff)
        rhs = (
            -(coupling * length * np.sin(diff)) @ (omega**2)
            - gravity * tail_mass * np.sin(theta)
            - friction * omega
        )
        alpha = np.linalg.solve(mass_matrix, rhs)
        return np.concatenate([omega, alpha])

    return deriv


class TriplePendulum(DynamicalSystem):
    """Three equal-length, equal-mass pendulums with viscous friction."""

    name = "triple_pendulum"
    # See DoublePendulum: horizon chosen inside the coherent regime.
    t_end = 6.0
    n_steps = 200

    def __init__(
        self,
        gravity: float = 9.81,
        length: float = 1.0,
        mass: float = 1.0,
    ):
        self.gravity = float(gravity)
        self.length = float(length)
        self.mass = float(mass)
        self._parameters = (
            ParameterDef("phi1", low=0.1, high=2.0, default=1.0),
            ParameterDef("phi2", low=0.1, high=2.0, default=1.0),
            ParameterDef("phi3", low=0.1, high=2.0, default=1.0),
            ParameterDef("f", low=0.0, high=1.0, default=0.2),
        )

    @property
    def parameters(self) -> Tuple[ParameterDef, ...]:
        return self._parameters

    def initial_state(self, params: Dict[str, float]) -> np.ndarray:
        return np.array(
            [params["phi1"], params["phi2"], params["phi3"], 0.0, 0.0, 0.0]
        )

    def derivative(
        self, params: Dict[str, float]
    ) -> Callable[[float, np.ndarray], np.ndarray]:
        return chain_pendulum_derivative(
            masses=[self.mass] * 3,
            length=self.length,
            gravity=self.gravity,
            friction=float(params["f"]),
        )

    def batch_initial_state(self, params: Dict[str, np.ndarray]) -> np.ndarray:
        phi1 = np.asarray(params["phi1"], dtype=np.float64)
        phi2 = np.asarray(params["phi2"], dtype=np.float64)
        phi3 = np.asarray(params["phi3"], dtype=np.float64)
        zeros = np.zeros_like(phi1)
        return np.stack([phi1, phi2, phi3, zeros, zeros, zeros], axis=1)

    def batch_derivative(self, params: Dict[str, np.ndarray]):
        friction = np.asarray(params["f"], dtype=np.float64)
        masses = np.full(3, self.mass)
        tail_mass = np.cumsum(masses[::-1])[::-1]
        coupling = np.minimum.outer(tail_mass, tail_mass)
        g = self.gravity
        length = self.length

        def deriv(_t: float, states: np.ndarray) -> np.ndarray:
            theta = states[:, :3]
            omega = states[:, 3:]
            # diff[b, i, j] = theta_i - theta_j for batch element b.
            diff = theta[:, :, None] - theta[:, None, :]
            mass_matrix = coupling[None, :, :] * length * np.cos(diff)
            rhs = (
                -np.einsum(
                    "ij,bij,bj->bi",
                    coupling * length,
                    np.sin(diff),
                    omega**2,
                )
                - g * tail_mass[None, :] * np.sin(theta)
                - friction[:, None] * omega
            )
            alpha = np.linalg.solve(mass_matrix, rhs[..., None])[..., 0]
            return np.concatenate([omega, alpha], axis=1)

        return deriv
