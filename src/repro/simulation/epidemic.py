"""An SEIR epidemic-spread model (the paper's motivating domain).

Section I opens with epidemic simulation (STEM [6]) as the canonical
ensemble use case: experts sweep transmission/recovery parameters and
intervention scenarios, then need the ensemble's broad patterns.  This
module supplies a compartmental SEIR system so the library's pipeline
can be exercised on the paper's own motivating application (see
``examples/epidemic_study.py``).

Compartments (fractions of the population): susceptible ``S``,
exposed ``E``, infectious ``I``, recovered ``R``:

    dS/dt = -beta * S * I
    dE/dt =  beta * S * I - sigma * E
    dI/dt =  sigma * E - gamma * I
    dR/dt =  gamma * I

Simulation parameters: the transmission rate ``beta``, the incubation
rate ``sigma``, the recovery rate ``gamma``, and the initially
infectious fraction ``i0``.  The basic reproduction number is
``R0 = beta / gamma``; the default ranges straddle ``R0 = 1``, so
ensembles contain both fizzling and epidemic trajectories.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from .systems import DynamicalSystem, ParameterDef


class EpidemicSEIR(DynamicalSystem):
    """SEIR compartmental epidemic model.

    State vector: ``(S, E, I, R)`` as population fractions.
    """

    name = "epidemic_seir"
    t_end = 60.0  # days
    n_steps = 300

    def __init__(self, e0: float = 0.0):
        #: Initially exposed fraction (on top of the i0 parameter).
        self.e0 = float(e0)
        self._parameters = (
            ParameterDef("beta", low=0.1, high=0.8, default=0.4),
            ParameterDef("sigma", low=0.1, high=0.5, default=0.2),
            ParameterDef("gamma", low=0.05, high=0.4, default=0.15),
            ParameterDef("i0", low=0.001, high=0.05, default=0.01),
        )

    @property
    def parameters(self) -> Tuple[ParameterDef, ...]:
        return self._parameters

    def initial_state(self, params: Dict[str, float]) -> np.ndarray:
        i0 = float(params["i0"])
        s0 = max(0.0, 1.0 - i0 - self.e0)
        return np.array([s0, self.e0, i0, 0.0])

    def derivative(
        self, params: Dict[str, float]
    ) -> Callable[[float, np.ndarray], np.ndarray]:
        beta = float(params["beta"])
        sigma = float(params["sigma"])
        gamma = float(params["gamma"])

        def deriv(_t: float, state: np.ndarray) -> np.ndarray:
            s, e, i, _r = state
            new_infections = beta * s * i
            return np.array(
                [
                    -new_infections,
                    new_infections - sigma * e,
                    sigma * e - gamma * i,
                    gamma * i,
                ]
            )

        return deriv

    def batch_initial_state(self, params: Dict[str, np.ndarray]) -> np.ndarray:
        i0 = np.asarray(params["i0"], dtype=np.float64)
        s0 = np.clip(1.0 - i0 - self.e0, 0.0, None)
        e0 = np.full_like(i0, self.e0)
        return np.stack([s0, e0, i0, np.zeros_like(i0)], axis=1)

    def batch_derivative(self, params: Dict[str, np.ndarray]):
        beta = np.asarray(params["beta"], dtype=np.float64)
        sigma = np.asarray(params["sigma"], dtype=np.float64)
        gamma = np.asarray(params["gamma"], dtype=np.float64)

        def deriv(_t: float, states: np.ndarray) -> np.ndarray:
            s = states[:, 0]
            e = states[:, 1]
            i = states[:, 2]
            new_infections = beta * s * i
            return np.stack(
                [
                    -new_infections,
                    new_infections - sigma * e,
                    sigma * e - gamma * i,
                    gamma * i,
                ],
                axis=1,
            )

        return deriv

    def basic_reproduction_number(self, params: Dict[str, float]) -> float:
        """``R0 = beta / gamma`` — epidemic threshold at 1."""
        return float(params["beta"]) / float(params["gamma"])
