"""Discretized parameter spaces: from a dynamical system to tensor modes.

The ensemble tensor of a system with ``N`` simulation parameters has
``N + 1`` modes: one per parameter (each discretized to ``resolution``
equally spaced values over its plausible range) plus a trailing *time*
mode (``resolution`` samples read off each trajectory).  This module
owns the index <-> value mapping for those modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Sequence, Tuple

import numpy as np

from ..exceptions import ModeError, SimulationError
from .systems import DynamicalSystem

#: Name used for the trailing time mode in reports and pivot selection.
TIME_MODE = "t"


@dataclass
class ParameterSpace:
    """The discretized simulation space of one dynamical system.

    Parameters
    ----------
    system:
        The dynamical system being studied.
    resolution:
        Number of distinct values per parameter mode (the paper sweeps
        60-80; the scaled harness uses 8-14).
    time_resolution:
        Number of time samples (defaults to ``resolution``, giving the
        paper's uniform ``R^5`` simulation space).
    """

    system: DynamicalSystem
    resolution: int
    time_resolution: int = None  # type: ignore[assignment]
    _grids: Tuple[np.ndarray, ...] = field(init=False, repr=False)
    _time_indices: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.resolution < 2:
            raise SimulationError(
                f"resolution must be >= 2, got {self.resolution}"
            )
        if self.time_resolution is None:
            self.time_resolution = self.resolution
        if self.time_resolution < 2:
            raise SimulationError(
                f"time_resolution must be >= 2, got {self.time_resolution}"
            )
        self._grids = tuple(
            p.grid(self.resolution) for p in self.system.parameters
        )
        self._time_indices = self.system.time_grid(self.time_resolution)

    # ------------------------------------------------------------------
    # mode geometry
    # ------------------------------------------------------------------
    @property
    def n_param_modes(self) -> int:
        return self.system.n_parameters

    @property
    def n_modes(self) -> int:
        """Parameter modes plus the time mode."""
        return self.n_param_modes + 1

    @property
    def time_mode(self) -> int:
        """Index of the time mode (always the last mode)."""
        return self.n_param_modes

    @property
    def shape(self) -> Tuple[int, ...]:
        return (self.resolution,) * self.n_param_modes + (self.time_resolution,)

    @property
    def mode_names(self) -> Tuple[str, ...]:
        return self.system.parameter_names + (TIME_MODE,)

    def mode_index(self, name: str) -> int:
        """Mode index of a parameter (or time) by name."""
        try:
            return self.mode_names.index(name)
        except ValueError:
            raise ModeError(
                f"unknown mode {name!r}; valid modes: {self.mode_names}"
            ) from None

    @property
    def n_simulations_full(self) -> int:
        """Simulation *runs* needed to fill the whole space.

        One run fills an entire time fiber, so this is the number of
        parameter-index combinations, ``resolution ** n_params``.
        """
        return self.resolution**self.n_param_modes

    @property
    def n_cells_full(self) -> int:
        return int(np.prod(self.shape))

    # ------------------------------------------------------------------
    # index <-> value mapping
    # ------------------------------------------------------------------
    def grid(self, mode: int) -> np.ndarray:
        """The value grid of a parameter mode."""
        if not 0 <= mode < self.n_param_modes:
            raise ModeError(
                f"mode {mode} is not a parameter mode "
                f"(parameter modes are 0..{self.n_param_modes - 1})"
            )
        return self._grids[mode]

    @property
    def time_indices(self) -> np.ndarray:
        """Trajectory-step index of each time-mode sample."""
        return self._time_indices

    def params_from_indices(self, indices: Sequence[int]) -> Dict[str, float]:
        """Map parameter-mode indices to a concrete parameter dict."""
        if len(indices) != self.n_param_modes:
            raise ModeError(
                f"need {self.n_param_modes} parameter indices, got {len(indices)}"
            )
        return {
            name: float(self._grids[mode][int(index)])
            for mode, (name, index) in enumerate(
                zip(self.system.parameter_names, indices)
            )
        }

    def param_index_combinations(self) -> Iterator[Tuple[int, ...]]:
        """Iterate all parameter-index combinations (C order)."""
        return (
            tuple(combo)
            for combo in np.ndindex(*(self.resolution,) * self.n_param_modes)
        )

    def batch_param_values(self, index_array: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorized :meth:`params_from_indices` for a ``(B, n_params)``
        integer index array — used by the batched simulator."""
        index_array = np.asarray(index_array, dtype=np.int64)
        if index_array.ndim != 2 or index_array.shape[1] != self.n_param_modes:
            raise ModeError(
                f"expected a (B, {self.n_param_modes}) index array, "
                f"got shape {index_array.shape}"
            )
        return {
            name: self._grids[mode][index_array[:, mode]]
            for mode, name in enumerate(self.system.parameter_names)
        }
