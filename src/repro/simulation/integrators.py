"""Fixed- and adaptive-step ODE integrators.

The paper obtains its pendulum/Lorenz trajectories from MATLAB codes;
we integrate the same equations of motion ourselves.  A classical
fixed-step RK4 is the default (deterministic cost per simulation, which
the budget accounting relies on); explicit Euler exists as a cheap
baseline, and an adaptive RK45 (Dormand-Prince) is provided for
accuracy checks in tests.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..exceptions import SimulationError

Derivative = Callable[[float, np.ndarray], np.ndarray]


def _check_times(t0: float, t1: float, n_steps: int) -> None:
    if n_steps < 1:
        raise SimulationError(f"n_steps must be >= 1, got {n_steps}")
    if not t1 > t0:
        raise SimulationError(f"need t1 > t0, got t0={t0}, t1={t1}")


def euler(
    deriv: Derivative, y0: np.ndarray, t0: float, t1: float, n_steps: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Explicit Euler. Returns ``(times, states)`` with
    ``states.shape == (n_steps + 1, len(y0))``."""
    _check_times(t0, t1, n_steps)
    y0 = np.asarray(y0, dtype=np.float64)
    times = np.linspace(t0, t1, n_steps + 1)
    states = np.empty((n_steps + 1, y0.shape[0]))
    states[0] = y0
    h = (t1 - t0) / n_steps
    for i in range(n_steps):
        states[i + 1] = states[i] + h * deriv(times[i], states[i])
    _check_finite(states)
    return times, states


def rk4(
    deriv: Derivative, y0: np.ndarray, t0: float, t1: float, n_steps: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Classical 4th-order Runge-Kutta with ``n_steps`` uniform steps."""
    _check_times(t0, t1, n_steps)
    y0 = np.asarray(y0, dtype=np.float64)
    times = np.linspace(t0, t1, n_steps + 1)
    states = np.empty((n_steps + 1, y0.shape[0]))
    states[0] = y0
    h = (t1 - t0) / n_steps
    for i in range(n_steps):
        t, y = times[i], states[i]
        k1 = deriv(t, y)
        k2 = deriv(t + 0.5 * h, y + 0.5 * h * k1)
        k3 = deriv(t + 0.5 * h, y + 0.5 * h * k2)
        k4 = deriv(t + h, y + h * k3)
        states[i + 1] = y + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
    _check_finite(states)
    return times, states


# Dormand-Prince 5(4) Butcher tableau.
_DP_A = (
    (),
    (1 / 5,),
    (3 / 40, 9 / 40),
    (44 / 45, -56 / 15, 32 / 9),
    (19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729),
    (9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656),
    (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84),
)
_DP_C = (0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0)
_DP_B5 = (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0)
_DP_B4 = (
    5179 / 57600,
    0.0,
    7571 / 16695,
    393 / 640,
    -92097 / 339200,
    187 / 2100,
    1 / 40,
)


def rk45(
    deriv: Derivative,
    y0: np.ndarray,
    t0: float,
    t1: float,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    max_steps: int = 100_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Adaptive Dormand-Prince RK45.

    Returns the accepted ``(times, states)`` sequence, always including
    ``t0`` and ``t1``.  Used in tests as a high-accuracy reference for
    the fixed-step integrators, not in the experiment hot path.
    """
    _check_times(t0, t1, 1)
    y = np.asarray(y0, dtype=np.float64)
    t = float(t0)
    h = (t1 - t0) / 100.0
    times = [t]
    states = [y.copy()]
    for _step in range(max_steps):
        if t >= t1:
            break
        h = min(h, t1 - t)
        ks = []
        for stage in range(7):
            yi = y.copy()
            for j, a in enumerate(_DP_A[stage]):
                yi += h * a * ks[j]
            ks.append(deriv(t + _DP_C[stage] * h, yi))
        y5 = y + h * sum(b * k for b, k in zip(_DP_B5, ks))
        y4 = y + h * sum(b * k for b, k in zip(_DP_B4, ks))
        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
        error = np.sqrt(np.mean(((y5 - y4) / scale) ** 2))
        if error <= 1.0 or h <= 1e-14 * (t1 - t0):
            t += h
            y = y5
            times.append(t)
            states.append(y.copy())
        factor = 0.9 * (1.0 / error) ** 0.2 if error > 0 else 5.0
        h *= min(5.0, max(0.2, factor))
    else:
        raise SimulationError("rk45 exceeded max_steps before reaching t1")
    result = np.asarray(states)
    _check_finite(result)
    return np.asarray(times), result


def rk4_sampled(
    deriv: Derivative,
    y0: np.ndarray,
    t0: float,
    t1: float,
    n_steps: int,
    sample_steps: np.ndarray,
) -> np.ndarray:
    """RK4 over a *batch* of initial states, recording selected steps.

    Parameters
    ----------
    deriv:
        Right-hand side operating on the full state array (any shape
        whose leading axis is the batch; typically ``(B, state_dim)``).
    y0:
        Initial states, shape ``(B, state_dim)`` (or ``(state_dim,)``).
    sample_steps:
        Sorted step indices in ``[0, n_steps]`` to record.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(sample_steps),) + y0.shape`` holding the
        state at each requested step.  Recording only the requested
        steps keeps memory at ``O(T * B)`` instead of
        ``O(n_steps * B)`` — this is what makes building the
        full-space ground-truth tensor tractable.
    """
    _check_times(t0, t1, n_steps)
    y = np.array(y0, dtype=np.float64, copy=True)
    sample_steps = np.asarray(sample_steps, dtype=np.int64)
    if sample_steps.size == 0:
        raise SimulationError("sample_steps must not be empty")
    if (np.diff(sample_steps) < 0).any():
        raise SimulationError("sample_steps must be sorted ascending")
    if sample_steps[0] < 0 or sample_steps[-1] > n_steps:
        raise SimulationError(
            f"sample_steps must lie in [0, {n_steps}]"
        )
    out = np.empty((sample_steps.shape[0],) + y.shape)
    cursor = 0
    while cursor < sample_steps.shape[0] and sample_steps[cursor] == 0:
        out[cursor] = y
        cursor += 1
    h = (t1 - t0) / n_steps
    for step in range(n_steps):
        t = t0 + step * h
        k1 = deriv(t, y)
        k2 = deriv(t + 0.5 * h, y + 0.5 * h * k1)
        k3 = deriv(t + 0.5 * h, y + 0.5 * h * k2)
        k4 = deriv(t + h, y + h * k3)
        y = y + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        while (
            cursor < sample_steps.shape[0]
            and sample_steps[cursor] == step + 1
        ):
            out[cursor] = y
            cursor += 1
        if cursor == sample_steps.shape[0]:
            break
    _check_finite(out)
    return out


def _check_finite(states: np.ndarray) -> None:
    if not np.isfinite(states).all():
        raise SimulationError(
            "integration diverged (non-finite state encountered)"
        )
