"""Dynamical-system simulation substrate.

Provides the paper's three test systems (double pendulum, triple
pendulum with friction, Lorenz), the ODE integrators that run them,
discretized parameter spaces, the observed reference configuration,
and the batched ensemble-tensor construction.
"""

from .double_pendulum import DoublePendulum
from .double_pendulum_g import DoublePendulumG
from .epidemic import EpidemicSEIR
from .ensemble import (
    SimulationMeter,
    ensemble_from_truth,
    full_space_tensor,
    simulate_fibers,
)
from .integrators import euler, rk4, rk45, rk4_sampled
from .lorenz import Lorenz
from .observation import Observation, make_observation
from .parameter_space import TIME_MODE, ParameterSpace
from .systems import DynamicalSystem, ParameterDef
from .triple_pendulum import TriplePendulum, chain_pendulum_derivative

SYSTEMS = {
    DoublePendulum.name: DoublePendulum,
    DoublePendulumG.name: DoublePendulumG,
    TriplePendulum.name: TriplePendulum,
    Lorenz.name: Lorenz,
    EpidemicSEIR.name: EpidemicSEIR,
}


def make_system(name: str) -> DynamicalSystem:
    """Instantiate one of the paper's three systems by name."""
    try:
        return SYSTEMS[name]()
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {sorted(SYSTEMS)}"
        ) from None


__all__ = [
    "DoublePendulum",
    "DoublePendulumG",
    "TriplePendulum",
    "Lorenz",
    "EpidemicSEIR",
    "DynamicalSystem",
    "ParameterDef",
    "ParameterSpace",
    "TIME_MODE",
    "Observation",
    "make_observation",
    "SimulationMeter",
    "ensemble_from_truth",
    "full_space_tensor",
    "simulate_fibers",
    "euler",
    "rk4",
    "rk45",
    "rk4_sampled",
    "chain_pendulum_derivative",
    "SYSTEMS",
    "make_system",
]
