"""The dynamical-system abstraction shared by all three test systems.

A :class:`DynamicalSystem` exposes (a) a named, ordered set of
*simulation parameters* (the tensor modes besides time), (b) the ODE
right-hand side for a given parameter assignment, and (c) how to build
the initial state vector.  The ensemble machinery only talks to this
interface, so adding a fourth system means writing one subclass.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from .integrators import rk4


@dataclass(frozen=True)
class ParameterDef:
    """One simulation parameter: a name and its plausible value range.

    ``low``/``high`` bound the grid the ensemble machinery discretizes
    (the paper's "resolution" is the number of distinct values per
    parameter); ``default`` is the PF-partitioning *fixing constant*
    used when the parameter is frozen in a sub-system (Section V-B).
    """

    name: str
    low: float
    high: float
    default: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise SimulationError(
                f"parameter {self.name}: low {self.low} must be < high {self.high}"
            )
        if not self.low <= self.default <= self.high:
            raise SimulationError(
                f"parameter {self.name}: default {self.default} outside "
                f"[{self.low}, {self.high}]"
            )

    def grid(self, resolution: int) -> np.ndarray:
        """``resolution`` equally spaced values over ``[low, high]``."""
        if resolution < 1:
            raise SimulationError(f"resolution must be >= 1, got {resolution}")
        if resolution == 1:
            return np.array([self.default])
        return np.linspace(self.low, self.high, resolution)


class DynamicalSystem(ABC):
    """Base class for the simulated complex systems (Section VII-A)."""

    #: Human-readable system name (used in reports).
    name: str = "abstract"

    #: Simulation time horizon; trajectories run over [0, t_end].
    t_end: float = 10.0

    #: Fixed-step RK4 steps per simulation run (time-mode samples are
    #: read off this trajectory).
    n_steps: int = 200

    @property
    @abstractmethod
    def parameters(self) -> Tuple[ParameterDef, ...]:
        """Ordered simulation parameters (tensor modes before time)."""

    @abstractmethod
    def derivative(
        self, params: Dict[str, float]
    ) -> Callable[[float, np.ndarray], np.ndarray]:
        """ODE right-hand side for a concrete parameter assignment."""

    @abstractmethod
    def initial_state(self, params: Dict[str, float]) -> np.ndarray:
        """Initial state vector for a concrete parameter assignment."""

    # ------------------------------------------------------------------
    @property
    def n_parameters(self) -> int:
        return len(self.parameters)

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    def default_params(self) -> Dict[str, float]:
        """All parameters at their fixing-constant defaults."""
        return {p.name: p.default for p in self.parameters}

    def resolve(self, values: Sequence[float]) -> Dict[str, float]:
        """Zip a value vector with the parameter names, validating length."""
        if len(values) != self.n_parameters:
            raise SimulationError(
                f"{self.name} takes {self.n_parameters} parameters, "
                f"got {len(values)}"
            )
        return dict(zip(self.parameter_names, (float(v) for v in values)))

    def simulate(self, params: Dict[str, float]) -> np.ndarray:
        """Run one simulation; returns states of shape
        ``(n_steps + 1, state_dim)`` on the uniform time grid."""
        missing = set(self.parameter_names) - set(params)
        if missing:
            raise SimulationError(
                f"{self.name}: missing parameters {sorted(missing)}"
            )
        deriv = self.derivative(params)
        y0 = self.initial_state(params)
        _times, states = rk4(deriv, y0, 0.0, self.t_end, self.n_steps)
        return states

    # ------------------------------------------------------------------
    # batched interface (vectorized over many parameter assignments)
    # ------------------------------------------------------------------
    def batch_initial_state(self, params: Dict[str, np.ndarray]) -> np.ndarray:
        """Initial states for a batch of parameter assignments.

        ``params`` maps each parameter name to a length-``B`` array;
        returns a ``(B, state_dim)`` array.  The default implementation
        loops over :meth:`initial_state`; systems override it with a
        vectorized version.
        """
        batch = len(next(iter(params.values())))
        rows = [
            self.initial_state({k: float(v[i]) for k, v in params.items()})
            for i in range(batch)
        ]
        return np.stack(rows)

    def batch_derivative(
        self, params: Dict[str, np.ndarray]
    ) -> Callable[[float, np.ndarray], np.ndarray]:
        """ODE right-hand side over a ``(B, state_dim)`` state batch.

        The default loops over :meth:`derivative`; systems override it.
        Batched evaluation is what makes constructing the full-space
        ground-truth tensor (R^4 simulation runs) tractable.
        """
        batch = len(next(iter(params.values())))
        derivs = [
            self.derivative({k: float(v[i]) for k, v in params.items()})
            for i in range(batch)
        ]

        def deriv(t: float, states: np.ndarray) -> np.ndarray:
            return np.stack([d(t, states[i]) for i, d in enumerate(derivs)])

        return deriv

    def time_grid(self, resolution: int) -> np.ndarray:
        """Indices into the trajectory for ``resolution`` time samples.

        The time mode of the ensemble tensor has ``resolution`` cells;
        they are spread evenly over the (finer) integration grid.
        """
        if resolution < 1:
            raise SimulationError(f"resolution must be >= 1, got {resolution}")
        return np.linspace(0, self.n_steps, resolution).round().astype(int)
