"""The Lorenz system (Section VII-A).

    dx/dt = sigma * (y - x)
    dy/dt = x * (rho - z) - y
    dz/dt = x * y - beta * z

Simulation parameters match the paper: the initial ``z`` coordinate
``z0`` and the three system parameters ``sigma``, ``beta``, ``rho``.
The classic chaotic regime (sigma=10, beta=8/3, rho=28) sits at the
parameter defaults, so ensembles straddle both chaotic and
non-chaotic behaviour.

State vector: ``(x, y, z)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from .systems import DynamicalSystem, ParameterDef


class Lorenz(DynamicalSystem):
    """Lorenz '63 convection model with a variable initial height."""

    name = "lorenz"
    # Short horizon: Lorenz trajectories decorrelate exponentially
    # fast in the chaotic regime the parameter ranges straddle.
    t_end = 1.0
    n_steps = 400

    def __init__(self, x0: float = 1.0, y0: float = 1.0):
        self.x0 = float(x0)
        self.y0 = float(y0)
        self._parameters = (
            ParameterDef("z0", low=0.5, high=30.0, default=15.0),
            ParameterDef("sigma", low=5.0, high=15.0, default=10.0),
            ParameterDef("beta", low=1.0, high=4.0, default=8.0 / 3.0),
            ParameterDef("rho", low=20.0, high=40.0, default=28.0),
        )

    @property
    def parameters(self) -> Tuple[ParameterDef, ...]:
        return self._parameters

    def initial_state(self, params: Dict[str, float]) -> np.ndarray:
        return np.array([self.x0, self.y0, params["z0"]])

    def derivative(
        self, params: Dict[str, float]
    ) -> Callable[[float, np.ndarray], np.ndarray]:
        sigma = float(params["sigma"])
        beta = float(params["beta"])
        rho = float(params["rho"])

        def deriv(_t: float, state: np.ndarray) -> np.ndarray:
            x, y, z = state
            return np.array(
                [
                    sigma * (y - x),
                    x * (rho - z) - y,
                    x * y - beta * z,
                ]
            )

        return deriv

    def batch_initial_state(self, params: Dict[str, np.ndarray]) -> np.ndarray:
        z0 = np.asarray(params["z0"], dtype=np.float64)
        return np.stack(
            [np.full_like(z0, self.x0), np.full_like(z0, self.y0), z0],
            axis=1,
        )

    def batch_derivative(self, params: Dict[str, np.ndarray]):
        sigma = np.asarray(params["sigma"], dtype=np.float64)
        beta = np.asarray(params["beta"], dtype=np.float64)
        rho = np.asarray(params["rho"], dtype=np.float64)

        def deriv(_t: float, states: np.ndarray) -> np.ndarray:
            x = states[:, 0]
            y = states[:, 1]
            z = states[:, 2]
            return np.stack(
                [
                    sigma * (y - x),
                    x * (rho - z) - y,
                    x * y - beta * z,
                ],
                axis=1,
            )

        return deriv
