"""The double equal-length pendulum (paper Figure 2, Section VII-A).

Simulation parameters, matching the paper's evaluation: the initial
angles ``phi1``/``phi2`` and bob weights ``m1``/``m2`` of the two
pendulums.  Gravity is a fixed constructor argument (the intro's
5-parameter illustration includes ``g``; the evaluation freezes it).

State vector: ``(theta1, omega1, theta2, omega2)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from .systems import DynamicalSystem, ParameterDef


class DoublePendulum(DynamicalSystem):
    """Two equal-length point-mass pendulums in series."""

    name = "double_pendulum"
    # Horizon kept in the coherent (pre-chaotic-mixing) regime: the
    # join tensor's pivot-separability assumption — and with it every
    # scheme's accuracy ceiling — degrades as trajectories decorrelate.
    t_end = 3.0
    n_steps = 200

    def __init__(self, gravity: float = 9.81, length: float = 1.0):
        self.gravity = float(gravity)
        self.length = float(length)
        self._parameters = (
            ParameterDef("phi1", low=0.1, high=2.0, default=1.0),
            ParameterDef("m1", low=0.5, high=3.0, default=1.0),
            ParameterDef("phi2", low=0.1, high=2.0, default=1.0),
            ParameterDef("m2", low=0.5, high=3.0, default=1.0),
        )

    @property
    def parameters(self) -> Tuple[ParameterDef, ...]:
        return self._parameters

    def initial_state(self, params: Dict[str, float]) -> np.ndarray:
        return np.array([params["phi1"], 0.0, params["phi2"], 0.0])

    def derivative(
        self, params: Dict[str, float]
    ) -> Callable[[float, np.ndarray], np.ndarray]:
        m1 = float(params["m1"])
        m2 = float(params["m2"])
        g = self.gravity
        length = self.length

        def deriv(_t: float, state: np.ndarray) -> np.ndarray:
            theta1, omega1, theta2, omega2 = state
            delta = theta1 - theta2
            cos_d = np.cos(delta)
            sin_d = np.sin(delta)
            denom = length * (2 * m1 + m2 - m2 * np.cos(2 * delta))
            alpha1 = (
                -g * (2 * m1 + m2) * np.sin(theta1)
                - m2 * g * np.sin(theta1 - 2 * theta2)
                - 2
                * sin_d
                * m2
                * (omega2**2 * length + omega1**2 * length * cos_d)
            ) / denom
            alpha2 = (
                2
                * sin_d
                * (
                    omega1**2 * length * (m1 + m2)
                    + g * (m1 + m2) * np.cos(theta1)
                    + omega2**2 * length * m2 * cos_d
                )
            ) / denom
            return np.array([omega1, alpha1, omega2, alpha2])

        return deriv

    def batch_initial_state(self, params: Dict[str, np.ndarray]) -> np.ndarray:
        phi1 = np.asarray(params["phi1"], dtype=np.float64)
        phi2 = np.asarray(params["phi2"], dtype=np.float64)
        zeros = np.zeros_like(phi1)
        return np.stack([phi1, zeros, phi2, zeros], axis=1)

    def batch_derivative(self, params: Dict[str, np.ndarray]):
        m1 = np.asarray(params["m1"], dtype=np.float64)
        m2 = np.asarray(params["m2"], dtype=np.float64)
        g = self.gravity
        length = self.length

        def deriv(_t: float, states: np.ndarray) -> np.ndarray:
            theta1 = states[:, 0]
            omega1 = states[:, 1]
            theta2 = states[:, 2]
            omega2 = states[:, 3]
            delta = theta1 - theta2
            cos_d = np.cos(delta)
            sin_d = np.sin(delta)
            denom = length * (2 * m1 + m2 - m2 * np.cos(2 * delta))
            alpha1 = (
                -g * (2 * m1 + m2) * np.sin(theta1)
                - m2 * g * np.sin(theta1 - 2 * theta2)
                - 2
                * sin_d
                * m2
                * (omega2**2 * length + omega1**2 * length * cos_d)
            ) / denom
            alpha2 = (
                2
                * sin_d
                * (
                    omega1**2 * length * (m1 + m2)
                    + g * (m1 + m2) * np.cos(theta1)
                    + omega2**2 * length * m2 * cos_d
                )
            ) / denom
            return np.stack([omega1, alpha1, omega2, alpha2], axis=1)

        return deriv

    def total_energy(self, params: Dict[str, float], state: np.ndarray) -> float:
        """Mechanical energy of a state — conserved (no friction), which
        tests use to validate the integrator against this system."""
        m1 = float(params["m1"])
        m2 = float(params["m2"])
        g = self.gravity
        length = self.length
        theta1, omega1, theta2, omega2 = state
        v1_sq = (length * omega1) ** 2
        v2_sq = (
            v1_sq
            + (length * omega2) ** 2
            + 2 * length**2 * omega1 * omega2 * np.cos(theta1 - theta2)
        )
        kinetic = 0.5 * m1 * v1_sq + 0.5 * m2 * v2_sq
        y1 = -length * np.cos(theta1)
        y2 = y1 - length * np.cos(theta2)
        potential = m1 * g * y1 + m2 * g * y2
        return float(kinetic + potential)
