"""The observed reference configuration ensemble cells are compared to.

Paper Section VII-B: "Each cell of the 5-mode ensemble simulation
tensor encodes the Euclidean distance between the states of the
resulting simulated system and the observed system parameters at a
given time stamp."  The paper's observation comes from the real world;
our synthetic stand-in is a designated reference simulation at a
"true" parameter vector (see DESIGN.md substitution table).

By default the true vector sits at 60% of each parameter's range —
deliberately *not* at the PF-partitioning fixing constants, so the
sub-systems' frozen parameters are genuinely imperfect approximations
of the observed configuration (the regime the paper argues M2TD
survives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import SimulationError
from .parameter_space import ParameterSpace


@dataclass(frozen=True)
class Observation:
    """Reference states sampled on the ensemble's time grid.

    Attributes
    ----------
    true_params:
        The parameter assignment that generated the reference run.
    states:
        Array of shape ``(time_resolution, state_dim)``.
    """

    true_params: Dict[str, float]
    states: np.ndarray

    def distances(self, trajectory_samples: np.ndarray) -> np.ndarray:
        """Euclidean state distance per time sample.

        Parameters
        ----------
        trajectory_samples:
            Array of shape ``(T, ..., state_dim)`` — simulated states
            at the same ``T`` time samples, with optional batch axes in
            between.

        Returns
        -------
        numpy.ndarray
            Distances of shape ``(T, ...)``.
        """
        samples = np.asarray(trajectory_samples)
        if samples.shape[0] != self.states.shape[0]:
            raise SimulationError(
                f"trajectory has {samples.shape[0]} time samples, "
                f"observation has {self.states.shape[0]}"
            )
        if samples.shape[-1] != self.states.shape[-1]:
            raise SimulationError(
                f"state dimension mismatch: {samples.shape[-1]} vs "
                f"{self.states.shape[-1]}"
            )
        reference = self.states.reshape(
            (self.states.shape[0],)
            + (1,) * (samples.ndim - 2)
            + (self.states.shape[-1],)
        )
        return np.linalg.norm(samples - reference, axis=-1)


def make_observation(
    space: ParameterSpace,
    true_params: Optional[Dict[str, float]] = None,
    offset: float = 0.6,
) -> Observation:
    """Build the reference observation for a parameter space.

    Parameters
    ----------
    space:
        The discretized simulation space.
    true_params:
        Explicit "true" parameter assignment; when omitted, each
        parameter is placed at ``low + offset * (high - low)``.
    offset:
        Fractional position of the default true vector in each range.
    """
    system = space.system
    if true_params is None:
        if not 0.0 <= offset <= 1.0:
            raise SimulationError(f"offset must be in [0, 1], got {offset}")
        true_params = {
            p.name: p.low + offset * (p.high - p.low)
            for p in system.parameters
        }
    else:
        missing = set(system.parameter_names) - set(true_params)
        if missing:
            raise SimulationError(
                f"true_params missing {sorted(missing)} for {system.name}"
            )
        true_params = {
            name: float(true_params[name]) for name in system.parameter_names
        }
    trajectory = system.simulate(true_params)
    states = trajectory[space.time_indices]
    return Observation(true_params=true_params, states=states)
