"""The ``BENCH_<suite>.json`` artifact format.

One document per suite, schema-versioned so future PRs can evolve the
layout without silently breaking ``compare``.  Layout (version 1)::

    {
      "schema": "repro.bench/1",
      "suite": "m2td",
      "mode": "full" | "quick",
      "created_unix": 1754000000.0,
      "environment": {python, numpy, scipy, platform, machine,
                      cpu_count, git_sha},
      "workloads": [
        {
          "name": "m2td.select",
          "suite": "m2td",
          "mode": "full",
          "description": "...",
          "iterations": 5,
          "warmup": 2,
          "wall_seconds": {median, iqr, min, max, mean, samples},
          "cpu_seconds":  {median, iqr, min, max, mean, samples},
          "peak_memory_bytes": 1234567,
          "metrics": {"svd.calls": 24.0, ...}
        }, ...
      ]
    }

Every run records the environment fingerprint because timings are only
comparable within one machine; ``compare`` warns when fingerprints
differ but still reports the ratios.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, List, Optional

from ..exceptions import BenchError

#: Current artifact schema identifier.
SCHEMA = "repro.bench/1"

#: Required summary-statistic keys inside wall_seconds / cpu_seconds.
STAT_KEYS = ("median", "iqr", "min", "max", "mean")

_TOP_FIELDS = {
    "schema": str,
    "suite": str,
    "mode": str,
    "created_unix": (int, float),
    "environment": dict,
    "workloads": list,
}

_WORKLOAD_FIELDS = {
    "name": str,
    "suite": str,
    "mode": str,
    "description": str,
    "iterations": int,
    "warmup": int,
    "wall_seconds": dict,
    "cpu_seconds": dict,
    "peak_memory_bytes": int,
    "metrics": dict,
}

_ENVIRONMENT_FIELDS = ("python", "numpy", "platform", "cpu_count")


def bench_filename(suite: str) -> str:
    """Canonical artifact name for a suite."""
    return f"BENCH_{suite}.json"


def git_sha() -> Optional[str]:
    """The repository HEAD sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint() -> Dict[str, Any]:
    """Versions + hardware context stamped into every document."""
    import numpy

    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dep today
        scipy_version = None
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
    }


def make_document(
    suite: str, mode: str, workloads: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Assemble (and validate) a suite document from workload records."""
    doc = {
        "schema": SCHEMA,
        "suite": suite,
        "mode": mode,
        "created_unix": time.time(),
        "environment": environment_fingerprint(),
        "workloads": sorted(workloads, key=lambda w: w["name"]),
    }
    validate_document(doc)
    return doc


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _require(mapping: Dict[str, Any], fields: Dict[str, Any], where: str) -> None:
    for key, kinds in fields.items():
        if key not in mapping:
            raise BenchError(f"{where}: missing required field {key!r}")
        if not isinstance(mapping[key], kinds):
            raise BenchError(
                f"{where}: field {key!r} has type "
                f"{type(mapping[key]).__name__}, expected {kinds}"
            )


def _check_stats(stats: Dict[str, Any], where: str) -> None:
    for key in STAT_KEYS:
        if key not in stats:
            raise BenchError(f"{where}: missing statistic {key!r}")
        if not isinstance(stats[key], (int, float)):
            raise BenchError(f"{where}: statistic {key!r} is not numeric")
        if stats[key] < 0:
            raise BenchError(f"{where}: statistic {key!r} is negative")
    samples = stats.get("samples")
    if not isinstance(samples, list) or not samples:
        raise BenchError(f"{where}: 'samples' must be a non-empty list")


def validate_document(doc: Any) -> None:
    """Raise :class:`~repro.exceptions.BenchError` unless ``doc`` is a
    well-formed version-1 BENCH document."""
    if not isinstance(doc, dict):
        raise BenchError("BENCH document is not a JSON object")
    _require(doc, _TOP_FIELDS, "document")
    if doc["schema"] != SCHEMA:
        raise BenchError(
            f"unsupported schema {doc['schema']!r} (this reader "
            f"understands {SCHEMA!r})"
        )
    for key in _ENVIRONMENT_FIELDS:
        if key not in doc["environment"]:
            raise BenchError(f"environment: missing field {key!r}")
    if not doc["workloads"]:
        raise BenchError(f"suite {doc['suite']!r} document has no workloads")
    seen = set()
    for record in doc["workloads"]:
        if not isinstance(record, dict):
            raise BenchError("workload record is not a JSON object")
        where = f"workload {record.get('name', '?')!r}"
        _require(record, _WORKLOAD_FIELDS, where)
        if record["suite"] != doc["suite"]:
            raise BenchError(
                f"{where}: suite {record['suite']!r} does not match "
                f"document suite {doc['suite']!r}"
            )
        if record["mode"] != doc["mode"]:
            raise BenchError(f"{where}: mode does not match document mode")
        if record["name"] in seen:
            raise BenchError(f"{where}: duplicate workload name")
        seen.add(record["name"])
        _check_stats(record["wall_seconds"], f"{where}.wall_seconds")
        _check_stats(record["cpu_seconds"], f"{where}.cpu_seconds")
        if record["iterations"] < 1:
            raise BenchError(f"{where}: iterations must be >= 1")
        if record["peak_memory_bytes"] < 0:
            raise BenchError(f"{where}: peak_memory_bytes is negative")


# ----------------------------------------------------------------------
# I/O
# ----------------------------------------------------------------------
def write_document(doc: Dict[str, Any], path: str) -> None:
    validate_document(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_document(path: str) -> Dict[str, Any]:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read BENCH document {path!r}: {exc}") from exc
    validate_document(doc)
    return doc


def iter_workloads(docs: Iterable[Dict[str, Any]]):
    """All workload records across documents, with their environment."""
    for doc in docs:
        for record in doc["workloads"]:
            yield doc, record
