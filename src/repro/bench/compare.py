"""Compare two BENCH artifact sets and gate on regressions.

A workload pair is matched on ``(suite, name, mode)`` — a quick run is
never compared against a full run.  The verdict compares *best* (min)
wall times — scheduler noise is one-sided, so the minimum is by far
the most stable cross-process estimator of achievable time (medians of
millisecond workloads drift up to ~2x between runs of this harness on
a loaded host; minima stay within ~25%).  The noise threshold is
derived from the *recorded* IQRs of both sides::

    rel_noise = max(iqr_base / median_base, iqr_cand / median_cand)
    threshold = clamp(NOISE_FACTOR * rel_noise, NOISE_FLOOR, NOISE_CAP)

    regressed  if  best_cand > best_base * (1 + threshold)
    improved   if  best_cand < best_base / (1 + threshold)
    unchanged  otherwise

The floor keeps millisecond-scale workloads from flapping on scheduler
jitter; the cap guarantees a genuine 2x slowdown can never hide behind
a noisy baseline (worst case it must beat ``1 + NOISE_CAP = 1.5x``).
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import BenchError
from .schema import load_document

#: Minimum relative change ever treated as signal.
NOISE_FLOOR = 0.25

#: IQR multiplier: how many noise-bands of drift count as real.
NOISE_FACTOR = 3.0

#: Ceiling on the threshold so large regressions always gate.
NOISE_CAP = 0.5

#: Verdicts that make ``compare`` exit nonzero.
GATING_VERDICTS = ("regressed",)

WorkloadKey = Tuple[str, str, str]


@dataclass(frozen=True)
class Verdict:
    """Outcome of comparing one workload across two runs."""

    suite: str
    name: str
    mode: str
    verdict: str  # regressed / improved / unchanged / added / removed
    base_best: Optional[float] = None
    cand_best: Optional[float] = None
    base_median: Optional[float] = None
    cand_median: Optional[float] = None
    threshold: Optional[float] = None

    @property
    def ratio(self) -> Optional[float]:
        """Best-time ratio — the quantity the verdict gates on."""
        if not self.base_best or self.cand_best is None:
            return None
        return self.cand_best / self.base_best


def _collect(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Load BENCH documents from files and/or directories."""
    docs: List[Dict[str, Any]] = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
            if not found:
                raise BenchError(f"no BENCH_*.json files under {path!r}")
            docs.extend(load_document(p) for p in found)
        else:
            docs.append(load_document(path))
    return docs


def _workload_map(
    docs: Iterable[Dict[str, Any]],
) -> Dict[WorkloadKey, Dict[str, Any]]:
    mapping: Dict[WorkloadKey, Dict[str, Any]] = {}
    for doc in docs:
        for record in doc["workloads"]:
            key = (record["suite"], record["name"], record["mode"])
            if key in mapping:
                raise BenchError(
                    f"workload {record['name']!r} (mode {record['mode']!r}) "
                    "appears in more than one document"
                )
            mapping[key] = record
    return mapping


def noise_threshold(
    base: Dict[str, Any],
    cand: Dict[str, Any],
    floor: float = NOISE_FLOOR,
    factor: float = NOISE_FACTOR,
    cap: float = NOISE_CAP,
) -> float:
    """The relative-change threshold for one workload pair."""
    rel = 0.0
    for record in (base, cand):
        stats = record["wall_seconds"]
        median = stats["median"]
        if median > 0:
            rel = max(rel, stats["iqr"] / median)
    return min(cap, max(floor, factor * rel))


def compare_records(
    base: Dict[str, Any],
    cand: Dict[str, Any],
    floor: float = NOISE_FLOOR,
    factor: float = NOISE_FACTOR,
    cap: float = NOISE_CAP,
) -> Verdict:
    threshold = noise_threshold(base, cand, floor=floor, factor=factor, cap=cap)
    base_best = base["wall_seconds"]["min"]
    cand_best = cand["wall_seconds"]["min"]
    if base_best <= 0:
        verdict = "unchanged" if cand_best <= 0 else "regressed"
    elif cand_best > base_best * (1.0 + threshold):
        verdict = "regressed"
    elif cand_best < base_best / (1.0 + threshold):
        verdict = "improved"
    else:
        verdict = "unchanged"
    return Verdict(
        suite=base["suite"],
        name=base["name"],
        mode=base["mode"],
        verdict=verdict,
        base_best=base_best,
        cand_best=cand_best,
        base_median=base["wall_seconds"]["median"],
        cand_median=cand["wall_seconds"]["median"],
        threshold=threshold,
    )


def compare_paths(
    baseline_paths: Sequence[str],
    candidate_paths: Sequence[str],
    floor: float = NOISE_FLOOR,
    factor: float = NOISE_FACTOR,
    cap: float = NOISE_CAP,
) -> List[Verdict]:
    """Compare two artifact sets; returns one verdict per workload.

    Workloads present only in the candidate are ``added``; only in the
    baseline, ``removed`` — neither gates.
    """
    base_map = _workload_map(_collect(baseline_paths))
    cand_map = _workload_map(_collect(candidate_paths))
    verdicts: List[Verdict] = []
    for key in sorted(set(base_map) | set(cand_map)):
        suite, name, mode = key
        base = base_map.get(key)
        cand = cand_map.get(key)
        if base is None:
            verdicts.append(
                Verdict(
                    suite=suite,
                    name=name,
                    mode=mode,
                    verdict="added",
                    cand_median=cand["wall_seconds"]["median"],
                )
            )
        elif cand is None:
            verdicts.append(
                Verdict(
                    suite=suite,
                    name=name,
                    mode=mode,
                    verdict="removed",
                    base_median=base["wall_seconds"]["median"],
                )
            )
        else:
            verdicts.append(
                compare_records(
                    base, cand, floor=floor, factor=factor, cap=cap
                )
            )
    return verdicts


def has_regressions(verdicts: Iterable[Verdict]) -> bool:
    return any(v.verdict in GATING_VERDICTS for v in verdicts)


def format_verdicts(verdicts: Sequence[Verdict]) -> str:
    """Plain-text comparison table plus a one-line summary."""

    def fmt_ms(value: Optional[float]) -> str:
        return f"{value * 1e3:10.3f}" if value is not None else " " * 9 + "-"

    lines = [
        f"{'workload':<24} {'mode':<6} {'base(ms)':>10} {'cand(ms)':>10} "
        f"{'ratio':>7} {'thresh':>7}  verdict",
        "-" * 80,
    ]
    counts: Dict[str, int] = {}
    for v in verdicts:
        counts[v.verdict] = counts.get(v.verdict, 0) + 1
        ratio = f"{v.ratio:7.2f}" if v.ratio is not None else "      -"
        threshold = (
            f"{v.threshold:6.0%}" if v.threshold is not None else "     -"
        )
        marker = {"regressed": "!!", "improved": "++"}.get(v.verdict, "  ")
        lines.append(
            f"{v.name:<24} {v.mode:<6} {fmt_ms(v.base_median)} "
            f"{fmt_ms(v.cand_median)} {ratio} {threshold}  "
            f"{marker} {v.verdict}"
        )
    summary = ", ".join(
        f"{counts[k]} {k}" for k in sorted(counts, key=lambda k: -counts[k])
    )
    lines.append("-" * 80)
    lines.append(f"{len(verdicts)} workload(s): {summary}")
    return "\n".join(lines)
