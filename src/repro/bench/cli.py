"""``python -m repro.bench`` — run, compare, and report benchmarks.

Subcommands::

    run      measure workloads and write BENCH_<suite>.json artifacts
    compare  verdict per workload between two artifact sets; exits 1
             on any regression (unless --warn-only)
    report   render artifacts as text tables

``run --quick`` switches every workload to CI-sized inputs; the mode
is recorded in the artifact, and ``compare`` only ever matches records
of the same mode — a quick run can never masquerade as a full one.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..distributed.cli import add_worker_args, apply_worker_args
from ..exceptions import BenchError
from .compare import (
    NOISE_CAP,
    NOISE_FACTOR,
    NOISE_FLOOR,
    compare_paths,
    format_verdicts,
    has_regressions,
)
from .harness import BenchmarkRunner
from .report import format_documents, summarize_run
from .schema import bench_filename, load_document, write_document
from .workloads import get_workloads, size_for, suites


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="performance-trajectory harness (BENCH_*.json)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="measure workloads, write artifacts")
    run.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized inputs (smaller resolution/rank, fewer iterations)",
    )
    run.add_argument(
        "--suite",
        action="append",
        dest="suites",
        metavar="SUITE",
        help=f"suite(s) to run (default all: {', '.join(suites())})",
    )
    run.add_argument(
        "--output-dir",
        default=".",
        metavar="DIR",
        help="where BENCH_<suite>.json files land (default: cwd)",
    )
    run.add_argument(
        "--iterations", type=int, metavar="N",
        help="override timed iterations per workload",
    )
    run.add_argument(
        "--warmup", type=int, metavar="N",
        help="override warmup iterations per workload",
    )
    run.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="also emit one Chrome trace per workload into DIR",
    )
    run.add_argument(
        "--no-memory",
        action="store_true",
        help="skip the tracemalloc pass (peak_memory_bytes reported 0)",
    )
    add_worker_args(run)

    compare = sub.add_parser(
        "compare", help="verdicts between a baseline and a candidate"
    )
    compare.add_argument(
        "baseline", help="BENCH_*.json file or directory of them"
    )
    compare.add_argument(
        "candidate", help="BENCH_*.json file or directory of them"
    )
    compare.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (cross-machine CI)",
    )
    compare.add_argument(
        "--noise-floor", type=float, default=NOISE_FLOOR,
        help=f"minimum relative change treated as signal "
        f"(default {NOISE_FLOOR})",
    )
    compare.add_argument(
        "--noise-factor", type=float, default=NOISE_FACTOR,
        help=f"IQR multiplier for the noise band (default {NOISE_FACTOR})",
    )
    compare.add_argument(
        "--noise-cap", type=float, default=NOISE_CAP,
        help=f"threshold ceiling so big slowdowns always gate "
        f"(default {NOISE_CAP})",
    )

    report = sub.add_parser("report", help="render artifacts as text")
    report.add_argument(
        "paths", nargs="+", help="BENCH_*.json files to render"
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    import os

    apply_worker_args(args)
    size = size_for("quick" if args.quick else "full")
    workloads = get_workloads(args.suites)
    selected_suites = sorted({w.suite for w in workloads})
    runner = BenchmarkRunner(
        size,
        iterations=args.iterations,
        warmup=args.warmup,
        trace_dir=args.trace_dir,
        measure_memory=not args.no_memory,
        progress=lambda line: print(line, file=sys.stderr),
    )
    os.makedirs(args.output_dir, exist_ok=True)
    docs = []
    for suite in selected_suites:
        doc = runner.run_suite(suite, workloads)
        path = os.path.join(args.output_dir, bench_filename(suite))
        write_document(doc, path)
        print(f"wrote {path}", file=sys.stderr)
        docs.append(doc)
    print(summarize_run(docs), file=sys.stderr)
    print(format_documents(docs))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    verdicts = compare_paths(
        [args.baseline],
        [args.candidate],
        floor=args.noise_floor,
        factor=args.noise_factor,
        cap=args.noise_cap,
    )
    print(format_verdicts(verdicts))
    if has_regressions(verdicts):
        if args.warn_only:
            print(
                "WARNING: regressions detected (exit 0 due to --warn-only)",
                file=sys.stderr,
            )
            return 0
        print("FAIL: performance regressions detected", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    docs = [load_document(path) for path in args.paths]
    print(format_documents(docs))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        return _cmd_report(args)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into head/less that exited early — not an error
        return 0
