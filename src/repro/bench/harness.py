"""The benchmark runner: warmup, repeated timed iterations, memory
profiling, metrics capture, and per-workload Chrome traces.

Timing protocol, per workload:

1. ``build`` the workload (setup excluded from every measurement);
2. run ``warmup`` untimed iterations (JIT-free Python still benefits:
   allocator pools, file-system caches, BLAS thread spin-up);
3. snapshot the (workload-local) metrics registry, then run
   ``iterations`` timed iterations recording wall
   (``time.perf_counter``) and CPU (``time.process_time``) seconds;
   the registry diff afterwards yields exactly the counters the timed
   window produced — warmup activity cannot cross-contaminate;
4. one extra iteration under :mod:`tracemalloc` for the peak-memory
   figure (tracemalloc slows allocation, so it never shares an
   iteration with timing);
5. optionally one extra iteration under a fresh
   :class:`~repro.observability.Tracer`, exported as a Chrome trace.

Medians + IQR rather than means + stddev: scheduler noise is one-sided
(things only ever get slower), so the median tracks the achievable
time and the IQR is the natural noise band ``compare`` derives its
threshold from.

Both clocks are injectable, which is what makes the statistics
unit-testable with a scripted fake clock.
"""

from __future__ import annotations

import math
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..observability import Tracer, span as _span, use_metrics, use_tracer
from ..observability.exporters import write_chrome_trace
from .schema import make_document
from .workloads import SizeSpec, Workload


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (q in 0-100)."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    position = (len(ordered) - 1) * (float(q) / 100.0)
    lower = math.floor(position)
    upper = math.ceil(position)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class TimingStats:
    """Summary of one timed sample set (seconds)."""

    samples: List[float]

    @property
    def median(self) -> float:
        return percentile(self.samples, 50)

    @property
    def iqr(self) -> float:
        """Interquartile range — the harness's noise measure."""
        return percentile(self.samples, 75) - percentile(self.samples, 25)

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "median": self.median,
            "iqr": self.iqr,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "samples": [float(s) for s in self.samples],
        }


@dataclass
class WorkloadResult:
    """Everything measured for one workload."""

    name: str
    suite: str
    mode: str
    description: str
    iterations: int
    warmup: int
    wall: TimingStats
    cpu: TimingStats
    peak_memory_bytes: int
    metrics: Dict[str, float] = field(default_factory=dict)

    def as_record(self) -> Dict[str, Any]:
        """The workload's BENCH_*.json record."""
        return {
            "name": self.name,
            "suite": self.suite,
            "mode": self.mode,
            "description": self.description,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "wall_seconds": self.wall.as_dict(),
            "cpu_seconds": self.cpu.as_dict(),
            "peak_memory_bytes": int(self.peak_memory_bytes),
            "metrics": self.metrics,
        }


def _flatten_metrics(delta: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
    """Registry diff -> flat {metric: number} for the JSON artifact.

    Counters keep their delta; histograms contribute ``.count`` and
    ``.sum`` entries; gauges their last value.
    """
    flat: Dict[str, float] = {}
    for name, entry in delta.items():
        kind = entry.get("kind")
        if kind == "counter" or kind == "gauge":
            value = entry.get("value")
            if value is not None:
                flat[name] = float(value)
        elif kind == "histogram":
            flat[f"{name}.count"] = float(entry.get("count", 0))
            flat[f"{name}.sum"] = float(entry.get("sum", 0.0))
    return flat


class BenchmarkRunner:
    """Runs registered workloads and assembles BENCH documents.

    Parameters
    ----------
    size:
        The :class:`SizeSpec` every workload builds against.
    iterations / warmup:
        Override the size's defaults (mainly for tests).
    wall_clock / cpu_clock:
        Injectable monotonic clocks (seconds).
    trace_dir:
        When set, each workload runs once more under a fresh tracer
        and a ``trace_<workload>.json`` Chrome trace lands here.
    measure_memory:
        Disable to skip the tracemalloc pass (tests; peak reported 0).
    progress:
        Optional callable receiving one status line per workload.
    """

    def __init__(
        self,
        size: SizeSpec,
        iterations: Optional[int] = None,
        warmup: Optional[int] = None,
        wall_clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        trace_dir: Optional[str] = None,
        measure_memory: bool = True,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.size = size
        self.iterations = int(
            size.iterations if iterations is None else iterations
        )
        self.warmup = int(warmup if warmup is not None else size.warmup)
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.wall_clock = wall_clock
        self.cpu_clock = cpu_clock
        self.trace_dir = trace_dir
        self.measure_memory = measure_memory
        self.progress = progress

    # ------------------------------------------------------------------
    def run_workload(self, workload: Workload) -> WorkloadResult:
        """Measure one workload end to end."""
        prepared = workload.build(self.size)
        try:
            wall_samples: List[float] = []
            cpu_samples: List[float] = []
            with use_metrics() as registry:
                for _ in range(self.warmup):
                    prepared.run()
                before = registry.snapshot()
                for iteration in range(self.iterations):
                    with _span(
                        workload.name, "bench", iteration=iteration,
                        mode=self.size.mode,
                    ):
                        wall0 = self.wall_clock()
                        cpu0 = self.cpu_clock()
                        prepared.run()
                        cpu_samples.append(self.cpu_clock() - cpu0)
                        wall_samples.append(self.wall_clock() - wall0)
                metrics = _flatten_metrics(registry.diff(before))

            peak = 0
            if self.measure_memory:
                tracemalloc.start()
                try:
                    prepared.run()
                    _current, peak = tracemalloc.get_traced_memory()
                finally:
                    tracemalloc.stop()

            if self.trace_dir is not None:
                self._emit_trace(workload, prepared)
        finally:
            prepared.close()

        result = WorkloadResult(
            name=workload.name,
            suite=workload.suite,
            mode=self.size.mode,
            description=workload.description,
            iterations=self.iterations,
            warmup=self.warmup,
            wall=TimingStats(wall_samples),
            cpu=TimingStats(cpu_samples),
            peak_memory_bytes=int(peak),
            metrics=metrics,
        )
        if self.progress is not None:
            self.progress(
                f"{workload.name:<22} median {result.wall.median * 1e3:9.3f}ms "
                f"iqr {result.wall.iqr * 1e3:8.3f}ms "
                f"peak {peak / 1e6:8.2f}MB"
            )
        return result

    def _emit_trace(self, workload: Workload, prepared) -> None:
        import os

        os.makedirs(self.trace_dir, exist_ok=True)
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span(workload.name, "bench", mode=self.size.mode):
                prepared.run()
        filename = f"trace_{workload.name.replace('.', '_')}.json"
        write_chrome_trace(tracer, os.path.join(self.trace_dir, filename))

    # ------------------------------------------------------------------
    def run_suite(
        self, suite: str, workloads: Sequence[Workload]
    ) -> Dict[str, Any]:
        """Measure a suite's workloads into one BENCH document."""
        records = []
        for workload in workloads:
            if workload.suite != suite:
                continue
            records.append(self.run_workload(workload).as_record())
        return make_document(suite, self.size.mode, records)
