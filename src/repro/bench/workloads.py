"""Named benchmark workloads shared by the harness and the pytest
benches.

Each workload is one registered, buildable unit of work: ``build``
receives a :class:`SizeSpec` and returns a :class:`PreparedWorkload`
whose ``run()`` is the timed body (setup cost — ground-truth
simulation, sub-ensemble materialisation, store population — happens
in ``build`` and is excluded from timing).  The registry spans every
layer the paper's cost tables exercise: the three M2TD variants, the
two JE-stitches, the Tucker kernels, D-M2TD at 1/2/4 workers, and the
block store.

``BENCH_RESOLUTION`` / ``BENCH_RANK`` / ``BENCH_SEED`` are the single
source of truth for benchmark scale; ``benchmarks/_bench_utils.py``
re-exports them so the pytest-benchmark suites and this harness cannot
drift apart.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import BenchError

#: Parameter-space resolution every full-size benchmark runs at.
BENCH_RESOLUTION = 8

#: Per-mode target rank every full-size benchmark runs at.
BENCH_RANK = 3

#: RNG seed for all benchmark sampling.
BENCH_SEED = 7

#: CI-sized counterparts (the ``--quick`` flag).
QUICK_RESOLUTION = 5
QUICK_RANK = 2


@dataclass(frozen=True)
class SizeSpec:
    """One input-size configuration for every workload."""

    mode: str
    resolution: int
    rank: int
    seed: int
    iterations: int
    warmup: int


FULL = SizeSpec(
    mode="full",
    resolution=BENCH_RESOLUTION,
    rank=BENCH_RANK,
    seed=BENCH_SEED,
    iterations=7,
    warmup=2,
)

QUICK = SizeSpec(
    mode="quick",
    resolution=QUICK_RESOLUTION,
    rank=QUICK_RANK,
    seed=BENCH_SEED,
    iterations=5,
    warmup=1,
)


class PreparedWorkload:
    """A built workload: the timed thunk plus an optional teardown."""

    def __init__(
        self,
        run: Callable[[], object],
        close: Optional[Callable[[], None]] = None,
    ):
        self.run = run
        self._close = close

    def close(self) -> None:
        if self._close is not None:
            self._close()


@dataclass(frozen=True)
class Workload:
    """One registered benchmark workload."""

    name: str
    suite: str
    description: str
    build: Callable[[SizeSpec], PreparedWorkload]


#: The global registry, keyed by workload name.
WORKLOADS: Dict[str, Workload] = {}


def workload(
    name: str, suite: str, description: str
) -> Callable[[Callable[[SizeSpec], PreparedWorkload]], Callable]:
    """Register a builder under ``name`` in ``suite``."""

    def decorate(build: Callable[[SizeSpec], PreparedWorkload]):
        if name in WORKLOADS:
            raise BenchError(f"workload {name!r} registered twice")
        WORKLOADS[name] = Workload(
            name=name, suite=suite, description=description, build=build
        )
        return build

    return decorate


def suites() -> List[str]:
    """All suite names, sorted."""
    return sorted({w.suite for w in WORKLOADS.values()})


def get_workloads(
    suites_filter: Optional[Sequence[str]] = None,
) -> List[Workload]:
    """Workloads of the selected suites (all by default), name-sorted."""
    if suites_filter:
        unknown = set(suites_filter) - set(suites())
        if unknown:
            raise BenchError(
                f"unknown suite(s) {sorted(unknown)}; available: {suites()}"
            )
        selected = [
            w for w in WORKLOADS.values() if w.suite in set(suites_filter)
        ]
    else:
        selected = list(WORKLOADS.values())
    return sorted(selected, key=lambda w: (w.suite, w.name))


# ----------------------------------------------------------------------
# shared inputs (cached per size so a suite run builds each study once)
# ----------------------------------------------------------------------
_STUDY_CACHE: Dict[Tuple[str, int], object] = {}


def _study(size: SizeSpec):
    from ..core import EnsembleStudy
    from ..simulation import make_system

    key = ("double_pendulum", size.resolution)
    if key not in _STUDY_CACHE:
        _STUDY_CACHE[key] = EnsembleStudy.create(
            make_system("double_pendulum"), size.resolution
        )
    return _STUDY_CACHE[key]


def clear_input_cache() -> None:
    """Drop cached studies (tests use this to bound memory)."""
    _STUDY_CACHE.clear()


def _ranks(size: SizeSpec, n_modes: int) -> List[int]:
    return [size.rank] * n_modes


def _sub_ensembles(size: SizeSpec, sub_sampling: str, free_fraction: float):
    from ..sampling.budget import budget_for_fractions

    study = _study(size)
    partition = study.default_partition()
    budget = budget_for_fractions(partition, free_fraction=free_fraction)
    x1, x2, _cells, _runs = study.sample_sub_ensembles(
        partition, budget, sub_sampling=sub_sampling, seed=size.seed
    )
    return study, partition, x1, x2


def _sparse_sample(size: SizeSpec, density: float = 0.3):
    from ..sampling import RandomSampler
    from ..tensor import SparseTensor

    study = _study(size)
    shape = study.space.shape
    budget = max(1, int(density * study.truth.size))
    sample = RandomSampler(seed=size.seed).sample(shape, budget)
    values = study.truth[tuple(sample.coords.T)]
    return SparseTensor(shape, sample.coords, values)


# ----------------------------------------------------------------------
# suite: m2td — the paper's decomposition variants + JE-stitching
# ----------------------------------------------------------------------
def _m2td_variant(variant: str) -> Callable[[SizeSpec], PreparedWorkload]:
    def build(size: SizeSpec) -> PreparedWorkload:
        study = _study(size)
        ranks = _ranks(size, study.space.n_modes)
        return PreparedWorkload(
            lambda: study.run_m2td(ranks, variant=variant, seed=size.seed)
        )

    return build


for _variant in ("avg", "concat", "select"):
    workload(
        f"m2td.{_variant}",
        "m2td",
        f"end-to-end M2TD-{_variant.upper()}: PF-partition, sub-ensemble "
        "sampling, JE-stitch, decomposition",
    )(_m2td_variant(_variant))


@workload(
    "stitch.join",
    "m2td",
    "join-based JE-stitching of two cross-sampled sub-ensembles",
)
def _build_stitch_join(size: SizeSpec) -> PreparedWorkload:
    from ..core.stitch import join_tensor

    _study_, partition, x1, x2 = _sub_ensembles(size, "cross", 1.0)
    return PreparedWorkload(lambda: join_tensor(x1, x2, partition))


@workload(
    "stitch.zero_join",
    "m2td",
    "zero-join JE-stitching of randomly sampled (partially matched) "
    "sub-ensembles",
)
def _build_stitch_zero(size: SizeSpec) -> PreparedWorkload:
    from ..core.stitch import zero_join_tensor

    _study_, partition, x1, x2 = _sub_ensembles(size, "random", 0.6)
    return PreparedWorkload(lambda: zero_join_tensor(x1, x2, partition))


# ----------------------------------------------------------------------
# suite: kernels — the Tucker building blocks
# ----------------------------------------------------------------------
def _kernel(fn_name: str) -> Callable[[SizeSpec], PreparedWorkload]:
    def build(size: SizeSpec) -> PreparedWorkload:
        from ..tensor import tucker

        fn = getattr(tucker, fn_name)
        study = _study(size)
        truth = study.truth
        ranks = _ranks(size, truth.ndim)
        if fn_name == "hooi":
            return PreparedWorkload(lambda: fn(truth, ranks, n_iter=3))
        return PreparedWorkload(lambda: fn(truth, ranks))

    return build


for _fn, _desc in (
    ("hosvd", "plain HOSVD of the dense ground-truth tensor"),
    ("st_hosvd", "sequentially truncated HOSVD of the ground truth"),
    ("hooi", "HOOI refinement (3 sweeps) of the ground truth"),
):
    workload(f"kernel.{_fn}", "kernels", _desc)(_kernel(_fn))


def _sketched_kernel(fn_name: str) -> Callable[[SizeSpec], PreparedWorkload]:
    def build(size: SizeSpec) -> PreparedWorkload:
        from ..tensor import tucker

        fn = getattr(tucker, fn_name)
        truth = _study(size).truth
        ranks = _ranks(size, truth.ndim)
        return PreparedWorkload(
            lambda: fn(
                truth, ranks,
                method="sketched", keep_probability=0.5, seed=size.seed,
            )
        )

    return build


for _fn in ("hosvd", "st_hosvd"):
    workload(
        f"kernel.sketched.{_fn}",
        "kernels",
        f"MACH-sketched {_fn} (keep_probability=0.5) of the ground truth",
    )(_sketched_kernel(_fn))


def _gram_kernel(fn_name: str) -> Callable[[SizeSpec], PreparedWorkload]:
    def build(size: SizeSpec) -> PreparedWorkload:
        from ..tensor import gram

        fn = getattr(gram, fn_name)
        tensor = _sparse_sample(size).compile()
        ranks = _ranks(size, tensor.ndim)
        return PreparedWorkload(lambda: fn(tensor, ranks))

    return build


for _fn, _desc in (
    ("gram_hosvd",
     "Gram-matrix HOSVD of a 30%-dense sparse sample (no densification)"),
    ("gram_st_hosvd",
     "Gram-matrix ST-HOSVD of a 30%-dense sparse sample (no densification)"),
):
    workload(
        f"kernel.gram.{_fn.replace('gram_', '')}", "kernels", _desc
    )(_gram_kernel(_fn))


# ----------------------------------------------------------------------
# suite: distributed — D-M2TD through MapReduce at 1/2/4 workers
# ----------------------------------------------------------------------
def _dm2td(workers: int) -> Callable[[SizeSpec], PreparedWorkload]:
    def build(size: SizeSpec) -> PreparedWorkload:
        from ..distributed.dm2td import distributed_m2td
        from ..distributed.mapreduce import LocalMapReduceEngine
        from ..runtime import Runtime

        study, partition, x1, x2 = _sub_ensembles(size, "cross", 1.0)
        ranks = _ranks(size, study.space.n_modes)
        runtime = Runtime(workers=workers)
        engine = LocalMapReduceEngine(n_workers=workers)

        def run():
            return distributed_m2td(
                x1, x2, partition, ranks,
                variant="select", engine=engine, runtime=runtime,
            )

        def close():
            engine.close()
            runtime.shutdown()

        return PreparedWorkload(run, close)

    return build


for _workers in (1, 2, 4):
    workload(
        f"dm2td.workers{_workers}",
        "distributed",
        f"3-phase D-M2TD (MapReduce + task graph) at {_workers} worker(s)",
    )(_dm2td(_workers))


def _dm2td_external(workers: int) -> Callable[[SizeSpec], PreparedWorkload]:
    """D-M2TD dispatched through the supervised worker pool: real
    child processes, heartbeats, leases — measures the cross-process
    serialization + supervision overhead against the in-process rows."""

    def build(size: SizeSpec) -> PreparedWorkload:
        from ..distributed.dm2td import distributed_m2td
        from ..distributed.mapreduce import LocalMapReduceEngine
        from ..runtime import Runtime

        study, partition, x1, x2 = _sub_ensembles(size, "cross", 1.0)
        ranks = _ranks(size, study.space.n_modes)
        runtime = Runtime(workers=workers)
        engine = LocalMapReduceEngine(
            n_workers=workers, transport="process"
        )

        def run():
            return distributed_m2td(
                x1, x2, partition, ranks,
                variant="select", engine=engine, runtime=runtime,
            )

        def close():
            engine.close()
            runtime.shutdown()

        return PreparedWorkload(run, close)

    return build


for _workers in (2, 4):
    workload(
        f"dm2td.external.workers{_workers}",
        "distributed",
        f"3-phase D-M2TD on {_workers} supervised external worker "
        "processes (heartbeats + leases)",
    )(_dm2td_external(_workers))


# ----------------------------------------------------------------------
# suite: storage — the block tensor store
# ----------------------------------------------------------------------
def _temp_store():
    from ..storage import BlockTensorStore

    directory = tempfile.mkdtemp(prefix="repro-bench-store-")
    return BlockTensorStore(directory), directory


@workload(
    "store.put",
    "storage",
    "split + compress + persist a 30%-dense sparse ensemble tensor",
)
def _build_store_put(size: SizeSpec) -> PreparedWorkload:
    tensor = _sparse_sample(size)
    store, directory = _temp_store()
    return PreparedWorkload(
        lambda: store.put("bench", tensor, overwrite=True),
        close=lambda: shutil.rmtree(directory, ignore_errors=True),
    )


@workload(
    "store.get",
    "storage",
    "load + reassemble a stored sparse ensemble tensor",
)
def _build_store_get(size: SizeSpec) -> PreparedWorkload:
    tensor = _sparse_sample(size)
    store, directory = _temp_store()
    store.put("bench", tensor)
    return PreparedWorkload(
        lambda: store.get("bench"),
        close=lambda: shutil.rmtree(directory, ignore_errors=True),
    )


@workload(
    "store.slice_query",
    "storage",
    "hyperplane query reading only the blocks a slice touches",
)
def _build_store_slice(size: SizeSpec) -> PreparedWorkload:
    tensor = _sparse_sample(size)
    store, directory = _temp_store()
    store.put("bench", tensor)
    mode = 0
    index = tensor.shape[mode] // 2

    return PreparedWorkload(
        lambda: store.slice_query("bench", mode=mode, index=index),
        close=lambda: shutil.rmtree(directory, ignore_errors=True),
    )


# ----------------------------------------------------------------------
# suite: serving — factor-space queries under concurrent clients
# ----------------------------------------------------------------------
def _serving_catalog(size: SizeSpec):
    """A two-tenant catalog over the benchmark ensemble, bundles
    pre-warmed so the timed body measures serving, not HOSVD."""
    from ..serving import StudyCatalog

    directory = tempfile.mkdtemp(prefix="repro-bench-serving-")
    catalog = StudyCatalog(directory)
    n_modes = len(_study(size).space.shape)
    for key, density in (("primary", 0.3), ("secondary", 0.15)):
        catalog.register(
            key, _sparse_sample(size, density=density),
            ranks=_ranks(size, n_modes),
        )
        catalog.engine(key)  # warm both cache tiers
    return catalog, directory


def _serving_load(
    kind: str,
    n_clients: int,
    queries_per_client: int,
    batching: bool = True,
) -> Callable[[SizeSpec], PreparedWorkload]:
    def build(size: SizeSpec) -> PreparedWorkload:
        from ..serving import run_load

        catalog, directory = _serving_catalog(size)
        return PreparedWorkload(
            lambda: run_load(
                catalog,
                kind=kind,
                n_clients=n_clients,
                queries_per_client=queries_per_client,
                batching=batching,
                seed=size.seed,
            ),
            close=lambda: shutil.rmtree(directory, ignore_errors=True),
        )

    return build


for _name, _kind, _clients, _queries, _batching, _desc in (
    ("serving.point_c1", "point", 1, 100, True,
     "factor-space point queries, one sequential client"),
    ("serving.point_c100", "point", 100, 10, True,
     "batched point queries under 100 concurrent clients"),
    ("serving.point_c100_unbatched", "point", 100, 10, False,
     "the batching control: same stream, one request per drain"),
    ("serving.point_c10k", "point", 10_000, 1, True,
     "batched point queries under 10k concurrent clients"),
    ("serving.slice_c100", "slice", 100, 3, True,
     "hyperplane queries under 100 concurrent clients"),
    ("serving.topk_c20", "topk", 20, 1, True,
     "top-k anomaly queries (residual scan) under 20 clients"),
):
    workload(_name, "serving", _desc)(
        _serving_load(_kind, _clients, _queries, batching=_batching)
    )


# ----------------------------------------------------------------------
# suite: campaigns — the adaptive sample→decompose→resample loop
# ----------------------------------------------------------------------
def _epidemic_study(size: SizeSpec):
    from ..core import EnsembleStudy
    from ..simulation import make_system

    key = ("epidemic_seir", size.resolution)
    if key not in _STUDY_CACHE:
        _STUDY_CACHE[key] = EnsembleStudy.create(
            make_system("epidemic_seir"), size.resolution
        )
    return _STUDY_CACHE[key]


@workload(
    "campaign.epidemic",
    "campaigns",
    "ephemeral adaptive campaign on the epidemic study: explore sweep "
    "+ three error-guided confirm rounds (journal in memory, study "
    "pre-built)",
)
def _build_campaign_epidemic(size: SizeSpec) -> PreparedWorkload:
    from ..campaigns import CampaignOrchestrator, CampaignSpec

    study = _epidemic_study(size)
    pivot_size = size.resolution
    free_size = size.resolution ** 2
    batch = 4 * pivot_size
    explore_cost = 2 * max(1, round(0.25 * free_size)) * 2
    spec = CampaignSpec(
        scenario="epidemic_seir",
        budget=explore_cost + 4 * batch,
        batch=batch,
        success_delta=1e-9,
        resolution=size.resolution,
        rank=size.rank,
        seed=size.seed,
        max_rounds=3,
    )

    def run():
        with CampaignOrchestrator(spec, study=study) as orchestrator:
            return orchestrator.run()

    return PreparedWorkload(run)


def size_for(mode: str) -> SizeSpec:
    """The :class:`SizeSpec` for a mode name (``full`` / ``quick``)."""
    if mode == "full":
        return FULL
    if mode == "quick":
        return QUICK
    raise BenchError(f"unknown size mode {mode!r} (use 'full' or 'quick')")


__all__ = [
    "BENCH_RANK",
    "BENCH_RESOLUTION",
    "BENCH_SEED",
    "FULL",
    "QUICK",
    "PreparedWorkload",
    "SizeSpec",
    "Workload",
    "WORKLOADS",
    "clear_input_cache",
    "get_workloads",
    "size_for",
    "suites",
    "workload",
]
