"""repro.bench — the performance-trajectory harness.

Registered, named workloads (:mod:`~repro.bench.workloads`) covering
the M2TD variants, JE-stitching, the Tucker kernels, D-M2TD at several
worker counts, and the block store are measured by a
:class:`BenchmarkRunner` (warmup + repeated timed iterations, median +
IQR wall/CPU time, tracemalloc peak memory, metrics-registry deltas)
into schema-versioned ``BENCH_<suite>.json`` artifacts
(:mod:`~repro.bench.schema`), which :mod:`~repro.bench.compare` turns
into per-workload improved/regressed/unchanged verdicts with an
IQR-derived noise threshold.

CLI: ``python -m repro.bench run | compare | report`` (see
``docs/benchmarks.md``).
"""

from .compare import (
    Verdict,
    compare_paths,
    compare_records,
    format_verdicts,
    has_regressions,
    noise_threshold,
)
from .harness import BenchmarkRunner, TimingStats, WorkloadResult, percentile
from .schema import (
    SCHEMA,
    bench_filename,
    environment_fingerprint,
    load_document,
    make_document,
    validate_document,
    write_document,
)
from .workloads import (
    BENCH_RANK,
    BENCH_RESOLUTION,
    BENCH_SEED,
    FULL,
    QUICK,
    WORKLOADS,
    PreparedWorkload,
    SizeSpec,
    Workload,
    get_workloads,
    size_for,
    suites,
    workload,
)

__all__ = [
    "BENCH_RANK",
    "BENCH_RESOLUTION",
    "BENCH_SEED",
    "BenchmarkRunner",
    "FULL",
    "PreparedWorkload",
    "QUICK",
    "SCHEMA",
    "SizeSpec",
    "TimingStats",
    "Verdict",
    "WORKLOADS",
    "Workload",
    "WorkloadResult",
    "bench_filename",
    "compare_paths",
    "compare_records",
    "environment_fingerprint",
    "format_verdicts",
    "get_workloads",
    "has_regressions",
    "load_document",
    "make_document",
    "noise_threshold",
    "percentile",
    "size_for",
    "suites",
    "validate_document",
    "workload",
    "write_document",
]
