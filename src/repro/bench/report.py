"""Text rendering of BENCH documents (the ``report`` subcommand)."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def _key_metrics(metrics: Dict[str, float], top: int = 3) -> str:
    """The most informative counters for the table's last column."""
    ordered = sorted(metrics.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
    parts = [
        f"{name}={value:g}"
        for name, value in ordered[:top]
        if not name.endswith(".sum")
    ]
    return " ".join(parts)


def format_document(doc: Dict[str, Any]) -> str:
    """One suite document as a readable table."""
    env = doc["environment"]
    sha = env.get("git_sha") or "no-git"
    lines = [
        f"== suite {doc['suite']} ({doc['mode']}) — "
        f"py{env['python']} numpy{env['numpy']} "
        f"{env['cpu_count']} cpus @ {sha[:12]} ==",
        f"{'workload':<24} {'median(ms)':>11} {'iqr(ms)':>9} "
        f"{'cpu(ms)':>9} {'peak(MB)':>9}  key metrics",
        "-" * 96,
    ]
    for record in doc["workloads"]:
        wall = record["wall_seconds"]
        cpu = record["cpu_seconds"]
        lines.append(
            f"{record['name']:<24} {wall['median'] * 1e3:>11.3f} "
            f"{wall['iqr'] * 1e3:>9.3f} {cpu['median'] * 1e3:>9.3f} "
            f"{record['peak_memory_bytes'] / 1e6:>9.2f}  "
            f"{_key_metrics(record['metrics'])}"
        )
    return "\n".join(lines)


def format_documents(docs: Iterable[Dict[str, Any]]) -> str:
    blocks: List[str] = [format_document(doc) for doc in docs]
    return "\n\n".join(blocks)


def summarize_run(docs: Sequence[Dict[str, Any]]) -> str:
    n_workloads = sum(len(d["workloads"]) for d in docs)
    suites = ", ".join(d["suite"] for d in docs)
    return f"measured {n_workloads} workload(s) across suites: {suites}"
