"""Pivot-choice study on the double pendulum (paper Table VIII).

A decision maker rarely knows a priori which parameter to share
between the two PF-partitioned sub-systems.  This example sweeps all
five candidate pivots (time, both angles, both masses), keeping the
same-pendulum parameters grouped, and shows that *every* choice beats
conventional sampling by orders of magnitude — the paper's argument
that partitioning does not require precise system knowledge.

It also demonstrates the three M2TD variants side by side and the
ROW_SELECT diagnostic (which sub-system "won" each pivot-domain row).

Run:  python examples/pendulum_pivot_study.py
"""

import numpy as np

from repro import DoublePendulum, EnsembleStudy
from repro.runtime import session_runtime
from repro.core.row_select import row_select_source
from repro.experiments import format_table
from repro.experiments.table8 import pendulum_partition
from repro.sampling import RandomSampler, budget_for_fractions
from repro.tensor import truncated_svd

RESOLUTION = 8
RANKS = [3] * 5
SEED = 7


def pivot_sweep(study: EnsembleStudy) -> None:
    rows = []
    budget = None
    for pivot in ("t", "phi1", "phi2", "m1", "m2"):
        partition = pendulum_partition(study, pivot)
        accuracies = []
        for variant in ("avg", "concat", "select"):
            result = study.run_m2td(
                RANKS, variant=variant, pivot=pivot,
                partition=partition, seed=SEED,
            )
            accuracies.append(result.accuracy)
            budget = result.cells
        rows.append([pivot] + accuracies)
    random = study.run_conventional(RandomSampler(SEED), budget, RANKS)
    rows.append(["(Random)", random.accuracy, "-", "-"])
    print(format_table(["pivot", "AVG", "CONCAT", "SELECT"], rows))


def row_select_diagnostics(study: EnsembleStudy) -> None:
    """Which sub-system supplies each time-row of the pivot factor?"""
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = study.sample_sub_ensembles(
        partition, budget, seed=SEED
    )
    u1, s1, _ = truncated_svd(x1.unfold_csr(0), RANKS[0])
    u2, s2, _ = truncated_svd(x2.unfold_csr(0), RANKS[0])
    source = row_select_source(u1, u2)
    counts = {1: int((source == 1).sum()), 2: int((source == 2).sum())}
    print(
        f"\nROW_SELECT sources per time row: sub-system 1 -> "
        f"{counts[1]} rows, sub-system 2 -> {counts[2]} rows"
    )
    energies = np.linalg.norm(u1, axis=1), np.linalg.norm(u2, axis=1)
    print(
        "row energies (U1 vs U2): "
        + ", ".join(
            f"t{i}:{a:.2f}/{b:.2f}" for i, (a, b) in
            enumerate(zip(*energies))
        )
    )


def main() -> None:
    print(f"Building the double-pendulum study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        DoublePendulum(), resolution=RESOLUTION, runtime=session_runtime()
    )
    print("\n-- Pivot sweep (paper Table VIII shape) --")
    pivot_sweep(study)
    row_select_diagnostics(study)


if __name__ == "__main__":
    main()
