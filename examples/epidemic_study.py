"""Epidemic ensemble study — the paper's motivating use case.

Section I of the paper opens with epidemic-spread simulation (STEM):
experts sweep transmission parameters and need actionable patterns
from the ensemble under a hard simulation budget.  This example plays
that scenario end to end on an SEIR model:

1. the "observed outbreak" is a reference trajectory at unknown (to
   the analyst) parameters;
2. a budget-limited ensemble is collected with partition-stitch
   sampling and decomposed with M2TD-SELECT;
3. the decomposition answers the decision maker's questions: which
   parameter settings match the outbreak best, and how does the match
   vary with the transmission rate beta (the intervention lever)?

Run:  python examples/epidemic_study.py
"""

import numpy as np

from repro import EnsembleStudy
from repro.runtime import session_runtime
from repro.experiments import format_table
from repro.sampling import RandomSampler
from repro.simulation import make_system

RESOLUTION = 8
RANKS = [3] * 5
SEED = 7


def main() -> None:
    system = make_system("epidemic_seir")
    print(f"Building the SEIR study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        system, resolution=RESOLUTION, runtime=session_runtime()
    )
    print(
        "observed outbreak parameters (hidden from the analyst): "
        + ", ".join(
            f"{k}={v:.3f}" for k, v in study.observation.true_params.items()
        )
    )
    r0 = system.basic_reproduction_number(study.observation.true_params)
    print(f"observed R0 = {r0:.2f}\n")

    # Budget-limited ensemble + M2TD vs conventional sampling.
    m2td = study.run_m2td(RANKS, variant="select", seed=SEED)
    random_baseline = study.run_conventional(
        RandomSampler(SEED), m2td.cells, RANKS
    )
    print(
        format_table(
            ["scheme", "accuracy", "cells"],
            [
                [m2td.scheme, float(m2td.accuracy), m2td.cells],
                [
                    random_baseline.scheme,
                    float(random_baseline.accuracy),
                    random_baseline.cells,
                ],
            ],
        )
    )

    # Decision support: which simulated configurations track the
    # outbreak most closely (smallest mean distance over time)?
    reconstruction = m2td.m2td.reconstruct_original()
    mean_distance = reconstruction.mean(axis=-1)
    best = np.argsort(mean_distance.ravel())[:3]
    print("\nconfigurations closest to the observed outbreak (model-based):")
    rows = []
    param_shape = study.space.shape[: study.space.n_param_modes]
    for flat in best:
        indices = np.unravel_index(flat, param_shape)
        params = study.space.params_from_indices(indices)
        rows.append(
            [
                ", ".join(f"{k}={v:.3f}" for k, v in params.items()),
                float(mean_distance[indices]),
                system.basic_reproduction_number(params),
            ]
        )
    print(format_table(["configuration", "mean distance", "R0"], rows))

    # The intervention lever: how does the model-based match vary with
    # the transmission rate beta?
    beta_profile = mean_distance.mean(axis=(1, 2, 3))
    beta_grid = study.space.grid(0)
    print("\nmean distance per transmission rate beta:")
    print(
        format_table(
            ["beta", "mean distance"],
            [[f"{b:.2f}", float(d)] for b, d in zip(beta_grid, beta_profile)],
        )
    )
    closest = beta_grid[int(np.argmin(beta_profile))]
    print(
        f"\nThe ensemble's patterns place the outbreak's transmission "
        f"rate near beta = {closest:.2f} (true: "
        f"{study.observation.true_params['beta']:.2f}) — from "
        f"{m2td.cells} simulated cells instead of "
        f"{study.truth.size}."
    )


if __name__ == "__main__":
    main()
