"""Quickstart: partition-stitch sampling + M2TD in ~40 lines.

Builds a small double-pendulum ensemble study, runs M2TD-SELECT and
the three conventional sampling baselines at the same simulation
budget, and prints the accuracy comparison — the paper's headline
result (Table II) in miniature.

Run:  python examples/quickstart.py
"""

from repro import DoublePendulum, EnsembleStudy
from repro.runtime import session_runtime
from repro.experiments import format_table
from repro.sampling import GridSampler, RandomSampler, SliceSampler


def main() -> None:
    # One study = one ground-truth tensor: every parameter combination
    # of the system, simulated, at `resolution` values per mode.
    print("Building the double-pendulum study (resolution 8) ...")
    study = EnsembleStudy.create(
        DoublePendulum(), resolution=8, runtime=session_runtime()
    )
    ranks = [3] * 5  # Tucker rank per tensor mode

    # Partition-stitch sampling + M2TD-SELECT (the paper's method).
    m2td = study.run_m2td(ranks, variant="select", pivot="t", seed=7)

    # Conventional baselines at exactly the same cell budget.
    budget = study.matched_budget()
    rows = [
        [m2td.scheme, m2td.accuracy, m2td.decompose_seconds, m2td.cells]
    ]
    for sampler in (RandomSampler(7), GridSampler(), SliceSampler(7)):
        result = study.run_conventional(sampler, budget, ranks)
        rows.append(
            [result.scheme, result.accuracy, result.decompose_seconds,
             result.cells]
        )

    print()
    print(format_table(["scheme", "accuracy", "seconds", "cells"], rows))
    print()
    gain = m2td.accuracy / max(r[1] for r in rows[1:])
    print(
        f"M2TD-SELECT is {gain:,.0f}x more accurate than the best "
        "conventional scheme at the same simulation budget."
    )


if __name__ == "__main__":
    main()
