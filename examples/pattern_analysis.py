"""Reading the patterns out of an M2TD decomposition.

The paper's end goal is not the decomposition itself but what a
decision maker learns from it.  This example decomposes a double-
pendulum ensemble with M2TD-SELECT and then *interprets* the result:

* per-mode summaries — which parameter values dominate the ensemble's
  variance and how concentrated each mode is;
* dominant multi-way patterns — the largest core interactions,
  resolved back to concrete parameter values;
* the core energy spectrum — how few patterns carry the ensemble.

Run:  python examples/pattern_analysis.py
"""

import numpy as np

from repro import DoublePendulum, EnsembleStudy
from repro.runtime import session_runtime
from repro.analysis import (
    core_energy_spectrum,
    describe_patterns,
    dominant_patterns,
    energy_rank,
    summarize_factors,
)

RESOLUTION = 8
RANKS = [3] * 5
SEED = 7


def main() -> None:
    print(f"Building the double-pendulum study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        DoublePendulum(), resolution=RESOLUTION, runtime=session_runtime()
    )
    result = study.run_m2td(RANKS, variant="select", seed=SEED)
    print(f"M2TD-SELECT accuracy: {result.accuracy:.4f}\n")

    # The M2TD factors live in join mode order; map names accordingly.
    partition = result.m2td.partition
    join_names = [study.space.mode_names[m] for m in partition.join_modes]
    tucker = result.m2td.tucker

    print("-- Mode summaries --")
    for summary in summarize_factors(tucker, join_names):
        print(" ", summary.describe())

    print("\n-- Dominant multi-way patterns --")
    patterns = dominant_patterns(tucker, count=4)
    print(describe_patterns(patterns, mode_names=join_names))

    print("\n-- Resolving the top pattern to parameter values --")
    top = patterns[0]
    for axis, (index, loading) in enumerate(top.anchors):
        original_mode = partition.join_modes[axis]
        name = study.space.mode_names[original_mode]
        if original_mode == study.space.time_mode:
            step = study.space.time_indices[index]
            t_value = step / study.space.system.n_steps * study.space.system.t_end
            print(f"  {name}: sample {index} (t = {t_value:.2f} s)")
        else:
            value = study.space.grid(original_mode)[index]
            print(f"  {name}: grid index {index} (value {value:.3f})")

    spectrum = core_energy_spectrum(tucker)
    print(
        f"\nCore energy: top pattern carries {spectrum[0]:.0%}, "
        f"{energy_rank(tucker, 0.9)} of {tucker.core.size} core entries "
        "reach 90%."
    )


if __name__ == "__main__":
    main()
