"""D-M2TD on the simulated cluster (paper Table III).

Runs the 3-phase distributed M2TD pipeline (MapReduce jobs with
per-task accounting), verifies it reproduces the single-node result
bit-for-bit, and prints the modelled per-phase wall-clock for a range
of cluster sizes — phase 3 (core recovery) dominates and adding
servers shows diminishing returns, exactly the paper's shape.

Run:  python examples/distributed_cluster.py
"""

import numpy as np

from repro import ClusterModel, DoublePendulum, EnsembleStudy, distributed_m2td
from repro.runtime import session_runtime
from repro.experiments import format_table
from repro.sampling import budget_for_fractions

RESOLUTION = 8
RANKS = [3] * 5
SEED = 7
SERVERS = (1, 2, 4, 9, 18)


def main() -> None:
    print(f"Building the double-pendulum study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        DoublePendulum(), resolution=RESOLUTION, runtime=session_runtime()
    )
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, cells, runs = study.sample_sub_ensembles(
        partition, budget, seed=SEED
    )
    print(f"sub-ensembles: {cells} cells from {runs} simulation runs")

    print("\nRunning D-M2TD (3 MapReduce phases) ...")
    outcome = distributed_m2td(x1, x2, partition, RANKS, variant="select")

    single_node = study.run_m2td(RANKS, variant="select", seed=SEED)
    distributed_accuracy = outcome.result.accuracy(study.truth)
    assert np.isclose(distributed_accuracy, single_node.accuracy)
    print(
        f"accuracy {distributed_accuracy:.4f} — identical to the "
        "single-node M2TD-SELECT result"
    )

    rows = []
    for n_servers in SERVERS:
        cluster = ClusterModel(n_servers=n_servers)
        times = outcome.phase_times(cluster)
        rows.append(
            [
                n_servers,
                times["phase1"],
                times["phase2"],
                times["phase3"],
                sum(times.values()),
            ]
        )
    print()
    print(
        format_table(
            ["servers", "phase1 (s)", "phase2 (s)", "phase3 (s)", "total (s)"],
            rows,
        )
    )
    print(
        "\nPhase 3 (core recovery) dominates; speedup flattens as "
        "communication and per-task overheads take over."
    )


if __name__ == "__main__":
    main()
