"""Budget study on the Lorenz system (paper Tables V-VII).

Sweeps the simulation budget three ways and shows where the accuracy
goes:

1. shrink the pivot density ``P``           (gentle degradation),
2. shrink the sub-ensemble density ``E``    (steep degradation —
   effective density is proportional to P * E^2),
3. drop to a 10% random sub-space sample and compare plain join
   against zero-join stitching (zero-join recovers much of the loss).

Run:  python examples/lorenz_budget_study.py
"""

from repro import EnsembleStudy, Lorenz
from repro.runtime import session_runtime
from repro.experiments import format_table

RESOLUTION = 8
RANKS = [3] * 5
SEED = 7


def density_sweeps(study: EnsembleStudy) -> None:
    rows = []
    for fraction in (1.0, 0.5, 0.25):
        reduced_p = study.run_m2td(
            RANKS, pivot_fraction=fraction, seed=SEED
        )
        reduced_e = study.run_m2td(
            RANKS, free_fraction=fraction, seed=SEED
        )
        rows.append(
            [
                f"{fraction:.0%}",
                reduced_p.cells,
                reduced_p.accuracy,
                reduced_e.cells,
                reduced_e.accuracy,
            ]
        )
    print(
        format_table(
            [
                "fraction",
                "cells (P cut)",
                "accuracy (P cut)",
                "cells (E cut)",
                "accuracy (E cut)",
            ],
            rows,
        )
    )
    print(
        "\nCutting E costs much more accuracy than cutting P at the "
        "same budget: effective density ~ P * E^2."
    )


def zero_join_rescue(study: EnsembleStudy) -> None:
    rows = []
    for label, kwargs in (
        ("100% cross", dict()),
        ("10% random, join", dict(
            free_fraction=0.1, sub_sampling="random", join_kind="join")),
        ("10% random, zero-join", dict(
            free_fraction=0.1, sub_sampling="random", join_kind="zero")),
    ):
        result = study.run_m2td(RANKS, seed=SEED, **kwargs)
        rows.append([label, result.cells, result.join_nnz, result.accuracy])
    print(format_table(["setting", "cells", "join nnz", "accuracy"], rows))


def main() -> None:
    print(f"Building the Lorenz study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        Lorenz(), resolution=RESOLUTION, runtime=session_runtime()
    )
    print("\n-- P vs E density sweeps (paper Tables VI/VII shape) --")
    density_sweeps(study)
    print("\n-- Low budget and zero-joins (paper Table V shape) --")
    zero_join_rescue(study)


if __name__ == "__main__":
    main()
