"""Streaming M2TD: folding new time samples into a live decomposition.

A monitoring scenario: the ensemble's simulations keep running, and
every new batch of time samples appends a slab to both sub-ensembles.
Instead of refitting all factor matrices from scratch after every
batch, :class:`~repro.core.incremental.IncrementalM2TD` maintains each
matricization's truncated SVD incrementally (Brand-style row/column
appends) and only core recovery touches the accumulated join tensor.

The script streams a double-pendulum study one time step at a time and
reports, per step, the model's fit against the join tensor alongside a
fresh batch refit — the streamed model tracks the batch one closely.

Run:  python examples/streaming_ensemble.py
"""

import time

import numpy as np

from repro import DoublePendulum, EnsembleStudy
from repro.runtime import session_runtime
from repro.core.incremental import IncrementalM2TD, batch_reference
from repro.experiments import format_table
from repro.sampling import budget_for_fractions

RESOLUTION = 10
RANKS_JOIN = [3, 3, 3, 3, 3]  # pivot, free1 x2, free2 x2
SEED = 7
WARMUP_STEPS = 4


def join_fit(tucker, x1, x2):
    t = x1.shape[0]
    joined = 0.5 * (
        x1.reshape(x1.shape + (1, 1)) + x2.reshape((t, 1, 1) + x2.shape[1:])
    )
    reconstruction = tucker.reconstruct()
    return 1 - np.linalg.norm(reconstruction - joined) / np.linalg.norm(joined)


def main() -> None:
    print(f"Building the double-pendulum study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        DoublePendulum(), resolution=RESOLUTION, runtime=session_runtime()
    )
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, _cells, _runs = study.sample_sub_ensembles(
        partition, budget, seed=SEED
    )
    x1 = x1.to_dense()  # (T, phi1, m1)
    x2 = x2.to_dense()  # (T, phi2, m2)

    state = IncrementalM2TD(
        x1[:WARMUP_STEPS], x2[:WARMUP_STEPS], RANKS_JOIN, variant="select"
    )
    rows = []
    for t in range(WARMUP_STEPS, RESOLUTION):
        started = time.perf_counter()
        state.append(x1[t : t + 1], x2[t : t + 1])
        update_seconds = time.perf_counter() - started
        snapshot = state.decompose()
        started = time.perf_counter()
        batch = batch_reference(x1[: t + 1], x2[: t + 1], RANKS_JOIN)
        batch_seconds = time.perf_counter() - started
        rows.append(
            [
                t + 1,
                join_fit(snapshot.tucker, x1[: t + 1], x2[: t + 1]),
                join_fit(batch, x1[: t + 1], x2[: t + 1]),
                update_seconds * 1e3,
                batch_seconds * 1e3,
            ]
        )
    print()
    print(
        format_table(
            [
                "time samples",
                "streamed fit",
                "batch fit",
                "update (ms)",
                "refit (ms)",
            ],
            rows,
        )
    )
    print(
        "\nThe streamed model tracks the batch refit while touching "
        "only the new slab per step (factor updates); core recovery "
        "remains the shared cost, exactly the paper's phase-3 story."
    )


if __name__ == "__main__":
    main()
