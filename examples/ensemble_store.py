"""Persisting ensembles in the block tensor store (TensorDB-style).

Simulation ensembles are expensive to produce; a study typically
samples once and analyses many times.  This example stores the two
PF-partitioned sub-ensembles in the on-disk block store, reloads them
in a "later session", runs M2TD from the stored tensors, and uses the
slice query to pull a single time-slice without touching most blocks.

Run:  python examples/ensemble_store.py
"""

import tempfile
from pathlib import Path

from repro import BlockTensorStore, DoublePendulum, EnsembleStudy
from repro.runtime import session_runtime
from repro.core import m2td_select
from repro.sampling import budget_for_fractions

RESOLUTION = 8
RANKS = [3] * 5
SEED = 7


def main() -> None:
    print(f"Building the double-pendulum study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        DoublePendulum(), resolution=RESOLUTION, runtime=session_runtime()
    )
    partition = study.default_partition()
    budget = budget_for_fractions(partition, 1.0, 1.0)
    x1, x2, cells, _runs = study.sample_sub_ensembles(
        partition, budget, seed=SEED
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = BlockTensorStore(Path(tmp) / "ensembles")

        # --- session 1: simulate once, persist ---------------------
        entry1 = store.put("pendulum_sub1", x1, block_shape=(4, 4, 4))
        entry2 = store.put("pendulum_sub2", x2, block_shape=(4, 4, 4))
        print(
            f"stored {cells} cells as {entry1.n_blocks} + "
            f"{entry2.n_blocks} blocks under {store.directory}"
        )

        # --- session 2: reload and analyse --------------------------
        loaded1 = store.get("pendulum_sub1")
        loaded2 = store.get("pendulum_sub2")
        assert loaded1 == x1 and loaded2 == x2
        result = m2td_select(loaded1, loaded2, partition, RANKS)
        print(
            f"M2TD-SELECT from stored ensembles: accuracy "
            f"{result.accuracy(study.truth):.4f}"
        )

        # --- block-level access: one time slice ---------------------
        time_axis = 0  # sub-space mode order puts the pivot (t) first
        time_slice = store.slice_query("pendulum_sub1", time_axis, 3)
        layout = store.layout("pendulum_sub1")
        touched = sum(
            1 for _b in layout.blocks_touching_slice(time_axis, 3)
        )
        print(
            f"slice t=3 read {time_slice.nnz} cells touching "
            f"{touched}/{layout.n_blocks} blocks"
        )

        print(f"catalog: {store.names()}")


if __name__ == "__main__":
    main()
