"""Anomaly scanning: which configurations defy the global pattern?

A practical payoff of a fitted ensemble decomposition: the
reconstruction is the "expected" behaviour implied by the ensemble's
dominant patterns, so cells with large reconstruction residuals mark
simulation configurations that *break* the pattern — exactly the
scenarios a decision maker wants surfaced.

The script fits M2TD-SELECT on a Lorenz ensemble (whose parameter
ranges straddle chaotic and non-chaotic regimes), ranks parameter
configurations by residual energy, and resolves the top anomalies to
concrete parameter values.

Run:  python examples/anomaly_scan.py
"""

import numpy as np

from repro import EnsembleStudy, Lorenz
from repro.runtime import session_runtime
from repro.experiments import format_table

RESOLUTION = 8
RANKS = [3] * 5
SEED = 7
TOP_K = 5


def main() -> None:
    print(f"Building the Lorenz study (resolution {RESOLUTION}) ...")
    study = EnsembleStudy.create(
        Lorenz(), resolution=RESOLUTION, runtime=session_runtime()
    )
    result = study.run_m2td(RANKS, variant="select", seed=SEED)
    print(f"M2TD-SELECT accuracy: {result.accuracy:.4f}\n")

    expected = result.m2td.reconstruct_original()
    residual = study.truth - expected
    # Residual energy per parameter configuration (sum over time).
    per_config = np.sqrt((residual**2).sum(axis=-1))
    flat_order = np.argsort(-per_config.ravel())[:TOP_K]

    rows = []
    param_shape = study.space.shape[: study.space.n_param_modes]
    for flat in flat_order:
        indices = np.unravel_index(flat, param_shape)
        params = study.space.params_from_indices(indices)
        truth_norm = float(
            np.linalg.norm(study.truth[indices])
        )
        rows.append(
            [
                ", ".join(f"{k}={v:.2f}" for k, v in params.items()),
                float(per_config[indices]),
                truth_norm,
            ]
        )
    print(
        format_table(
            ["configuration", "residual energy", "fiber norm"], rows
        )
    )
    rho_values = [
        study.space.params_from_indices(np.unravel_index(f, param_shape))[
            "rho"
        ]
        for f in flat_order
    ]
    print(
        f"\nTop-{TOP_K} anomalies have rho in "
        f"[{min(rho_values):.1f}, {max(rho_values):.1f}] — the ensemble's "
        "dominant (smooth) patterns fail exactly where the dynamics turn "
        "most strongly convective."
    )


if __name__ == "__main__":
    main()
