"""The workload registry and a smoke build/run of each registered
workload at quick size.

The smoke test is the contract the harness relies on: every build
returns a PreparedWorkload whose run() completes and whose close() is
idempotent enough to call once.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    BENCH_RANK,
    BENCH_RESOLUTION,
    BENCH_SEED,
    FULL,
    QUICK,
    WORKLOADS,
    PreparedWorkload,
    clear_input_cache,
    get_workloads,
    size_for,
    suites,
    workload,
)
from repro.exceptions import BenchError


@pytest.fixture(scope="module", autouse=True)
def _drop_cached_studies():
    yield
    clear_input_cache()


class TestRegistry:
    def test_at_least_eight_workloads(self):
        assert len(WORKLOADS) >= 8

    def test_expected_coverage(self):
        names = set(WORKLOADS)
        for expected in (
            "m2td.avg", "m2td.concat", "m2td.select",
            "stitch.join", "stitch.zero_join",
            "kernel.hosvd", "kernel.st_hosvd", "kernel.hooi",
            "kernel.sketched.hosvd", "kernel.sketched.st_hosvd",
            "kernel.gram.hosvd", "kernel.gram.st_hosvd",
            "dm2td.workers1", "dm2td.workers2", "dm2td.workers4",
            "store.put", "store.get", "store.slice_query",
            "serving.point_c1", "serving.point_c100",
            "serving.point_c100_unbatched", "serving.point_c10k",
            "serving.slice_c100", "serving.topk_c20",
            "campaign.epidemic",
        ):
            assert expected in names, expected

    def test_suites_cover_all_layers(self):
        assert set(suites()) == {
            "m2td", "kernels", "distributed", "storage", "serving",
            "campaigns",
        }

    def test_get_workloads_filters_and_sorts(self):
        kernels = get_workloads(["kernels"])
        assert [w.name for w in kernels] == sorted(w.name for w in kernels)
        assert all(w.suite == "kernels" for w in kernels)
        assert len(get_workloads()) == len(WORKLOADS)

    def test_unknown_suite_raises(self):
        with pytest.raises(BenchError, match="unknown suite"):
            get_workloads(["nope"])

    def test_double_registration_raises(self):
        with pytest.raises(BenchError, match="twice"):
            workload("m2td.select", "m2td", "dup")(lambda size: None)

    def test_descriptions_nonempty(self):
        assert all(w.description for w in WORKLOADS.values())


class TestSizeSpecs:
    def test_size_for(self):
        assert size_for("full") is FULL
        assert size_for("quick") is QUICK
        with pytest.raises(BenchError, match="unknown size mode"):
            size_for("medium")

    def test_constants_flow_into_full_spec(self):
        assert FULL.resolution == BENCH_RESOLUTION
        assert FULL.rank == BENCH_RANK
        assert FULL.seed == QUICK.seed == BENCH_SEED

    def test_quick_is_smaller(self):
        assert QUICK.resolution < FULL.resolution
        assert QUICK.rank <= FULL.rank
        assert QUICK.iterations <= FULL.iterations


class TestQuickSmoke:
    """Every registered workload must build and run at quick size."""

    @pytest.mark.parametrize(
        "name", sorted(WORKLOADS), ids=sorted(WORKLOADS)
    )
    def test_build_and_run(self, name):
        prepared = WORKLOADS[name].build(QUICK)
        assert isinstance(prepared, PreparedWorkload)
        try:
            result = prepared.run()
            # a second run must also work (the harness iterates)
            prepared.run()
        finally:
            prepared.close()
        assert result is not None
