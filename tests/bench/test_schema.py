"""BENCH_*.json schema: fingerprint, round-trip, validation errors."""

from __future__ import annotations

import json

import pytest

from repro.bench.schema import (
    SCHEMA,
    bench_filename,
    environment_fingerprint,
    load_document,
    make_document,
    validate_document,
    write_document,
)
from repro.exceptions import BenchError


def _stats(samples):
    ordered = sorted(samples)
    return {
        "median": ordered[len(ordered) // 2],
        "iqr": ordered[-1] - ordered[0],
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
        "samples": list(samples),
    }


def _record(name="m2td.select", suite="m2td", mode="quick"):
    return {
        "name": name,
        "suite": suite,
        "mode": mode,
        "description": "a workload",
        "iterations": 3,
        "warmup": 1,
        "wall_seconds": _stats([0.01, 0.02, 0.03]),
        "cpu_seconds": _stats([0.001, 0.002, 0.003]),
        "peak_memory_bytes": 4096,
        "metrics": {"svd.calls": 3.0},
    }


class TestFingerprint:
    def test_required_keys_present_and_truthy(self):
        env = environment_fingerprint()
        for key in ("python", "numpy", "platform", "machine", "cpu_count",
                    "implementation"):
            assert env[key], key

    def test_git_sha_in_this_checkout(self):
        env = environment_fingerprint()
        assert env["git_sha"] is None or len(env["git_sha"]) == 40


class TestDocumentRoundTrip:
    def test_make_write_load(self, tmp_path):
        doc = make_document("m2td", "quick", [_record()])
        path = tmp_path / bench_filename("m2td")
        write_document(doc, str(path))
        loaded = load_document(str(path))
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["schema"] == SCHEMA
        assert loaded["workloads"][0]["wall_seconds"]["median"] == 0.02

    def test_workloads_sorted_by_name(self):
        doc = make_document(
            "m2td", "quick",
            [_record(name="m2td.b"), _record(name="m2td.a")],
        )
        names = [w["name"] for w in doc["workloads"]]
        assert names == ["m2td.a", "m2td.b"]

    def test_bench_filename(self):
        assert bench_filename("kernels") == "BENCH_kernels.json"


class TestValidation:
    def test_valid_document_passes(self):
        validate_document(make_document("m2td", "quick", [_record()]))

    @pytest.mark.parametrize("missing", ["schema", "suite", "environment",
                                         "workloads"])
    def test_missing_top_field(self, missing):
        doc = make_document("m2td", "quick", [_record()])
        del doc[missing]
        with pytest.raises(BenchError, match=missing):
            validate_document(doc)

    def test_wrong_schema_version(self):
        doc = make_document("m2td", "quick", [_record()])
        doc["schema"] = "repro.bench/99"
        with pytest.raises(BenchError, match="unsupported schema"):
            validate_document(doc)

    def test_empty_workloads(self):
        with pytest.raises(BenchError, match="no workloads"):
            make_document("m2td", "quick", [])

    def test_duplicate_workload_names(self):
        with pytest.raises(BenchError, match="duplicate"):
            make_document("m2td", "quick", [_record(), _record()])

    def test_suite_mismatch(self):
        with pytest.raises(BenchError, match="does not match"):
            make_document("m2td", "quick", [_record(suite="kernels")])

    def test_mode_mismatch(self):
        with pytest.raises(BenchError, match="mode"):
            make_document("m2td", "full", [_record(mode="quick")])

    def test_negative_statistic(self):
        record = _record()
        record["wall_seconds"]["median"] = -1.0
        with pytest.raises(BenchError, match="negative"):
            make_document("m2td", "quick", [record])

    def test_missing_samples(self):
        record = _record()
        record["wall_seconds"]["samples"] = []
        with pytest.raises(BenchError, match="samples"):
            make_document("m2td", "quick", [record])

    def test_missing_environment_field(self):
        doc = make_document("m2td", "quick", [_record()])
        del doc["environment"]["numpy"]
        with pytest.raises(BenchError, match="numpy"):
            validate_document(doc)

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchError, match="cannot read"):
            load_document(str(path))
