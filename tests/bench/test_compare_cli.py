"""Regression gating: verdict math plus the compare CLI exit codes.

The golden case: a synthetic 2x slowdown injected into a real artifact
must make ``python -m repro.bench compare`` exit nonzero, while
comparing a document against itself must exit 0.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.cli import main
from repro.bench.compare import (
    NOISE_CAP,
    compare_paths,
    compare_records,
    has_regressions,
    noise_threshold,
)
from repro.bench.schema import make_document, write_document
from repro.exceptions import BenchError


def _stats(samples):
    ordered = sorted(samples)
    n = len(ordered)
    return {
        "median": ordered[n // 2],
        "iqr": ordered[3 * n // 4] - ordered[n // 4],
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
        "samples": list(samples),
    }


def _record(name, median_ms=10.0, jitter_ms=0.5):
    base = median_ms / 1e3
    jitter = jitter_ms / 1e3
    samples = [base - jitter, base, base + jitter, base, base + 2 * jitter]
    return {
        "name": name,
        "suite": "m2td",
        "mode": "quick",
        "description": "synthetic",
        "iterations": len(samples),
        "warmup": 1,
        "wall_seconds": _stats(samples),
        "cpu_seconds": _stats(samples),
        "peak_memory_bytes": 1000,
        "metrics": {},
    }


def _slowed(doc, factor):
    slow = copy.deepcopy(doc)
    for record in slow["workloads"]:
        for key in ("wall_seconds", "cpu_seconds"):
            stats = record[key]
            for stat in ("median", "iqr", "min", "max", "mean"):
                stats[stat] *= factor
            stats["samples"] = [s * factor for s in stats["samples"]]
    return slow


@pytest.fixture()
def baseline_doc():
    return make_document(
        "m2td", "quick", [_record("m2td.select"), _record("stitch.join")]
    )


class TestVerdictMath:
    def test_identical_records_unchanged(self, baseline_doc):
        record = baseline_doc["workloads"][0]
        verdict = compare_records(record, record)
        assert verdict.verdict == "unchanged"
        assert verdict.ratio == pytest.approx(1.0)

    def test_two_x_slowdown_regresses(self, baseline_doc):
        record = baseline_doc["workloads"][0]
        slow = _slowed(baseline_doc, 2.0)["workloads"][0]
        verdict = compare_records(record, slow)
        assert verdict.verdict == "regressed"
        assert verdict.ratio == pytest.approx(2.0)

    def test_two_x_speedup_improves(self, baseline_doc):
        record = baseline_doc["workloads"][0]
        fast = _slowed(baseline_doc, 0.5)["workloads"][0]
        assert compare_records(record, fast).verdict == "improved"

    def test_within_noise_band_unchanged(self, baseline_doc):
        record = baseline_doc["workloads"][0]
        slightly = _slowed(baseline_doc, 1.1)["workloads"][0]
        assert compare_records(record, slightly).verdict == "unchanged"

    def test_threshold_capped_so_2x_always_gates(self, baseline_doc):
        noisy = copy.deepcopy(baseline_doc["workloads"][0])
        noisy["wall_seconds"]["iqr"] = noisy["wall_seconds"]["median"]
        threshold = noise_threshold(noisy, noisy)
        assert threshold == NOISE_CAP
        assert 1.0 + threshold < 2.0

    def test_verdict_gates_on_min_not_median(self, baseline_doc):
        # median doubles but the best time holds: noisy run, not a
        # regression
        record = baseline_doc["workloads"][0]
        noisy = copy.deepcopy(record)
        noisy["wall_seconds"]["median"] *= 2.0
        assert compare_records(record, noisy).verdict == "unchanged"


class TestComparePaths:
    def test_added_and_removed_do_not_gate(self, tmp_path, baseline_doc):
        cand = make_document("m2td", "quick", [
            baseline_doc["workloads"][0], _record("m2td.new"),
        ])
        base_path = tmp_path / "BENCH_base.json"
        cand_path = tmp_path / "BENCH_cand.json"
        write_document(baseline_doc, str(base_path))
        write_document(cand, str(cand_path))
        verdicts = compare_paths([str(base_path)], [str(cand_path)])
        by_name = {v.name: v.verdict for v in verdicts}
        assert by_name["m2td.new"] == "added"
        assert by_name["stitch.join"] == "removed"
        assert not has_regressions(verdicts)

    def test_directory_without_artifacts_errors(self, tmp_path):
        with pytest.raises(BenchError, match="no BENCH"):
            compare_paths([str(tmp_path)], [str(tmp_path)])


class TestCompareCLI:
    """End-to-end exit codes through ``python -m repro.bench``'s main."""

    @pytest.fixture()
    def artifact_dirs(self, tmp_path, baseline_doc):
        base_dir = tmp_path / "base"
        cand_dir = tmp_path / "cand"
        base_dir.mkdir()
        cand_dir.mkdir()
        write_document(baseline_doc, str(base_dir / "BENCH_m2td.json"))
        return base_dir, cand_dir

    def test_identical_artifacts_exit_zero(
        self, artifact_dirs, baseline_doc, capsys
    ):
        base_dir, cand_dir = artifact_dirs
        write_document(baseline_doc, str(cand_dir / "BENCH_m2td.json"))
        code = main(["compare", str(base_dir), str(cand_dir)])
        assert code == 0
        assert "unchanged" in capsys.readouterr().out

    def test_synthetic_2x_slowdown_exits_nonzero(
        self, artifact_dirs, baseline_doc, capsys
    ):
        base_dir, cand_dir = artifact_dirs
        write_document(
            _slowed(baseline_doc, 2.0), str(cand_dir / "BENCH_m2td.json")
        )
        code = main(["compare", str(base_dir), str(cand_dir)])
        assert code != 0
        out = capsys.readouterr()
        assert "regressed" in out.out
        assert "FAIL" in out.err

    def test_warn_only_downgrades_to_exit_zero(
        self, artifact_dirs, baseline_doc, capsys
    ):
        base_dir, cand_dir = artifact_dirs
        write_document(
            _slowed(baseline_doc, 2.0), str(cand_dir / "BENCH_m2td.json")
        )
        code = main(
            ["compare", str(base_dir), str(cand_dir), "--warn-only"]
        )
        assert code == 0
        assert "WARNING" in capsys.readouterr().err

    def test_missing_artifact_exits_two(self, tmp_path, capsys):
        code = main(["compare", str(tmp_path), str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_report_renders_table(self, artifact_dirs, baseline_doc, capsys):
        base_dir, _cand_dir = artifact_dirs
        code = main(["report", str(base_dir / "BENCH_m2td.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "m2td.select" in out
        assert "suite m2td" in out

    def test_quick_flag_threads_through_subprocess(self, tmp_path):
        # the cheapest true end-to-end check: the module entry point
        # parses and fails cleanly on an unknown suite
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", "run", "--quick",
             "--suite", "does-not-exist",
             "--output-dir", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "unknown suite" in proc.stderr


class TestGoldenArtifactJSON:
    def test_slowdown_detected_from_disk_round_trip(
        self, tmp_path, baseline_doc
    ):
        """Golden flow: write artifact, mutate the JSON on disk by 2x,
        compare the files — must regress."""
        base_path = tmp_path / "BENCH_m2td.json"
        write_document(baseline_doc, str(base_path))
        raw = json.loads(base_path.read_text())
        slow = _slowed(raw, 2.0)
        cand_path = tmp_path / "BENCH_m2td_cand.json"
        cand_path.write_text(json.dumps(slow))
        verdicts = compare_paths([str(base_path)], [str(cand_path)])
        assert has_regressions(verdicts)
        assert all(v.verdict == "regressed" for v in verdicts)
