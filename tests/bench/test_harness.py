"""Timing statistics and the runner, driven by a scripted fake clock.

The clocks are injected so every timing figure in these tests is exact
— no sleeps, no tolerance bands.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    BenchmarkRunner,
    TimingStats,
    WorkloadResult,
    _flatten_metrics,
    percentile,
)
from repro.bench.workloads import PreparedWorkload, SizeSpec, Workload


class FakeClock:
    """A clock that advances by a scripted delta on each reading pair.

    ``deltas[i]`` is the elapsed time the i-th start/stop pair should
    observe; reads beyond the script keep returning the last time.
    """

    def __init__(self, deltas):
        self._readings = []
        t = 0.0
        for delta in deltas:
            self._readings.append(t)
            self._readings.append(t + delta)
            t += delta + 1.0  # dead time between iterations is invisible
        self._i = 0

    def __call__(self) -> float:
        if self._i < len(self._readings):
            value = self._readings[self._i]
            self._i += 1
            return value
        return self._readings[-1]


def _tiny_size(iterations: int, warmup: int = 0) -> SizeSpec:
    return SizeSpec(
        mode="quick", resolution=3, rank=1, seed=0,
        iterations=iterations, warmup=warmup,
    )


def _noop_workload(counter=None) -> Workload:
    def build(size):
        def run():
            if counter is not None:
                counter.append(size.mode)

        return PreparedWorkload(run)

    return Workload(
        name="noop.case", suite="noop", description="does nothing",
        build=build,
    )


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestTimingStats:
    def test_median_and_iqr(self):
        # quartiles of 1..5 by linear interpolation: q1=2, q3=4
        stats = TimingStats([5.0, 1.0, 4.0, 2.0, 3.0])
        assert stats.median == 3.0
        assert stats.iqr == 2.0
        assert stats.min == 1.0
        assert stats.max == 5.0
        assert stats.mean == 3.0

    def test_iqr_zero_for_constant_samples(self):
        stats = TimingStats([2.0, 2.0, 2.0])
        assert stats.iqr == 0.0

    def test_as_dict_round_trips_samples(self):
        stats = TimingStats([0.25, 0.75])
        d = stats.as_dict()
        assert d["samples"] == [0.25, 0.75]
        assert d["median"] == 0.5
        assert set(d) == {"median", "iqr", "min", "max", "mean", "samples"}


class TestRunnerWithFakeClock:
    def test_scripted_deltas_become_samples(self):
        wall = FakeClock([0.010, 0.030, 0.020])
        cpu = FakeClock([0.001, 0.003, 0.002])
        runner = BenchmarkRunner(
            _tiny_size(iterations=3),
            wall_clock=wall,
            cpu_clock=cpu,
            measure_memory=False,
        )
        result = runner.run_workload(_noop_workload())
        assert result.wall.samples == pytest.approx([0.010, 0.030, 0.020])
        assert result.wall.median == pytest.approx(0.020)
        assert result.cpu.samples == pytest.approx([0.001, 0.003, 0.002])
        assert result.peak_memory_bytes == 0

    def test_warmup_iterations_are_untimed(self):
        calls = []
        runner = BenchmarkRunner(
            _tiny_size(iterations=2, warmup=3),
            wall_clock=FakeClock([0.1, 0.1]),
            cpu_clock=FakeClock([0.1, 0.1]),
            measure_memory=False,
        )
        result = runner.run_workload(_noop_workload(calls))
        # 3 warmup + 2 timed, no tracemalloc pass
        assert len(calls) == 5
        assert len(result.wall.samples) == 2

    def test_close_called_even_when_run_raises(self):
        closed = []

        def build(size):
            def run():
                raise RuntimeError("boom")

            return PreparedWorkload(run, close=lambda: closed.append(True))

        bad = Workload(
            name="bad.case", suite="noop", description="raises", build=build
        )
        runner = BenchmarkRunner(_tiny_size(iterations=1),
                                 measure_memory=False)
        with pytest.raises(RuntimeError, match="boom"):
            runner.run_workload(bad)
        assert closed == [True]

    def test_iterations_override_and_validation(self):
        runner = BenchmarkRunner(_tiny_size(iterations=5), iterations=2,
                                 measure_memory=False)
        assert runner.iterations == 2
        with pytest.raises(ValueError):
            BenchmarkRunner(_tiny_size(iterations=5), iterations=0)

    def test_memory_pass_reports_peak(self):
        def build(size):
            return PreparedWorkload(lambda: bytearray(256 * 1024))

        alloc = Workload(
            name="alloc.case", suite="noop", description="allocates",
            build=build,
        )
        runner = BenchmarkRunner(_tiny_size(iterations=1),
                                 measure_memory=True)
        result = runner.run_workload(alloc)
        assert result.peak_memory_bytes >= 256 * 1024


class TestFlattenMetrics:
    def test_counters_gauges_histograms(self):
        delta = {
            "a.counter": {"kind": "counter", "value": 3},
            "a.gauge": {"kind": "gauge", "value": 1.5},
            "a.hist": {"kind": "histogram", "count": 4, "sum": 10.0,
                       "mean": 2.5},
        }
        flat = _flatten_metrics(delta)
        assert flat == {
            "a.counter": 3.0,
            "a.gauge": 1.5,
            "a.hist.count": 4.0,
            "a.hist.sum": 10.0,
        }


class TestWorkloadResultRecord:
    def test_record_shape(self):
        result = WorkloadResult(
            name="x", suite="s", mode="quick", description="d",
            iterations=2, warmup=1,
            wall=TimingStats([0.1, 0.2]), cpu=TimingStats([0.01, 0.02]),
            peak_memory_bytes=128, metrics={"m": 1.0},
        )
        record = result.as_record()
        assert record["wall_seconds"]["samples"] == [0.1, 0.2]
        assert record["peak_memory_bytes"] == 128
        assert record["metrics"] == {"m": 1.0}
