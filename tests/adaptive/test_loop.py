"""Adaptive ensemble growth."""

import numpy as np
import pytest

from repro.adaptive import AdaptiveEnsembleBuilder, random_reference
from repro.exceptions import BudgetError, SamplingError
from repro.sampling import RandomSampler

RANKS = [2] * 5


@pytest.fixture()
def builder(pendulum_study):
    partition = pendulum_study.default_partition()
    return AdaptiveEnsembleBuilder(
        pendulum_study,
        partition,
        RANKS,
        initial_fraction=0.2,
        batch_size=2,
        seed=0,
    )


class TestConstruction:
    def test_rejects_bad_fraction(self, pendulum_study):
        partition = pendulum_study.default_partition()
        with pytest.raises(SamplingError):
            AdaptiveEnsembleBuilder(
                pendulum_study, partition, RANKS, initial_fraction=0.0
            )
        with pytest.raises(SamplingError):
            AdaptiveEnsembleBuilder(
                pendulum_study, partition, RANKS, initial_fraction=1.0
            )

    def test_rejects_bad_batch(self, pendulum_study):
        partition = pendulum_study.default_partition()
        with pytest.raises(SamplingError):
            AdaptiveEnsembleBuilder(
                pendulum_study, partition, RANKS, batch_size=0
            )


class TestRun:
    def test_budget_respected(self, builder, pendulum_study):
        budget = pendulum_study.matched_budget() // 2
        outcome = builder.run(budget)
        assert outcome.cells_used <= budget
        assert outcome.rounds  # at least one adaptive round happened

    def test_budget_too_small_rejected(self, builder):
        with pytest.raises(BudgetError):
            builder.run(10)

    def test_selection_grows_each_round(self, builder, pendulum_study):
        budget = pendulum_study.matched_budget() // 2
        outcome = builder.run(budget)
        initial = max(
            1, int(round(0.2 * builder._free_sizes[1]))
        )
        assert outcome.selected[1].shape[0] > initial
        # selections are unique and within range
        for which in (1, 2):
            flat = outcome.selected[which]
            assert np.unique(flat).shape[0] == flat.shape[0]
            assert flat.max() < builder._free_sizes[which]

    def test_rounds_monotone_cells(self, builder, pendulum_study):
        budget = pendulum_study.matched_budget() // 2
        outcome = builder.run(budget)
        cells = [r.cells_used for r in outcome.rounds]
        assert cells == sorted(cells)

    def test_accuracy_meaningful(self, builder, pendulum_study):
        budget = pendulum_study.matched_budget() // 2
        outcome = builder.run(budget)
        accuracy = outcome.result.accuracy(pendulum_study.truth)
        conventional = pendulum_study.run_conventional(
            RandomSampler(0), outcome.cells_used, RANKS
        )
        assert accuracy > 3 * max(conventional.accuracy, 1e-9)


class TestRandomReference:
    def test_same_budget(self, pendulum_study):
        partition = pendulum_study.default_partition()
        budget = pendulum_study.matched_budget() // 2
        result, cells = random_reference(
            pendulum_study, partition, RANKS, budget, seed=1
        )
        assert cells <= budget
        assert 0 < result.accuracy(pendulum_study.truth) < 1

    def test_comparable_to_adaptive(self, builder, pendulum_study):
        """Adaptive and random fiber selection land in the same
        accuracy regime (the experiment's negative result)."""
        partition = pendulum_study.default_partition()
        budget = pendulum_study.matched_budget() // 2
        adaptive = builder.run(budget)
        reference, _cells = random_reference(
            pendulum_study, partition, RANKS, adaptive.cells_used, seed=0
        )
        a = adaptive.result.accuracy(pendulum_study.truth)
        b = reference.accuracy(pendulum_study.truth)
        assert a > 0.3 * b  # same order of magnitude
