"""Property-based tests (hypothesis) on the core data structures and
the invariants the paper's arithmetic relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import join_tensor, zero_join_tensor
from repro.core.row_select import align_columns, row_select
from repro.sampling import (
    GridSampler,
    PartitionBudget,
    PFPartition,
    RandomSampler,
)
from repro.tensor import (
    SparseTensor,
    deterministic_signs,
    fold,
    hosvd,
    khatri_rao,
    ttm,
    unfold,
)

shapes3 = st.tuples(
    st.integers(2, 5), st.integers(2, 5), st.integers(2, 5)
)


def dense_tensors(shape_strategy=shapes3):
    return shape_strategy.flatmap(
        lambda shape: hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )


class TestUnfoldProperties:
    @given(tensor=dense_tensors(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_fold_inverts_unfold(self, tensor, data):
        mode = data.draw(st.integers(0, tensor.ndim - 1))
        assert np.allclose(
            fold(unfold(tensor, mode), mode, tensor.shape), tensor
        )

    @given(tensor=dense_tensors(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_unfold_preserves_norm(self, tensor, data):
        mode = data.draw(st.integers(0, tensor.ndim - 1))
        assert np.linalg.norm(unfold(tensor, mode)) == pytest.approx(
            np.linalg.norm(tensor.ravel()), abs=1e-9
        )


class TestTtmProperties:
    @given(tensor=dense_tensors(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_linearity(self, tensor, data):
        mode = data.draw(st.integers(0, tensor.ndim - 1))
        rows = data.draw(st.integers(1, 4))
        matrix = data.draw(
            hnp.arrays(
                np.float64,
                (rows, tensor.shape[mode]),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        assert np.allclose(
            ttm(2.0 * tensor, matrix, mode), 2.0 * ttm(tensor, matrix, mode)
        )


class TestSparseProperties:
    @given(
        dense=dense_tensors(),
    )
    @settings(max_examples=30, deadline=None)
    def test_from_dense_roundtrip(self, dense):
        tensor = SparseTensor.from_dense(dense)
        assert np.allclose(tensor.to_dense(), dense)

    @given(dense=dense_tensors(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_transpose_matches_numpy(self, dense, data):
        perm = data.draw(st.permutations(range(dense.ndim)))
        tensor = SparseTensor.from_dense(dense)
        assert np.allclose(
            tensor.transpose(tuple(perm)).to_dense(),
            np.transpose(dense, perm),
        )


class TestSvdProperties:
    @given(
        matrix=hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 8), st.integers(2, 8)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_deterministic_signs_idempotent(self, matrix):
        once = deterministic_signs(matrix)
        assert np.allclose(deterministic_signs(once), once)


class TestHosvdProperties:
    @given(tensor=dense_tensors())
    @settings(max_examples=15, deadline=None)
    def test_full_rank_hosvd_is_exact(self, tensor):
        # A mode's rank is capped by both its size and the product of
        # the other modes (the matricization's column count).
        total = int(np.prod(tensor.shape))
        ranks = tuple(
            min(s, total // s) for s in tensor.shape
        )
        tucker = hosvd(tensor, ranks)
        assert tucker.relative_error(tensor) < 1e-8 or (
            np.linalg.norm(tensor) == 0
        )


class TestKhatriRaoProperties:
    @given(
        cols=st.integers(1, 4),
        rows_a=st.integers(1, 5),
        rows_b=st.integers(1, 5),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_shape(self, cols, rows_a, rows_b, data):
        a = data.draw(
            hnp.arrays(np.float64, (rows_a, cols), elements=st.floats(-3, 3))
        )
        b = data.draw(
            hnp.arrays(np.float64, (rows_b, cols), elements=st.floats(-3, 3))
        )
        assert khatri_rao([a, b]).shape == (rows_a * rows_b, cols)


class TestSamplerProperties:
    @given(budget=st.integers(1, 200), seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_random_sampler_budget_and_bounds(self, budget, seed):
        shape = (4, 5, 3, 4)
        budget = min(budget, int(np.prod(shape)))
        sample = RandomSampler(seed=seed).sample(shape, budget)
        assert sample.n_cells == budget
        assert (sample.coords >= 0).all()
        assert (sample.coords < np.asarray(shape)).all()

    @given(budget=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_grid_sampler_never_exceeds_budget(self, budget):
        shape = (4, 5, 3, 4)
        budget = min(budget, int(np.prod(shape)))
        sample = GridSampler().sample(shape, budget)
        assert 1 <= sample.n_cells <= budget


class TestStitchProperties:
    @given(
        n1=st.integers(1, 10),
        n2=st.integers(1, 10),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=25, deadline=None)
    def test_join_entry_count_formula(self, n1, n2, seed):
        """Join nnz == sum over pivots of |E1(p)| * |E2(p)|."""
        part = PFPartition((3, 3, 3, 3, 3), (4,), (0, 1), (2, 3))
        gen = np.random.default_rng(seed)

        def random_sub(which, count):
            shape = part.sub_shape(which)
            size = int(np.prod(shape))
            flat = gen.choice(size, size=min(count, size), replace=False)
            coords = np.stack(np.unravel_index(flat, shape), axis=1)
            return SparseTensor(
                shape, coords, gen.standard_normal(coords.shape[0])
            )

        x1 = random_sub(1, n1)
        x2 = random_sub(2, n2)
        joined = join_tensor(x1, x2, part)
        expected = 0
        for pivot in range(3):
            count1 = int((x1.coords[:, 0] == pivot).sum())
            count2 = int((x2.coords[:, 0] == pivot).sum())
            expected += count1 * count2
        assert joined.nnz == expected

    @given(n1=st.integers(1, 10), n2=st.integers(1, 10), seed=st.integers(0, 999))
    @settings(max_examples=25, deadline=None)
    def test_zero_join_supersedes_join(self, n1, n2, seed):
        """Every join cell appears in the zero-join with the same value."""
        part = PFPartition((3, 3, 3, 3, 3), (4,), (0, 1), (2, 3))
        gen = np.random.default_rng(seed)

        def random_sub(which, count):
            shape = part.sub_shape(which)
            size = int(np.prod(shape))
            flat = gen.choice(size, size=min(count, size), replace=False)
            coords = np.stack(np.unravel_index(flat, shape), axis=1)
            return SparseTensor(
                shape, coords, gen.standard_normal(coords.shape[0])
            )

        x1 = random_sub(1, n1)
        x2 = random_sub(2, n2)
        joined = join_tensor(x1, x2, part)
        zero_joined = zero_join_tensor(x1, x2, part)
        zero_dense = zero_joined.to_dense()
        for index, value in joined.items():
            assert zero_dense[index] == pytest.approx(value)


class TestRowSelectProperties:
    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_selected_rows_maximize_energy(self, rows, cols, data):
        u1 = data.draw(
            hnp.arrays(np.float64, (rows, cols), elements=st.floats(-5, 5))
        )
        u2 = data.draw(
            hnp.arrays(np.float64, (rows, cols), elements=st.floats(-5, 5))
        )
        selected = row_select(u1, u2)
        aligned = align_columns(u1, u2)
        for i in range(rows):
            expected = max(
                np.linalg.norm(u1[i]), np.linalg.norm(aligned[i])
            )
            assert np.linalg.norm(selected[i]) == pytest.approx(expected)


class TestBudgetProperties:
    @given(
        p=st.integers(1, 20), e1=st.integers(1, 20), e2=st.integers(1, 20)
    )
    @settings(max_examples=50, deadline=None)
    def test_budget_arithmetic(self, p, e1, e2):
        budget = PartitionBudget(p, e1, e2)
        assert budget.cells == p * (e1 + e2)
        assert budget.join_entries == p * e1 * e2
        # effective gain never below half the smaller side
        assert budget.join_entries * 2 >= budget.cells * min(e1, e2) / max(e1, e2)
