"""Serving-layer telemetry: labelled error counters, shed accounting
in the queue-wait histogram, and structured shed events.
"""

import asyncio

import pytest

from repro.exceptions import QueryError, ServingOverloadError
from repro.observability import MetricsRegistry, use_event_log, use_metrics
from repro.serving import ServingServer


def run(coro):
    return asyncio.run(coro)


class TestLabelledErrorCounters:
    def test_error_kind_breaks_out_by_exception_type(self, catalog):
        async def go():
            # A bad slice mode passes admission and fails inside the
            # drain — the path the labelled counters instrument.
            async with ServingServer(catalog) as server:
                with pytest.raises(QueryError):
                    await server.slice("alpha", 9, 0)

        with use_metrics(MetricsRegistry()) as registry:
            run(go())
            state = registry.as_dict()
        assert state["serving.errors"]["value"] == 1.0
        assert state["serving.errors.QueryError"]["value"] == 1.0

    def test_served_requests_leave_error_counters_untouched(self, catalog):
        async def go():
            async with ServingServer(catalog) as server:
                await server.point("alpha", [0, 0, 0])

        with use_metrics(MetricsRegistry()) as registry:
            run(go())
            names = registry.names()
        assert not [n for n in names if n.startswith("serving.errors")]


class TestShedAccounting:
    def shed_once(self, catalog, registry):
        """Force one shed: a zero-capacity queue rejects the second
        concurrent request."""

        async def go():
            async with ServingServer(catalog, max_queue=1) as server:
                tasks = [
                    asyncio.create_task(server.point("alpha", [0, 0, 0]))
                    for _ in range(8)
                ]
                return await asyncio.gather(*tasks, return_exceptions=True)

        with use_metrics(registry), use_event_log() as events:
            results = run(go())
        shed = [r for r in results if isinstance(r, ServingOverloadError)]
        return shed, events

    def test_shed_lands_in_queue_wait_histogram(self, catalog):
        registry = MetricsRegistry()
        shed, events = self.shed_once(catalog, registry)
        if not shed:
            pytest.skip("scheduler drained every request; nothing shed")
        state = registry.as_dict()
        assert state["serving.shed"]["value"] == len(shed)
        # Every admission decision — served or shed — shows up in the
        # queue-wait histogram; shed requests waited exactly 0 s.
        waits = state["serving.queue_wait_seconds"]
        assert waits["count"] >= len(shed)
        assert waits["min"] == 0.0
        shed_events = events.records(event="serving.shed")
        assert len(shed_events) == len(shed)
        assert shed_events[0]["correlation_id"] == "alpha/point"
        assert shed_events[0]["limit"] == 1

    def test_overload_error_is_labelled(self, catalog):
        registry = MetricsRegistry()
        shed, _ = self.shed_once(catalog, registry)
        if not shed:
            pytest.skip("scheduler drained every request; nothing shed")
        # Shedding happens at admission, before _resolve: it must NOT
        # count as a serving error (the client got a clean overload
        # signal, not a failed computation).
        assert "serving.errors" not in registry.names()
