"""Factor bundles: fingerprints, the disk tier, and admission control."""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.runtime import ResultCache
from repro.serving import (
    FactorBundle,
    HotFactorCache,
    bundle_fingerprint,
    compute_bundle,
    load_bundle,
)
from repro.storage import BlockTensorStore
from repro.tensor import hosvd

from .conftest import make_sparse


@pytest.fixture()
def stored(tmp_path):
    tensor = make_sparse((6, 5, 4), seed=4)
    store = BlockTensorStore(tmp_path / "store")
    store.put("t", tensor)
    return store, store.catalog.get("t")


class TestFingerprint:
    def test_stable(self, stored):
        store, entry = stored
        a = bundle_fingerprint("s", entry, (3, 3, 3), "hosvd")
        b = bundle_fingerprint("s", entry, (3, 3, 3), "hosvd")
        assert a == b

    def test_varies_with_request(self, stored):
        _store, entry = stored
        base = bundle_fingerprint("s", entry, (3, 3, 3), "hosvd")
        assert bundle_fingerprint("s2", entry, (3, 3, 3), "hosvd") != base
        assert bundle_fingerprint("s", entry, (2, 2, 2), "hosvd") != base
        assert bundle_fingerprint("s", entry, (3, 3, 3), "other") != base


class TestComputeAndLoad:
    def test_compute_clips_ranks(self, stored):
        store, entry = stored
        bundle = compute_bundle("s", store, entry, (9, 9, 9))
        assert bundle.tucker.shape == entry.shape
        assert bundle.tucker.rank == entry.shape  # clipped to extents
        assert bundle.nbytes > 0

    def test_unknown_method(self, stored):
        store, entry = stored
        with pytest.raises(ServingError, match="method"):
            compute_bundle("s", store, entry, (3, 3, 3), method="cp")

    def test_load_without_cache_recomputes(self, stored):
        store, entry = stored
        bundle = load_bundle("s", store, entry, (3, 3, 3), result_cache=None)
        assert isinstance(bundle, FactorBundle)

    def test_load_roundtrips_through_disk(self, stored, tmp_path):
        store, entry = stored
        cache = ResultCache(max_entries=1, directory=tmp_path / "cache")
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = load_bundle(
                "s", store, entry, (3, 3, 3), result_cache=cache
            )
            second = load_bundle(
                "s", store, entry, (3, 3, 3), result_cache=cache
            )
        assert registry.counter("serving.bundles_computed").value == 1
        assert registry.counter("serving.bundle_disk_hits").value == 1
        assert np.allclose(first.tucker.core, second.tucker.core)
        for f1, f2 in zip(first.tucker.factors, second.tucker.factors):
            assert np.allclose(f1, f2)

    def test_undecodable_entry_heals_by_recompute(self, stored, tmp_path):
        """A structurally valid cache entry that is not a bundle is
        treated as a miss, not served."""
        store, entry = stored
        cache = ResultCache(max_entries=1, directory=tmp_path / "cache")
        key = bundle_fingerprint("s", entry, (3, 3, 3), "hosvd")
        cache.put(key, {"core": np.ones((2, 2)), "factors": [np.ones(3)]})
        registry = MetricsRegistry()
        with use_metrics(registry):
            bundle = load_bundle(
                "s", store, entry, (3, 3, 3), result_cache=cache
            )
        assert registry.counter("serving.bundle_decode_errors").value == 1
        assert registry.counter("serving.bundles_computed").value == 1
        assert bundle.tucker.shape == entry.shape


def _bundle(study: str, nbytes_target: int = 0) -> FactorBundle:
    side = max(2, int(np.sqrt(max(nbytes_target, 64) / 8 / 2)))
    tucker = hosvd(
        np.random.default_rng(len(study)).standard_normal((side, side)),
        [2, 2],
    )
    return FactorBundle(study=study, tucker=tucker, fingerprint=study)


class TestHotFactorCache:
    def test_admit_immediately_then_hit(self):
        cache = HotFactorCache(max_entries=4)
        calls = []

        def loader():
            calls.append(1)
            return _bundle("a")

        cache.get("a", loader)
        cache.get("a", loader)
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert "a" in cache

    def test_admit_after_two_requests(self):
        cache = HotFactorCache(max_entries=4, admit_after=2)
        calls = []

        def loader():
            calls.append(1)
            return _bundle("a")

        cache.get("a", loader)            # miss, rejected (1 request)
        assert "a" not in cache
        assert cache.stats.rejected == 1
        cache.get("a", loader)            # miss, admitted (2 requests)
        assert "a" in cache
        cache.get("a", loader)            # hit
        assert len(calls) == 2
        assert cache.stats.hits == 1

    def test_lru_eviction_on_entry_limit(self):
        cache = HotFactorCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get(key, lambda key=key: _bundle(key))
        assert cache.stats.evictions == 1
        assert "a" not in cache and "b" in cache and "c" in cache
        # touching "b" makes "c" the LRU victim
        cache.get("b", lambda: _bundle("b"))
        cache.get("d", lambda: _bundle("d"))
        assert "c" not in cache and "b" in cache

    def test_byte_budget_eviction(self):
        probe = _bundle("probe", 4096)
        cache = HotFactorCache(
            max_entries=64,
            max_bytes=int(probe.nbytes * 2.5),
            admission_fraction=1.0,
        )
        for key in ("a", "b", "c"):
            cache.get(key, lambda key=key: _bundle(key, 4096))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.nbytes <= cache.max_bytes

    def test_oversized_bundle_never_admitted(self):
        probe = _bundle("big", 8192)
        cache = HotFactorCache(
            max_bytes=probe.nbytes, admission_fraction=0.5
        )
        cache.get("big", lambda: _bundle("big", 8192))
        assert "big" not in cache
        assert cache.stats.rejected == 1

    def test_invalidate(self):
        cache = HotFactorCache()
        cache.get("a", lambda: _bundle("a"))
        assert "a" in cache
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.nbytes == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_entries": 0},
            {"admit_after": 0},
            {"admission_fraction": 0.0},
            {"admission_fraction": 1.5},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ServingError):
            HotFactorCache(**kwargs)
