"""FactorEngine correctness: factor-space answers equal dense answers."""

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.serving import FactorEngine
from repro.storage import BlockTensorStore
from repro.tensor import SparseTensor, hosvd
from repro.tensor.tucker import clip_ranks

from .conftest import make_sparse


@pytest.fixture(scope="module")
def tucker():
    rng = np.random.default_rng(11)
    dense = rng.standard_normal((5, 4, 3))
    return hosvd(dense, [3, 3, 2])


@pytest.fixture(scope="module")
def engine(tucker):
    return FactorEngine(tucker, study="test")


@pytest.fixture(scope="module")
def full(tucker):
    return tucker.reconstruct()


class TestPoint:
    def test_every_cell_matches_reconstruct(self, engine, full):
        for index in np.ndindex(full.shape):
            assert engine.point(index) == pytest.approx(
                full[index], abs=1e-10
            )

    def test_edge_indices(self, engine, full):
        zero = tuple(0 for _ in full.shape)
        last = tuple(s - 1 for s in full.shape)
        assert engine.point(zero) == pytest.approx(full[zero], abs=1e-10)
        assert engine.point(last) == pytest.approx(full[last], abs=1e-10)

    def test_batch_equals_individual(self, engine, full):
        coords = np.array([[0, 0, 0], [4, 3, 2], [2, 1, 1], [0, 3, 0]])
        batched = engine.point_batch(coords)
        assert batched.shape == (4,)
        for row, value in zip(coords, batched):
            assert value == pytest.approx(engine.point(row), abs=1e-12)

    def test_empty_batch(self, engine):
        out = engine.point_batch(np.empty((0, 3), dtype=np.int64))
        assert out.shape == (0,)

    @pytest.mark.parametrize(
        "bad",
        [(0, 0), (0, 0, 0, 0), (5, 0, 0), (0, 0, 3), (-1, 0, 0)],
    )
    def test_bad_index_is_typed(self, engine, bad):
        with pytest.raises(QueryError):
            engine.point(bad)


class TestSlice:
    def test_every_hyperplane_matches_reconstruct(self, engine, full):
        for mode in range(full.ndim):
            for index in range(full.shape[mode]):
                expected = np.take(full, index, axis=mode)
                got = engine.slice(mode, index)
                assert got.shape == expected.shape
                assert np.allclose(got, expected, atol=1e-10)

    def test_bad_mode(self, engine):
        with pytest.raises(QueryError, match="mode"):
            engine.slice(3, 0)

    def test_bad_index(self, engine):
        with pytest.raises(QueryError, match="out of range"):
            engine.slice(0, 5)


class TestTopK:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        tensor = make_sparse((6, 5, 4), density=0.6, seed=3)
        store = BlockTensorStore(tmp_path_factory.mktemp("store"))
        store.put("t", tensor, block_shape=(2, 2, 2))
        tucker = hosvd(tensor, clip_ranks(tensor.shape, [3, 3, 3]))
        return tensor, store, FactorEngine(tucker, study="topk")

    def _brute_force(self, tensor, engine):
        residuals = {}
        for row, stored in zip(tensor.coords, tensor.values):
            index = tuple(int(i) for i in row)
            residuals[index] = abs(stored - engine.point(index))
        return residuals

    def test_topk_matches_brute_force(self, served):
        tensor, store, engine = served
        k = 5
        expected = self._brute_force(tensor, engine)
        result = engine.topk_anomalies(store, "t", k)
        assert len(result) == k
        worst = sorted(expected.values(), reverse=True)[:k]
        got = [residual for _idx, _s, _p, residual in result]
        assert got == sorted(got, reverse=True)
        assert np.allclose(got, worst, atol=1e-10)
        for index, stored, predicted, residual in result:
            assert residual == pytest.approx(
                abs(stored - predicted), abs=1e-12
            )
            assert expected[index] == pytest.approx(residual, abs=1e-10)

    def test_topk_restricted_to_slice(self, served):
        tensor, store, engine = served
        mode, index = 0, 2
        result = engine.topk_anomalies(store, "t", 3, mode=mode, index=index)
        assert all(idx[mode] == index for idx, _s, _p, _r in result)
        on_slice = {
            tuple(int(i) for i in row): abs(v - engine.point(row))
            for row, v in zip(tensor.coords, tensor.values)
            if row[mode] == index
        }
        worst = sorted(on_slice.values(), reverse=True)[:3]
        assert np.allclose(
            [r for _i, _s, _p, r in result], worst, atol=1e-10
        )

    def test_k_larger_than_nnz(self, served):
        tensor, store, engine = served
        result = engine.topk_anomalies(store, "t", tensor.nnz + 10)
        assert len(result) == tensor.nnz

    def test_bad_k(self, served):
        _tensor, store, engine = served
        with pytest.raises(QueryError, match="k >= 1"):
            engine.topk_anomalies(store, "t", 0)


def test_rank_clipped_factors():
    """Requested ranks above a mode's extent are served correctly."""
    dense = np.random.default_rng(5).standard_normal((2, 6, 3))
    tucker = hosvd(SparseTensor.from_dense(dense), clip_ranks(dense.shape, [8, 8, 8]))
    engine = FactorEngine(tucker)
    full = tucker.reconstruct()
    for index in [(0, 0, 0), (1, 5, 2), (0, 3, 1)]:
        assert engine.point(index) == pytest.approx(full[index], abs=1e-10)
    assert np.allclose(engine.slice(1, 4), full[:, 4, :], atol=1e-10)
