"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import StudyCatalog
from repro.tensor import SparseTensor


def make_sparse(shape, density=0.5, seed=0) -> SparseTensor:
    """A random sparse tensor with unique coordinates."""
    rng = np.random.default_rng(seed)
    n = max(1, int(density * np.prod(shape)))
    coords = np.unique(
        rng.integers(0, shape, size=(n, len(shape))), axis=0
    )
    values = rng.standard_normal(coords.shape[0])
    return SparseTensor(tuple(shape), coords, values)


@pytest.fixture()
def catalog(tmp_path) -> StudyCatalog:
    """A two-tenant catalog: a 3-mode and a 4-mode study."""
    cat = StudyCatalog(tmp_path / "serving")
    cat.register("alpha", make_sparse((6, 5, 4), seed=1), ranks=[3, 3, 3])
    cat.register(
        "beta", make_sparse((4, 4, 3, 3), seed=2), ranks=[2, 2, 2, 2]
    )
    return cat
