"""Property test (satellite 4): factor-space queries equal dense
reconstruction to 1e-10 on random Tucker tensors of 3-5 modes, with
edge indices and rank-clipped factors exercised."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.serving import FactorEngine
from repro.tensor import hosvd
from repro.tensor.tucker import clip_ranks


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_point_and_slice_match_reconstruct(data):
    ndim = data.draw(st.integers(3, 5), label="ndim")
    shape = tuple(
        data.draw(st.integers(2, 4), label=f"dim{m}") for m in range(ndim)
    )
    dense = data.draw(
        hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        label="tensor",
    )
    # Draw ranks beyond the mode extents on purpose: serving always
    # clips, and clipped factors must stay exact.
    ranks = [
        data.draw(st.integers(1, 6), label=f"rank{m}") for m in range(ndim)
    ]
    tucker = hosvd(dense, clip_ranks(shape, ranks))
    engine = FactorEngine(tucker)
    full = tucker.reconstruct()

    indices = [
        tuple(0 for _ in shape),                       # first cell
        tuple(s - 1 for s in shape),                   # last cell
        tuple(
            data.draw(st.integers(0, s - 1)) for s in shape
        ),                                             # random cell
    ]
    for index in indices:
        assert abs(engine.point(index) - full[index]) < 1e-10

    batched = engine.point_batch(np.asarray(indices))
    assert np.allclose(
        batched, [full[index] for index in indices], atol=1e-10
    )

    mode = data.draw(st.integers(0, ndim - 1), label="slice_mode")
    for index in (0, shape[mode] - 1):
        assert np.allclose(
            engine.slice(mode, index),
            np.take(full, index, axis=mode),
            atol=1e-10,
        )
