"""run_load and the committed serving benchmark baseline."""

import json
from pathlib import Path

import pytest

from repro.exceptions import ServingError
from repro.serving import StudyCatalog, run_load

BASELINE = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "baselines"
    / "BENCH_serving.json"
)


class TestRunLoad:
    def test_answers_every_query(self, catalog):
        summary = run_load(
            catalog, n_clients=25, queries_per_client=4, seed=1
        )
        assert summary["load"]["answered"] == 100
        assert summary["load"]["shed"] == 0
        assert summary["stats"]["served"] == 100
        assert summary["stats"]["errors"] == 0
        # both tenants saw traffic
        assert set(summary["studies"]) == {"alpha", "beta"}

    def test_batched_coalesces_unbatched_does_not(self, catalog):
        batched = run_load(
            catalog, n_clients=50, queries_per_client=4, seed=2
        )
        unbatched = run_load(
            catalog, n_clients=50, queries_per_client=4, seed=2,
            batching=False,
        )
        assert batched["stats"]["served"] == unbatched["stats"]["served"]
        assert unbatched["stats"]["batches"] == 200
        assert batched["stats"]["batches"] < 100

    def test_same_seed_same_stream(self, catalog):
        a = run_load(catalog, n_clients=10, queries_per_client=3, seed=5)
        b = run_load(catalog, n_clients=10, queries_per_client=3, seed=5)
        assert (
            a["studies"]["alpha"]["served"]
            == b["studies"]["alpha"]["served"]
        )

    def test_slice_and_topk_kinds(self, catalog):
        summary = run_load(
            catalog, kind="slice", n_clients=5, queries_per_client=2,
            seed=3,
        )
        assert summary["stats"]["slices"] == 10
        summary = run_load(
            catalog, kind="topk", n_clients=2, queries_per_client=1,
            topk_k=2, seed=4,
        )
        assert summary["stats"]["topks"] == 2

    def test_empty_catalog(self, tmp_path):
        with pytest.raises(ServingError, match="no registered studies"):
            run_load(StudyCatalog(tmp_path / "empty"))

    def test_unknown_kind(self, catalog):
        with pytest.raises(ServingError, match="unknown load kind"):
            run_load(catalog, kind="scan", n_clients=1,
                     queries_per_client=1)


class TestCommittedBaseline:
    """The acceptance criterion is pinned against the committed
    artifact: batched point-query throughput at 100 concurrent clients
    must be at least 3x the unbatched control."""

    @pytest.fixture(scope="class")
    def workloads(self):
        assert BASELINE.exists(), "run: python -m repro.bench run --quick"
        document = json.loads(BASELINE.read_text())
        assert document["suite"] == "serving"
        return {w["name"]: w for w in document["workloads"]}

    def test_batched_at_least_3x_unbatched_at_c100(self, workloads):
        batched = workloads["serving.point_c100"]
        control = workloads["serving.point_c100_unbatched"]
        # identical streams (same size spec and seed), so throughput
        # ratio is inverse median wall time
        speedup = (
            control["wall_seconds"]["median"]
            / batched["wall_seconds"]["median"]
        )
        assert speedup >= 3.0, f"batched speedup only {speedup:.2f}x"

    def test_full_concurrency_ladder_present(self, workloads):
        for name in (
            "serving.point_c1",
            "serving.point_c100",
            "serving.point_c10k",
            "serving.slice_c100",
            "serving.topk_c20",
        ):
            assert name in workloads
            assert workloads[name]["wall_seconds"]["median"] > 0
