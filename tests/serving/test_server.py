"""ServingServer: correctness, batching, shedding, multi-tenancy.

The acceptance test for the whole subsystem lives here:
``test_two_studies_zero_reconstructions`` serves point/slice/top-k for
two concurrently registered studies and asserts the
``tucker.reconstructs`` counter never moved.
"""

import asyncio

import numpy as np
import pytest

from repro.exceptions import (
    QueryError,
    ServingError,
    ServingOverloadError,
    StudyNotFoundError,
)
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.serving import ServingClient, ServingServer


def test_two_studies_zero_reconstructions(catalog):
    """Acceptance: queries for >= 2 concurrent studies, and the dense
    reconstruction counter stays at exactly zero."""
    registry = MetricsRegistry()

    async def serve():
        async with ServingServer(catalog) as server:
            points = await asyncio.gather(
                server.point("alpha", (1, 2, 3)),
                server.point("beta", (0, 1, 2, 0)),
                server.point("alpha", (5, 4, 0)),
                server.point("beta", (3, 3, 2, 2)),
            )
            slices = await asyncio.gather(
                server.slice("alpha", 0, 2),
                server.slice("beta", 1, 3),
            )
            topks = await asyncio.gather(
                server.topk("alpha", 3),
                server.topk("beta", 2),
            )
        return points, slices, topks

    with use_metrics(registry):
        points, slices, topks = asyncio.run(serve())
        assert registry.counter("tucker.reconstructs").value == 0

    # correctness checked against the dense tensor *after* the guard
    full_alpha = catalog.engine("alpha").tucker.reconstruct()
    full_beta = catalog.engine("beta").tucker.reconstruct()
    assert points[0] == pytest.approx(full_alpha[1, 2, 3], abs=1e-10)
    assert points[1] == pytest.approx(full_beta[0, 1, 2, 0], abs=1e-10)
    assert points[2] == pytest.approx(full_alpha[5, 4, 0], abs=1e-10)
    assert points[3] == pytest.approx(full_beta[3, 3, 2, 2], abs=1e-10)
    assert np.allclose(slices[0], full_alpha[2], atol=1e-10)
    assert np.allclose(slices[1], full_beta[:, 3], atol=1e-10)
    assert len(topks[0]) == 3 and len(topks[1]) == 2


class TestBatching:
    def test_concurrent_points_coalesce(self, catalog):
        registry = MetricsRegistry()

        async def serve():
            async with ServingServer(catalog, max_batch=64) as server:
                client = ServingClient(server, study="alpha")
                rng = np.random.default_rng(0)
                coords = [
                    tuple(int(rng.integers(s)) for s in (6, 5, 4))
                    for _ in range(200)
                ]
                values = await asyncio.gather(
                    *(client.point(c) for c in coords)
                )
                return server.stats, coords, values

        with use_metrics(registry):
            stats, coords, values = asyncio.run(serve())
        # far fewer numpy calls than requests
        assert stats.served == 200
        assert stats.batches < stats.served / 2
        assert registry.histogram("serving.batch_size").max > 1
        full = catalog.engine("alpha").tucker.reconstruct()
        for coord, value in zip(coords, values):
            assert value == pytest.approx(full[coord], abs=1e-10)

    def test_unbatched_control_serves_one_by_one(self, catalog):
        async def serve():
            async with ServingServer(catalog, batching=False) as server:
                await asyncio.gather(
                    *(server.point("alpha", (i % 6, 0, 0)) for i in range(40))
                )
                return server.stats

        stats = asyncio.run(serve())
        assert stats.served == 40
        assert stats.batches == 40

    def test_max_batch_respected(self, catalog):
        registry = MetricsRegistry()

        async def serve():
            async with ServingServer(catalog, max_batch=8) as server:
                await asyncio.gather(
                    *(server.point("alpha", (i % 6, 0, 0)) for i in range(100))
                )

        with use_metrics(registry):
            asyncio.run(serve())
        assert registry.histogram("serving.batch_size").max <= 8

    def test_point_many_matches_individual(self, catalog):
        async def serve():
            async with ServingServer(catalog) as server:
                indices = [(0, 0, 0), (5, 4, 3), (2, 2, 2)]
                many = await server.point_many("alpha", indices)
                single = [
                    await server.point("alpha", index) for index in indices
                ]
                return many, single

        many, single = asyncio.run(serve())
        assert many == pytest.approx(single, abs=1e-12)


class TestOverload:
    def test_flood_is_shed_with_typed_error(self, catalog):
        async def serve():
            async with ServingServer(catalog, max_queue=4) as server:
                results = await asyncio.gather(
                    *(server.point("alpha", (0, 0, 0)) for _ in range(50)),
                    return_exceptions=True,
                )
                return server.stats, results

        stats, results = asyncio.run(serve())
        shed = [r for r in results if isinstance(r, ServingOverloadError)]
        served = [r for r in results if isinstance(r, float)]
        assert shed and served
        assert len(shed) == stats.shed
        assert len(served) == stats.served
        assert shed[0].study == "alpha"
        assert shed[0].limit == 4


class TestErrors:
    def test_unknown_study(self, catalog):
        async def serve():
            async with ServingServer(catalog) as server:
                await server.point("nope", (0, 0, 0))

        with pytest.raises(StudyNotFoundError):
            asyncio.run(serve())

    def test_bad_index_rejected_at_submit(self, catalog):
        async def serve():
            async with ServingServer(catalog) as server:
                with pytest.raises(QueryError):
                    await server.point("alpha", (9, 9, 9))
                with pytest.raises(QueryError):
                    await server.slice("alpha", 7, 0)
                # the worker survives bad requests
                return await server.point("alpha", (0, 0, 0))

        assert isinstance(asyncio.run(serve()), float)

    def test_not_started(self, catalog):
        server = ServingServer(catalog)

        async def query():
            await server.point("alpha", (0, 0, 0))

        with pytest.raises(ServingError, match="not started"):
            asyncio.run(query())

    def test_bad_configuration(self, catalog):
        with pytest.raises(ServingError, match="max_batch"):
            ServingServer(catalog, max_batch=0)
        with pytest.raises(ServingError, match="max_queue"):
            ServingServer(catalog, max_queue=0)

    def test_client_needs_a_study(self, catalog):
        async def serve():
            async with ServingServer(catalog) as server:
                client = ServingClient(server)
                with pytest.raises(ServingError, match="no study"):
                    await client.point((0, 0, 0))

        asyncio.run(serve())


def test_summary_shape(catalog):
    async def serve():
        async with ServingServer(catalog) as server:
            await server.point("alpha", (0, 0, 0))
            await server.point("beta", (0, 0, 0, 0))
            return server.summary()

    summary = asyncio.run(serve())
    assert summary["stats"]["served"] == 2
    assert set(summary["studies"]) == {"alpha", "beta"}
    assert summary["hot_factors"]["hit_rate"] >= 0.0
    assert set(summary["latency_seconds"]) == {"p50", "p90", "p99"}
